"""Offline robust training loop and the pretrained-model cache."""

from __future__ import annotations

import hashlib
import logging
import os
import threading
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.augment import augmix
from repro.data.synthetic import SynthCIFAR, make_synth_cifar
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.train.adversarial import pgd_attack


@dataclass
class TrainConfig:
    """Hyper-parameters for robust offline pre-training."""

    epochs: int = 8
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    use_augmix: bool = True
    #: fraction of batches replaced by PGD adversarial examples
    #: (0 disables adversarial training; the paper applies AT to R18 only)
    adversarial_fraction: float = 0.0
    pgd_epsilon: float = 4.0 / 255.0
    pgd_steps: int = 3
    seed: int = 0


class Trainer:
    """SGD trainer with cosine decay, AugMix, and optional PGD batches."""

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.history: List[Dict[str, float]] = []

    def _lr_at(self, step: int, total_steps: int) -> float:
        """Cosine decay from the base LR to ~0 over the run."""
        progress = step / max(total_steps, 1)
        return 0.5 * self.config.lr * (1.0 + np.cos(np.pi * progress))

    def fit(self, dataset: SynthCIFAR,
            val: Optional[SynthCIFAR] = None) -> List[Dict[str, float]]:
        """Train on ``dataset``; returns per-epoch history records."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n = len(dataset)
        steps_per_epoch = max(n // cfg.batch_size, 1)
        total_steps = cfg.epochs * steps_per_epoch
        step = 0
        for epoch in range(cfg.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            epoch_acc = 0.0
            self.model.train()
            for batch_index in range(steps_per_epoch):
                idx = order[batch_index * cfg.batch_size:(batch_index + 1) * cfg.batch_size]
                images = dataset.images[idx]
                labels = dataset.labels[idx]
                if cfg.use_augmix:
                    images = np.stack([augmix(im, rng) for im in images])
                if cfg.adversarial_fraction > 0 and rng.uniform() < cfg.adversarial_fraction:
                    images = pgd_attack(self.model, images, labels,
                                        epsilon=cfg.pgd_epsilon,
                                        steps=cfg.pgd_steps, rng=rng)
                    self.model.train()
                self.optimizer.lr = self._lr_at(step, total_steps)
                logits = self.model(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                epoch_acc += F.accuracy(logits, labels)
                step += 1
            record = {
                "epoch": float(epoch),
                "loss": epoch_loss / steps_per_epoch,
                "train_acc": epoch_acc / steps_per_epoch,
            }
            if val is not None:
                record["val_error"] = evaluate(self.model, val.images, val.labels)
            self.history.append(record)
        self.model.eval()
        return self.history


def evaluate(model: Module, images: np.ndarray, labels: np.ndarray,
             batch_size: int = 128) -> float:
    """Top-1 *error* (fraction in [0, 1]) in eval mode, no adaptation."""
    was_training = model.training
    model.eval()
    correct = 0
    for start in range(0, len(labels), batch_size):
        stop = start + batch_size
        with no_grad():
            logits = model(Tensor(images[start:stop]))
        correct += int((logits.data.argmax(axis=-1) == labels[start:stop]).sum())
    if was_training:
        model.train()
    return 1.0 - correct / len(labels)


# ----------------------------------------------------------------------
# Pretrained tiny-model cache (used by native experiments and examples)
# ----------------------------------------------------------------------
# In-process checkpoint memo; mutated only under the lock so concurrent
# pretrains (parallel-sweep threads, serve-daemon tenant opens) cannot
# interleave a dict resize with a lookup.
_MEMORY_CACHE: Dict[Tuple, Dict[str, np.ndarray]] = {}
_MEMORY_CACHE_LOCK = threading.Lock()

_log = logging.getLogger("repro.train")

#: archive member holding the content checksum (uint8-encoded hex digest)
_CHECKSUM_KEY = "__repro_checksum__"


def _disk_cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.path.expanduser("~"), ".cache", "repro"))
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def pretrain_cache_path(key: Tuple) -> Path:
    """Content-addressed checkpoint path for one pretraining request.

    The file name embeds a digest of the full request key (model,
    sizes, epochs, adversarial flag, seed) rather than the raw values,
    so every distinct configuration maps to exactly one address that is
    stable across processes — the property the parallel workers'
    file-locked sharing relies on.  The leading model name is kept
    human-readable for cache spelunking.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
    return _disk_cache_dir() / f"robust_{key[0]}_{digest}.npz"


def _state_checksum(state: Dict[str, np.ndarray]) -> str:
    """Content digest of a state dict (names, dtypes, shapes, bytes)."""
    digest = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _write_disk_cache(cache_file: Path, state: Dict[str, np.ndarray]) -> None:
    """Atomically persist a state dict with an embedded checksum."""
    from repro.resilience.atomic import atomic_path

    checksum = np.frombuffer(
        _state_checksum(state).encode("ascii"), dtype=np.uint8)
    with atomic_path(cache_file, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **state, **{_CHECKSUM_KEY: checksum})


def _read_disk_cache(cache_file: Path) -> Optional[Dict[str, np.ndarray]]:
    """Load and verify a cached state dict; ``None`` means retrain.

    Any way the archive can be bad — truncated zip, corrupt member,
    missing/mismatched checksum, a pre-checksum legacy file — degrades
    to a retrain (the bad file is removed so the rewrite starts clean)
    instead of crashing the study.
    """
    try:
        with np.load(cache_file) as archive:
            if _CHECKSUM_KEY not in archive.files:
                raise ValueError("no embedded checksum (legacy or foreign)")
            state = {name: archive[name] for name in archive.files
                     if name != _CHECKSUM_KEY}
            stored = bytes(archive[_CHECKSUM_KEY].tobytes()).decode("ascii")
        if stored != _state_checksum(state):
            raise ValueError("checksum mismatch")
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) \
            as error:
        _log.warning("discarding unusable pretrain cache %s (%s); "
                     "retraining", cache_file, error)
        try:
            cache_file.unlink()
        except OSError:
            pass
        return None
    return state


def pretrain_robust(model_name: str, image_size: int = 16,
                    train_samples: int = 2000, epochs: int = 6,
                    adversarial: Optional[bool] = None, seed: int = 0,
                    use_disk_cache: bool = True) -> Module:
    """Return a robustly pre-trained *tiny-profile* model.

    Mirrors the paper's setup: AugMix for all models, adversarial training
    additionally for ResNet-18 (``adversarial=None`` applies that default).
    Results are cached in memory and on disk (``$REPRO_CACHE``) keyed by
    the full configuration, so examples and benchmarks pay the training
    cost once.

    The disk cache is crash-safe and shareable: files are
    content-addressed (:func:`pretrain_cache_path`), written atomically
    (tmp + rename) with an embedded content checksum, and guarded by an
    advisory :class:`~repro.parallel.filelock.FileLock` — of N
    concurrent processes (e.g. the workers of a parallel sweep) needing
    the same checkpoint, exactly one trains while the rest block and
    then load it.  A corrupt, truncated, or tampered archive is
    detected on load and silently replaced by a retrain rather than
    crashing the study.
    """
    if adversarial is None:
        adversarial = model_name == "resnet18"
    key = (model_name, image_size, train_samples, epochs, bool(adversarial), seed)
    model = build_model(model_name, profile="tiny")

    with _MEMORY_CACHE_LOCK:
        state = _MEMORY_CACHE.get(key)
    if state is not None:
        model.load_state_dict(state)
        model.eval()
        return model

    def train() -> Dict[str, np.ndarray]:
        dataset = make_synth_cifar(train_samples, size=image_size, seed=seed)
        config = TrainConfig(epochs=epochs, seed=seed,
                             adversarial_fraction=0.3 if adversarial else 0.0)
        Trainer(model, config).fit(dataset)
        return model.state_dict()

    if not use_disk_cache:
        state = train()
    else:
        from repro.parallel.filelock import FileLock

        cache_file = pretrain_cache_path(key)
        # the lock spans read-or-train: a second process arriving while
        # training is underway blocks here, then finds the checkpoint
        with FileLock(str(cache_file) + ".lock"):
            state = _read_disk_cache(cache_file) \
                if cache_file.exists() else None
            if state is None:
                state = train()
                _write_disk_cache(cache_file, state)
    with _MEMORY_CACHE_LOCK:
        _MEMORY_CACHE[key] = state
    model.load_state_dict(state)
    model.eval()
    return model
