"""Adversarial example generation for robust training.

The paper's ResNet-18 is adversarially trained with perturbations bounded
in LPIPS distance (Kireev et al. 2021).  LPIPS requires a reference
perceptual network; as the closest classical equivalent we implement
projected gradient descent (PGD) in an L-infinity ball — the substitution
is documented in DESIGN.md and preserves what the experiment needs: a
model whose decision surface is locally flattened against small
worst-case input perturbations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def pgd_attack(model: Module, images: np.ndarray, labels: np.ndarray,
               epsilon: float = 4.0 / 255.0, step_size: float = 1.5 / 255.0,
               steps: int = 3, rng: np.random.Generator | None = None) -> np.ndarray:
    """Generate L-infinity PGD adversarial examples.

    The model's parameters are not modified; only the input gradient is
    used.  Inputs and outputs are float32 NCHW in [0, 1].
    """
    if rng is None:
        rng = np.random.default_rng(0)
    was_training = model.training
    model.eval()

    perturbed = images + rng.uniform(-epsilon, epsilon,
                                     size=images.shape).astype(np.float32)
    perturbed = np.clip(perturbed, 0.0, 1.0)
    for _ in range(steps):
        x = Tensor(perturbed, requires_grad=True)
        loss = F.cross_entropy(model(x), labels)
        loss.backward()
        assert x.grad is not None
        perturbed = perturbed + step_size * np.sign(x.grad)
        perturbed = np.clip(perturbed, images - epsilon, images + epsilon)
        perturbed = np.clip(perturbed, 0.0, 1.0).astype(np.float32)

    if was_training:
        model.train()
    return perturbed
