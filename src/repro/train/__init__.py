"""Offline robust pre-training (the paper's Section II-A).

The paper's three DNNs arrive pre-trained with AugMix data augmentation
(all three) and LPIPS-bounded adversarial training (ResNet-18 only).  This
package provides the equivalent pipeline for our models:

- :class:`Trainer` — SGD training loop with cosine learning-rate decay,
  AugMix augmentation, and optional PGD adversarial training (the
  classical proxy for the paper's LPIPS-based method; see DESIGN.md).
- :func:`evaluate` — top-1 error of a model on a labeled split.
- :func:`pretrain_robust` — one-call "make me a robust tiny model"
  used by the native accuracy experiments, with an in-process cache.
"""

from repro.train.adversarial import pgd_attack
from repro.train.trainer import Trainer, TrainConfig, evaluate, pretrain_robust

__all__ = ["Trainer", "TrainConfig", "evaluate", "pgd_attack", "pretrain_robust"]
