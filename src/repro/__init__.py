"""repro — reproduction of "Benchmarking Test-Time Unsupervised DNN
Adaptation on Edge Devices" (Bhardwaj et al., ISPASS 2022).

Built entirely from scratch on numpy: a tensor/autograd engine
(:mod:`repro.tensor`), a neural-network module system (:mod:`repro.nn`),
the paper's four model architectures (:mod:`repro.models`), the
CIFAR-10-C corruption suite over a synthetic dataset (:mod:`repro.data`),
the BN-Norm / BN-Opt test-time adaptation algorithms (:mod:`repro.adapt`),
robust offline training (:mod:`repro.train`), calibrated edge-device
latency/energy/memory simulators (:mod:`repro.devices`), an op-level
profiler (:mod:`repro.profiling`), and the measurement-study harness that
ties them together (:mod:`repro.core`).

Quickstart::

    from repro.core import StudyConfig, run_simulated_study
    from repro.core.report import render_tradeoffs

    result = run_simulated_study(StudyConfig())
    print(render_tradeoffs(result, device="xavier_nx_gpu"))

See README.md for the full tour and EXPERIMENTS.md for the paper-vs-
reproduction comparison of every figure and table.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
