"""Worker-process side of the process-parallel cell scheduler.

A worker is a plain ``multiprocessing`` process (``spawn`` start method,
so it never inherits interpreter state it should not) that pulls
:class:`CellTask`s off the shared task queue, drives each one through
the *same* attempt loop as the serial executor
(:func:`repro.resilience.executor.run_cell_attempts` — bounded retries,
seeded backoff, soft-deadline watchdog), and forwards every journal
event to the parent through the single-writer event queue.  Workers
never touch the journal file themselves; the parent is the only writer.

Everything crossing the spawn boundary is plain picklable data:
``CellTask.runner`` must be a module-level callable (pickled by
reference and re-imported in the child), ``payload`` is an arbitrary
per-run pickle shipped once per worker, and results travel as the
JSON-safe record dicts of :func:`repro.core.io.record_to_dict` — the
exact serialization the journal itself uses, so a parallel merge and a
journal replay reconstruct bit-identical records.

Before a cell runs, the worker reseeds numpy's *global* RNG from
``(policy.seed, cell key)`` via :func:`seed_for_cell`.  Cell code is
expected to use its own seeded generators (the native runner does), but
the reseed makes any stray ``np.random`` use deterministic per cell
rather than dependent on which worker picked the cell up.
"""

from __future__ import annotations

import time
import traceback
import zlib
from dataclasses import dataclass
from typing import Any, Callable, List

import numpy as np

from repro.core.records import MeasurementRecord
from repro.resilience.executor import (CellSpec, RetryPolicy,
                                       run_cell_attempts)

#: a cell runner: module-level callable of (payload, spec) -> records
CellRunner = Callable[[Any, CellSpec], List[MeasurementRecord]]

#: queue sentinel telling a worker to exit cleanly
SHUTDOWN = None


@dataclass(frozen=True)
class CellTask:
    """One unit of work shipped to a worker (picklable)."""

    index: int
    spec: CellSpec
    runner: CellRunner


def seed_for_cell(seed: int, key: str) -> int:
    """Deterministic 32-bit seed for a cell, independent of scheduling."""
    return (seed ^ zlib.crc32(key.encode("utf-8"))) & 0xFFFFFFFF


def worker_main(worker_id: int, task_queue, event_queue,
                policy: RetryPolicy, payload: Any) -> None:
    """Pull tasks until the shutdown sentinel; funnel events to parent."""

    def emit(entry: dict) -> None:
        event_queue.put({**entry, "worker": worker_id})

    emit({"event": "worker_start"})
    try:
        while True:
            task = task_queue.get()
            if task is SHUTDOWN:
                break
            # deliberate belt-and-braces reseed of the legacy global
            # RNG: stray np.random use in a cell stays deterministic
            np.random.seed(seed_for_cell(policy.seed, task.spec.key))  # repro: noqa[REP001]

            def fn(task: CellTask = task) -> List[MeasurementRecord]:
                return task.runner(payload, task.spec)

            # run_cell_attempts emits cell_start/cell_failed/cell_ok;
            # a final cell_failed already tells the parent the cell is
            # settled, so exhaustion needs no extra event here.
            run_cell_attempts(task.spec, fn, policy, emit, time.sleep)
    except Exception:                     # noqa: BLE001 — the parent must
        # hear about a broken worker loop (bad payload, queue failure)
        # rather than diagnose a silent exit
        emit({"event": "worker_error",
              "traceback": traceback.format_exc()})
        raise
    finally:
        emit({"event": "worker_exit"})
