"""Process-parallel sweep execution.

The study grid is embarrassingly parallel — (model, method, batch size)
cells share nothing but read-only inputs — yet the resilience layer
drives them strictly one by one.  This package scales that same
execution contract to N worker processes:

- :mod:`repro.parallel.executor` — :class:`ParallelExecutor`: partitions
  cells across ``multiprocessing`` (spawn) workers, funnels results and
  journal events through a single-writer queue (the parent is the only
  journal writer), detects crashed workers, and merges records in
  canonical grid order so parallel output is byte-equal to serial for
  deterministic cells;
- :mod:`repro.parallel.worker` — the worker-process entry point; drives
  cells through the *same* attempt loop as the serial executor
  (:func:`repro.resilience.executor.run_cell_attempts`) and seeds
  deterministically from each cell key;
- :mod:`repro.parallel.filelock` — advisory inter-process
  :class:`FileLock`, used by the shared pretrain-checkpoint cache so N
  workers never train the same model concurrently.

Select it from the study config (``StudyConfig.workers``) or the CLI
(``python -m repro native --workers N``); ``workers=0`` keeps the
serial :class:`~repro.resilience.executor.ResilientExecutor` path.
"""

from repro.parallel.filelock import FileLock, FileLockTimeout
from repro.parallel.worker import CellRunner, CellTask, seed_for_cell
from repro.parallel.executor import ParallelExecutor, WorkerCrashError

__all__ = [
    "CellRunner",
    "CellTask",
    "FileLock",
    "FileLockTimeout",
    "ParallelExecutor",
    "WorkerCrashError",
    "seed_for_cell",
]
