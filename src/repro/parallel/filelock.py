"""Advisory inter-process file lock for shared on-disk caches.

The pretrain-checkpoint cache is shared by every worker process of a
parallel sweep; without mutual exclusion N workers would each spend
minutes training the *same* model and then race to write the same cache
file.  :class:`FileLock` serializes them: the first worker trains while
the rest block, then find the checkpoint already on disk.

POSIX hosts use ``fcntl.flock`` on a sidecar ``.lock`` file (the kernel
releases it automatically if the holder dies, so a crashed trainer can
never wedge the cache).  Where ``fcntl`` is unavailable the lock falls
back to ``O_CREAT | O_EXCL`` spin acquisition with stale-lock breaking
(a lock file older than ``stale_after`` seconds is presumed orphaned).

The lock is advisory: only cooperating :class:`FileLock` users exclude
each other, which is exactly the contract a cache needs.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

try:                                      # pragma: no cover - platform gate
    import fcntl
except ImportError:                       # pragma: no cover - non-POSIX
    fcntl = None


class FileLockTimeout(TimeoutError):
    """The lock could not be acquired within the requested timeout."""


class FileLock:
    """Context-managed advisory lock on ``path``.

    Parameters
    ----------
    path:
        The lock file (created if missing; never deleted under flock —
        deleting a locked file would let a racer lock a fresh inode).
    timeout:
        Seconds to wait for acquisition; ``None`` waits forever.
    poll_interval:
        Sleep between acquisition attempts in the non-blocking paths.
    stale_after:
        Fallback-mode only: break a lock file untouched for this many
        seconds (its holder is presumed dead; flock never needs this).
    """

    def __init__(self, path: Union[str, Path], *,
                 timeout: Optional[float] = None,
                 poll_interval: float = 0.05,
                 stale_after: float = 600.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._fd: Optional[int] = None
        self._owns_file = False

    @property
    def locked(self) -> bool:
        return self._fd is not None

    # -- acquisition ---------------------------------------------------

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"{self.path} is already held by this lock")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = None if self.timeout is None \
            else time.monotonic() + self.timeout
        if fcntl is not None:
            self._acquire_flock(deadline)
        else:                             # pragma: no cover - non-POSIX
            self._acquire_exclusive_create(deadline)
        return self

    def _acquire_flock(self, deadline: Optional[float]) -> None:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if deadline is not None and time.monotonic() >= deadline:
                        raise FileLockTimeout(
                            f"could not lock {self.path} within "
                            f"{self.timeout:g}s") from None
                    time.sleep(self.poll_interval)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd

    def _acquire_exclusive_create(self, deadline: Optional[float]) -> None:
        # pragma: no cover - exercised only where fcntl is missing
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                os.write(fd, str(os.getpid()).encode("ascii"))
                self._fd = fd
                self._owns_file = True
                return
            except FileExistsError:
                self._break_if_stale()
                if deadline is not None and time.monotonic() >= deadline:
                    raise FileLockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout:g}s") from None
                time.sleep(self.poll_interval)

    def _break_if_stale(self) -> None:
        # pragma: no cover - fallback mode only
        try:
            # stale-lock age is *defined* against the file's mtime, so
            # this comparison needs the wall clock, not a monotonic one
            age = time.time() - self.path.stat().st_mtime  # repro: noqa[REP002]
        except OSError:
            return
        if age > self.stale_after:
            try:
                self.path.unlink()
            except OSError:
                pass

    # -- release -------------------------------------------------------

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self._owns_file:               # pragma: no cover - fallback mode
            self._owns_file = False
            os.close(fd)
            try:
                self.path.unlink()
            except OSError:
                pass
            return
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
