"""Process-pool cell scheduler with a single-writer journal funnel.

:class:`ParallelExecutor` extends the resilience layer's cell execution
(:class:`~repro.resilience.executor.ResilientExecutor`) to N worker
*processes*.  The contract it keeps:

- **same semantics, funnelled** — each worker drives its cells through
  the very attempt loop the serial executor uses (bounded retries,
  seeded backoff, soft-deadline watchdog) and streams the resulting
  journal events to the parent over one result queue.  The parent is
  the *only* journal writer, so the JSONL journal stays an append-only
  single-writer file with exactly the serial event vocabulary (plus a
  ``worker`` id on funnelled entries);
- **canonical merge order** — records are merged in the caller's cell
  order, not arrival order, so the merged
  :class:`~repro.core.records.StudyResult` of a parallel run is
  byte-equal (via :func:`repro.core.io.dumps`) to its serial twin for
  deterministic cells, and identical modulo wall-clock fields always;
- **crash containment** — a worker that dies mid-cell (OOM-killed,
  segfaulted, ``os._exit``) is detected by liveness polling; its
  in-flight cell is journaled as a final ``cell_failed`` and becomes a
  ``status="failed"`` record while the surviving workers finish the
  sweep.  If the whole pool dies, every not-yet-settled cell is failed
  the same way instead of hanging the parent.  The event funnel is a
  :class:`multiprocessing.SimpleQueue`, whose ``put`` writes straight
  to the pipe (no background feeder thread): an event a worker has
  emitted is already in the parent's pipe, so killing that worker an
  instant later can never un-settle cells it reported finished;
- **resume interop** — resume/fingerprint semantics are shared with the
  serial executor (:func:`~repro.resilience.executor.recover_completed`),
  so a journal written serially can be resumed in parallel and vice
  versa, replaying completed cells bit-identically.

Workers are started with the ``spawn`` method: each child begins from a
fresh interpreter, re-imports the cell runner by reference, re-enters
its own execution backend, and seeds deterministically from the cell
key — nothing depends on forked parent state, so the scheduler behaves
identically on Linux, macOS, and Windows.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.io import record_from_dict
from repro.core.records import StudyResult
from repro.resilience.executor import (CellSpec, ExecutorStats, RetryPolicy,
                                       make_failed_record, recover_completed)
from repro.resilience.journal import RunJournal
from repro.parallel.worker import SHUTDOWN, CellRunner, CellTask, worker_main

#: poll interval for the event funnel (also the liveness-check cadence)
_POLL_S = 0.2

#: consecutive empty polls a dead worker must survive before its
#: in-flight cell is declared crashed (lets late queue flushes land)
_DEATH_STRIKES = 2


class WorkerCrashError(RuntimeError):
    """A worker process died without settling its in-flight cell."""


class ParallelExecutor:
    """Drive study cells across N worker processes.

    Parameters mirror :class:`~repro.resilience.executor.ResilientExecutor`
    (journal, resume, max_retries, cell_timeout, backoff_base, seed,
    fingerprint) plus:

    workers:
        Number of worker processes (>= 1).  The pool never exceeds the
        number of pending cells.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (the default) is the
        only one that is identical across platforms and safe with
        threaded parents.
    """

    def __init__(self, journal: Optional[RunJournal] = None, *,
                 workers: int = 2, resume: bool = False,
                 max_retries: int = 0, cell_timeout: float = 0.0,
                 backoff_base: float = 0.05, seed: int = 0,
                 fingerprint: str = "", start_method: str = "spawn") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = RetryPolicy(max_retries=max_retries,
                                  cell_timeout=cell_timeout,
                                  backoff_base=backoff_base, seed=seed)
        self.journal = journal
        self.resume = resume
        self.fingerprint = fingerprint
        self.start_method = start_method
        self.stats = ExecutorStats()
        self._completed = recover_completed(journal, fingerprint) \
            if (journal and resume) else {}

    # -- the drive loop -----------------------------------------------

    def run(self, cells: Sequence[Tuple[CellSpec, CellRunner]],
            payload: Any = None) -> StudyResult:
        """Execute (or replay) every cell; merge in the caller's order.

        ``cells`` pairs each :class:`CellSpec` with a *module-level*
        runner callable ``(payload, spec) -> records`` (pickled by
        reference into the workers).  ``payload`` is shipped once per
        worker — put shared heavyweight inputs (configs, model state)
        there rather than closing over them.
        """
        tasks = [CellTask(index, spec, runner)
                 for index, (spec, runner) in enumerate(cells)
                 if spec.key not in self._completed]
        self._append({"event": "run_resume" if (self.resume and
                                                self._completed) else
                      "run_start", "fingerprint": self.fingerprint,
                      "cells": len(cells), "workers": self.workers})
        outcomes: Dict[str, List[dict]] = {}
        failures: Dict[str, Tuple[int, str]] = {}
        if tasks:
            self._drive(tasks, payload, outcomes, failures)
        result = self._merge(cells, outcomes, failures)
        self._append({"event": "run_end", "executed": self.stats.executed,
                      "skipped": self.stats.skipped,
                      "failed": self.stats.failed})
        return result

    def _drive(self, tasks: Sequence[CellTask], payload: Any,
               outcomes: Dict[str, List[dict]],
               failures: Dict[str, Tuple[int, str]]) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        task_queue = ctx.Queue()
        # SimpleQueue: puts are synchronous pipe writes under a lock, so
        # a worker death cannot lose events it already emitted (a
        # regular Queue buffers in a feeder thread that dies with it)
        event_queue = ctx.SimpleQueue()
        for task in tasks:
            task_queue.put(task)
        pool_size = min(self.workers, len(tasks))
        for _ in range(pool_size):
            task_queue.put(SHUTDOWN)
        workers = {
            worker_id: ctx.Process(
                target=worker_main,
                args=(worker_id, task_queue, event_queue, self.policy,
                      payload),
                daemon=True, name=f"repro-cell-worker-{worker_id}")
            for worker_id in range(pool_size)}
        for process in workers.values():
            process.start()
        in_flight: Dict[int, Tuple[str, int]] = {}   # worker -> (key, att)
        strikes: Dict[int, int] = {}
        settled = 0
        try:
            while settled < len(tasks):
                # single consumer, so polling the read end then getting
                # is race-free (SimpleQueue has no get(timeout=...))
                if not event_queue._reader.poll(_POLL_S):
                    settled += self._reap(workers, in_flight, strikes,
                                          tasks, outcomes, failures)
                    continue
                entry = event_queue.get()
                strikes.clear()           # events flowing: no verdicts yet
                settled += self._handle(entry, in_flight, outcomes,
                                        failures)
        finally:
            for process in workers.values():
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            task_queue.close()
            task_queue.cancel_join_thread()
            event_queue.close()

    def _handle(self, entry: dict, in_flight: Dict[int, Tuple[str, int]],
                outcomes: Dict[str, List[dict]],
                failures: Dict[str, Tuple[int, str]]) -> int:
        """Journal one funnelled event; return 1 if it settled a cell."""
        self._append(entry)
        event = entry.get("event")
        worker_id = entry.get("worker")
        if event == "cell_start":
            in_flight[worker_id] = (entry["cell"], entry["attempt"])
            return 0
        if event == "cell_ok":
            outcomes[entry["cell"]] = entry.get("records", [])
            in_flight.pop(worker_id, None)
            self.stats.executed += 1
            return 1
        if event == "cell_failed":
            if not entry.get("final"):
                self.stats.retries += 1
                return 0
            status = "timeout" if entry.get("error_type") == \
                "CellTimeoutError" else "failed"
            failures[entry["cell"]] = (entry["attempt"], status)
            in_flight.pop(worker_id, None)
            self.stats.failed += 1
            return 1
        return 0                          # worker_start/_exit/_error

    def _reap(self, workers: Dict[int, "multiprocessing.Process"],
              in_flight: Dict[int, Tuple[str, int]],
              strikes: Dict[int, int], tasks: Sequence[CellTask],
              outcomes: Dict[str, List[dict]],
              failures: Dict[str, Tuple[int, str]]) -> int:
        """Detect crashed workers; fail their cells.  Returns # settled.

        A worker is only declared crashed after ``_DEATH_STRIKES``
        consecutive empty polls while dead, so an exit racing its last
        queue flush is not misread as a crash.
        """
        settled = 0
        for worker_id, process in workers.items():
            if process.is_alive():
                continue
            if worker_id in in_flight:
                strikes[worker_id] = strikes.get(worker_id, 0) + 1
                if strikes[worker_id] < _DEATH_STRIKES:
                    continue
                key, attempt = in_flight.pop(worker_id)
                settled += self._crash_cell(
                    key, attempt,
                    f"WorkerCrashError: worker {worker_id} died "
                    f"(exitcode {process.exitcode}) while running the "
                    "cell", worker_id, failures)
        if all(not p.is_alive() for p in workers.values()) \
                and not in_flight:
            # the whole pool is gone: fail whatever never settled so
            # the parent cannot wait forever on an empty funnel
            strikes["pool"] = strikes.get("pool", 0) + 1
            if strikes["pool"] >= _DEATH_STRIKES:
                for task in tasks:
                    key = task.spec.key
                    if key not in outcomes and key not in failures:
                        settled += self._crash_cell(
                            key, 0, "WorkerCrashError: worker pool died "
                            "before the cell was picked up", None,
                            failures)
        return settled

    def _crash_cell(self, key: str, attempt: int, error: str,
                    worker_id: Optional[int],
                    failures: Dict[str, Tuple[int, str]]) -> int:
        self._append({"event": "cell_failed", "cell": key,
                      "attempt": attempt, "final": True, "error": error,
                      "error_type": "WorkerCrashError",
                      "worker": worker_id})
        failures[key] = (attempt, "failed")
        self.stats.failed += 1
        return 1

    # -- merging ------------------------------------------------------

    def _merge(self, cells: Sequence[Tuple[CellSpec, CellRunner]],
               outcomes: Dict[str, List[dict]],
               failures: Dict[str, Tuple[int, str]]) -> StudyResult:
        """Merge journaled/received rows in canonical (caller) order.

        Executed records are rebuilt from the same JSON-safe dicts the
        journal stores (:func:`~repro.core.io.record_from_dict`), so a
        parallel merge and a later journal replay are bit-identical.
        """
        result = StudyResult()
        for spec, _ in cells:
            replayed = self._completed.get(spec.key)
            if replayed is not None:
                for row in replayed:
                    result.add(record_from_dict(row))
                self.stats.skipped += 1
            elif spec.key in outcomes:
                for row in outcomes[spec.key]:
                    result.add(record_from_dict(row))
            elif spec.key in failures:
                attempts, status = failures[spec.key]
                result.add(make_failed_record(spec, max(attempts, 1),
                                              status))
            else:                         # pragma: no cover - defensive
                result.add(make_failed_record(spec, 0, "failed"))
        return result

    def _append(self, entry: dict) -> None:
        if self.journal is not None:
            self.journal.append(entry)
