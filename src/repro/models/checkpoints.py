"""Model checkpointing: save/load weights as ``.npz`` archives.

The native experiments train models worth keeping; these helpers give a
stable, framework-free on-disk format (flat name -> float32 array, plus
a metadata channel for the builder configuration so a checkpoint can be
rebuilt without external context).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.models.registry import build_model
from repro.nn.module import Module
from repro.resilience.atomic import atomic_path

_META_KEY = "__repro_meta__"


def save_checkpoint(model: Module, path: Union[str, Path],
                    model_name: Optional[str] = None,
                    profile: Optional[str] = None, **extra_meta) -> None:
    """Write ``model``'s state dict (and optional builder metadata) to npz.

    When ``model_name``/``profile`` are given, :func:`load_checkpoint`
    can rebuild the model from the registry without a pre-built instance.
    The write is atomic (temp sibling + rename), so a crash mid-save
    never corrupts an existing checkpoint.
    """
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"state dict may not contain key {_META_KEY!r}")
    meta = {"model_name": model_name, "profile": profile, **extra_meta}
    meta_blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    # numpy appends ".npz" to paths without it; mirror that before the
    # atomic rename so the final name matches what savez would produce
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_name(target.name + ".npz")
    with atomic_path(target, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **state, **{_META_KEY: meta_blob})


def read_checkpoint(path: Union[str, Path]) -> tuple[Dict[str, np.ndarray], dict]:
    """Read a checkpoint's (state dict, metadata) without building a model."""
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
        meta = {}
        if _META_KEY in archive.files:
            meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    return state, meta


def load_checkpoint(path: Union[str, Path],
                    model: Optional[Module] = None) -> Module:
    """Load weights into ``model``, or rebuild it from stored metadata.

    Raises ``ValueError`` when no model is given and the checkpoint
    carries no builder metadata.
    """
    state, meta = read_checkpoint(path)
    if model is None:
        name = meta.get("model_name")
        profile = meta.get("profile")
        if not name or not profile:
            raise ValueError("checkpoint has no builder metadata; pass a "
                             "model instance to load into")
        model = build_model(name, profile)
    model.load_state_dict(state)
    model.eval()
    return model
