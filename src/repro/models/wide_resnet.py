"""Wide-ResNet-40-2 ("WRN-AM" in the paper).

Pre-activation wide residual network (Zagoruyko & Komodakis 2016) with
depth 40 and widening factor 2: 0.33 GMACs, 2.24 M parameters, and 5408
batch-norm parameters (= 2 x 2704 BN channels, which the standard
pre-activation topology yields exactly; the projection shortcuts carry no
BN).
"""

from __future__ import annotations

from repro import nn
from repro.tensor.tensor import Tensor


class PreActBlock(nn.Module):
    """Pre-activation basic block: BN-ReLU-conv, BN-ReLU-conv, + shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.bn1 = nn.BatchNorm2d(in_channels)
        self.relu = nn.ReLU()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False)
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.shortcut: nn.Module = nn.Conv2d(in_channels, out_channels, 1,
                                                 stride=stride, bias=False)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        pre = self.relu(self.bn1(x))
        # Pre-activation networks feed the *activated* tensor to a
        # projection shortcut, and the raw input to an identity shortcut.
        residual = self.shortcut(pre) if self.needs_projection else x
        out = self.conv1(pre)
        out = self.conv2(self.relu(self.bn2(out)))
        return out + residual


class WideResNet(nn.Module):
    """WRN-d-k: ``(d - 4) / 6`` pre-activation blocks per stage, widths
    ``base*k, 2*base*k, 4*base*k``, final BN-ReLU before pooling."""

    def __init__(self, depth: int = 40, widen_factor: int = 2,
                 num_classes: int = 10, base: int = 16):
        super().__init__()
        if (depth - 4) % 6 != 0:
            raise ValueError("WideResNet depth must satisfy depth = 6n + 4")
        n = (depth - 4) // 6
        widths = [base, base * widen_factor, 2 * base * widen_factor,
                  4 * base * widen_factor]
        self.conv1 = nn.Conv2d(3, widths[0], 3, padding=1, bias=False)
        self.stage1 = self._make_stage(widths[0], widths[1], n, stride=1)
        self.stage2 = self._make_stage(widths[1], widths[2], n, stride=2)
        self.stage3 = self._make_stage(widths[2], widths[3], n, stride=2)
        self.bn_final = nn.BatchNorm2d(widths[3])
        self.relu = nn.ReLU()
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(widths[3], num_classes)

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, blocks: int,
                    stride: int) -> nn.Sequential:
        stage = nn.Sequential(PreActBlock(in_channels, out_channels, stride=stride))
        for _ in range(blocks - 1):
            stage.append(PreActBlock(out_channels, out_channels, stride=1))
        return stage

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(x)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.relu(self.bn_final(out))
        out = self.pool(out)
        return self.fc(out)


def wide_resnet40_2(num_classes: int = 10, depth: int = 40,
                    widen_factor: int = 2, base: int = 16) -> WideResNet:
    """Build the paper's WRN-40-2; pass smaller ``depth``/``base`` for the
    reduced "tiny" profile."""
    return WideResNet(depth=depth, widen_factor=widen_factor,
                      num_classes=num_classes, base=base)
