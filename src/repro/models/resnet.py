"""CIFAR ResNet-18 ("R18-AM-AT" in the paper).

The paper reports 0.56 GMACs, 11.17 M parameters, and 7808 batch-norm
parameters.  7808 BN parameters = 2 x 3904 BN channels = 2 x (64 + 4x64 +
4x128 + 4x256 + 4x512), which is a ResNet-18 whose downsampling shortcuts
are 1x1 convolutions *without* batch norm — so that is what we build (the
stock torchvision variant would have 9600).
"""

from __future__ import annotations


from repro import nn
from repro.tensor.tensor import Tensor


class BasicBlock(nn.Module):
    """Two 3x3 convs with BN/ReLU and an (optionally convolutional) shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            # Projection shortcut without BN (see module docstring).
            self.shortcut: nn.Module = nn.Conv2d(in_channels, out_channels, 1,
                                                 stride=stride, bias=False)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNet18(nn.Module):
    """CIFAR-style ResNet-18: 3x3 stem, four 2-block stages, widths w..8w."""

    def __init__(self, num_classes: int = 10, width: int = 64):
        super().__init__()
        widths = [width, 2 * width, 4 * width, 8 * width]
        self.conv1 = nn.Conv2d(3, widths[0], 3, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(widths[0])
        self.relu = nn.ReLU()
        self.layer1 = self._make_stage(widths[0], widths[0], stride=1)
        self.layer2 = self._make_stage(widths[0], widths[1], stride=2)
        self.layer3 = self._make_stage(widths[1], widths[2], stride=2)
        self.layer4 = self._make_stage(widths[2], widths[3], stride=2)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(widths[3], num_classes)

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, stride: int) -> nn.Sequential:
        return nn.Sequential(
            BasicBlock(in_channels, out_channels, stride=stride),
            BasicBlock(out_channels, out_channels, stride=1),
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.layer4(out)
        out = self.pool(out)
        return self.fc(out)


def resnet18(num_classes: int = 10, width: int = 64) -> ResNet18:
    """Build the paper's ResNet-18 (``width=64``); smaller widths give the
    reduced "tiny" profile used for natively-executed experiments."""
    return ResNet18(num_classes=num_classes, width=width)
