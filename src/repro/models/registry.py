"""Model registry: full-size (paper) and tiny (natively-executed) profiles.

``full`` profiles reproduce the paper's architectures exactly and are used
for analytical summaries and the device cost models.  ``tiny`` profiles
keep the topology family (depth pattern, block types, BN placement) but
shrink widths so that real training / adaptation on the numpy engine runs
in seconds; they power the native accuracy experiments (Fig. 2 shape) and
the algorithm test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.models.mobilenet import mobilenet_v2
from repro.models.resnet import resnet18
from repro.models.resnext import resnext29_4x32d
from repro.models.wide_resnet import wide_resnet40_2
from repro.nn.module import Module

MODEL_NAMES = ("resnet18", "wrn40_2", "resnext29", "mobilenet_v2")
PROFILES = ("full", "tiny")

# Paper display names (Section IV-A).
PAPER_LABELS: Dict[str, str] = {
    "resnext29": "RXT-AM",
    "wrn40_2": "WRN-AM",
    "resnet18": "R18-AM-AT",
    "mobilenet_v2": "MNetV2",
}


@dataclass(frozen=True)
class ModelInfo:
    """Registry entry: builders for both profiles plus paper metadata."""

    name: str
    paper_label: str
    build_full: Callable[[], Module]
    build_tiny: Callable[[], Module]
    # Paper-reported analytical footprint of the full profile
    # (Sections III-B, IV-F), asserted by tests.
    paper_gmacs: float
    paper_params_millions: float
    paper_bn_params: int
    paper_model_mb: int


_REGISTRY: Dict[str, ModelInfo] = {
    "resnet18": ModelInfo(
        name="resnet18",
        paper_label=PAPER_LABELS["resnet18"],
        build_full=lambda: resnet18(),
        build_tiny=lambda: resnet18(width=8),
        paper_gmacs=0.56,
        paper_params_millions=11.17,
        paper_bn_params=7808,
        paper_model_mb=86,
    ),
    "wrn40_2": ModelInfo(
        name="wrn40_2",
        paper_label=PAPER_LABELS["wrn40_2"],
        build_full=lambda: wide_resnet40_2(),
        build_tiny=lambda: wide_resnet40_2(depth=16, widen_factor=2, base=4),
        paper_gmacs=0.33,
        paper_params_millions=2.24,
        paper_bn_params=5408,
        paper_model_mb=9,
    ),
    "resnext29": ModelInfo(
        name="resnext29",
        paper_label=PAPER_LABELS["resnext29"],
        build_full=lambda: resnext29_4x32d(),
        build_tiny=lambda: resnext29_4x32d(cardinality=2, base_width=4,
                                           stem_width=8),
        paper_gmacs=1.08,
        paper_params_millions=6.81,
        paper_bn_params=25216,
        paper_model_mb=26,
    ),
    "mobilenet_v2": ModelInfo(
        name="mobilenet_v2",
        paper_label=PAPER_LABELS["mobilenet_v2"],
        build_full=lambda: mobilenet_v2(),
        build_tiny=lambda: mobilenet_v2(width_mult=0.25),
        paper_gmacs=0.096,
        paper_params_millions=2.3,
        paper_bn_params=34112,
        paper_model_mb=9,
    ),
}


def model_info(name: str) -> ModelInfo:
    """Look up a registry entry by canonical name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}") from None


def build_model(name: str, profile: str = "full") -> Module:
    """Instantiate a model by name and profile ("full" or "tiny")."""
    info = model_info(name)
    if profile == "full":
        return info.build_full()
    if profile == "tiny":
        return info.build_tiny()
    raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
