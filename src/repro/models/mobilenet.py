"""MobileNet-V2 for CIFAR (Section IV-F of the paper).

The paper reports 0.096 GMACs, a 9 MB model, and 34112 batch-norm
parameters — "larger than the three robust ResNet models", which is what
makes BN adaptation disproportionately expensive for it despite the tiny
MAC count.  34112 = 2 x 17056 BN channels, which the standard MobileNet-V2
inverted-residual schedule (t,c,n,s) = (1,16,1,1), (6,24,2,1), (6,32,3,2),
(6,64,4,2), (6,96,3,1), (6,160,3,2), (6,320,1,1) with a stride-1 CIFAR stem
and a 1280-channel head yields exactly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import nn
from repro.tensor.tensor import Tensor

# (expansion t, output channels c, repeats n, first stride s);
# strides of the first two stages are 1 for 32x32 inputs.
CIFAR_INVERTED_RESIDUAL_SETTING: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


class ConvBNReLU(nn.Sequential):
    """conv -> BN -> ReLU6, the MobileNet building brick."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, groups: int = 1):
        padding = (kernel_size - 1) // 2
        super().__init__(
            nn.Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                      padding=padding, groups=groups, bias=False),
            nn.BatchNorm2d(out_channels),
            nn.ReLU6(),
        )


class InvertedResidual(nn.Module):
    """Expand (1x1) -> depthwise (3x3) -> project (1x1, linear)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 expand_ratio: int):
        super().__init__()
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        layers: List[nn.Module] = []
        if expand_ratio != 1:
            layers.append(ConvBNReLU(in_channels, hidden, kernel_size=1))
        layers.append(ConvBNReLU(hidden, hidden, stride=stride, groups=hidden))
        layers.append(nn.Conv2d(hidden, out_channels, 1, bias=False))
        layers.append(nn.BatchNorm2d(out_channels))
        self.block = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(nn.Module):
    """CIFAR MobileNet-V2 with a width multiplier (1.0 = the paper's model)."""

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 last_channel: int = 1280):
        super().__init__()

        def scaled(channels: int) -> int:
            value = int(round(channels * width_mult))
            return max(value, 8)

        input_channel = scaled(32)
        self.last_channel = scaled(last_channel) if width_mult > 1.0 else int(
            round(last_channel * min(width_mult * 2, 1.0)))
        self.stem = ConvBNReLU(3, input_channel, stride=1)
        features: List[nn.Module] = []
        for t, c, n, s in CIFAR_INVERTED_RESIDUAL_SETTING:
            out_channel = scaled(c)
            for block_index in range(n):
                stride = s if block_index == 0 else 1
                features.append(InvertedResidual(input_channel, out_channel,
                                                 stride, expand_ratio=t))
                input_channel = out_channel
        self.features = nn.Sequential(*features)
        self.head = ConvBNReLU(input_channel, self.last_channel, kernel_size=1)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(self.last_channel, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.features(out)
        out = self.head(out)
        out = self.pool(out)
        return self.classifier(out)


def mobilenet_v2(num_classes: int = 10, width_mult: float = 1.0) -> MobileNetV2:
    """Build the paper's CIFAR MobileNet-V2 (``width_mult=1.0``)."""
    return MobileNetV2(num_classes=num_classes, width_mult=width_mult)
