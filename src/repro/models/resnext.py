"""ResNeXt-29 with cardinality 4 and base width 32 ("RXT-AM" in the paper).

Section III-B3: 1.08 GMACs, 6.81 M parameters, 25216 batch-norm parameters
(= 2 x 12608 BN channels).  With group width ``D = cardinality * base_width
* 2^stage`` and stage output ``2 * D``, the standard bottleneck topology
(1x1 / grouped 3x3 / 1x1, BN after every conv, BN-carrying projection
shortcuts) reproduces all three numbers exactly — ResNeXt has ~5x the BN
parameters of the other two models, which is what drives its memory blow-up
under BN-Opt in the paper.
"""

from __future__ import annotations

from repro import nn
from repro.tensor.tensor import Tensor


class ResNeXtBlock(nn.Module):
    """Aggregated-transform bottleneck: 1x1 -> grouped 3x3 -> 1x1."""

    def __init__(self, in_channels: int, group_width: int, out_channels: int,
                 cardinality: int, stride: int = 1):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, group_width, 1, bias=False)
        self.bn1 = nn.BatchNorm2d(group_width)
        self.conv2 = nn.Conv2d(group_width, group_width, 3, stride=stride,
                               padding=1, groups=cardinality, bias=False)
        self.bn2 = nn.BatchNorm2d(group_width)
        self.conv3 = nn.Conv2d(group_width, out_channels, 1, bias=False)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: nn.Module = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNeXt29(nn.Module):
    """ResNeXt-29: 3x3 stem then three 3-block stages (strides 1, 2, 2)."""

    def __init__(self, cardinality: int = 4, base_width: int = 32,
                 num_classes: int = 10, stem_width: int = 64,
                 blocks_per_stage: int = 3):
        super().__init__()
        self.cardinality = cardinality
        self.conv1 = nn.Conv2d(3, stem_width, 3, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(stem_width)
        self.relu = nn.ReLU()
        in_channels = stem_width
        stages = []
        for stage_index in range(3):
            group_width = cardinality * base_width * (2 ** stage_index)
            out_channels = 2 * group_width
            stride = 1 if stage_index == 0 else 2
            stage = nn.Sequential(
                ResNeXtBlock(in_channels, group_width, out_channels,
                             cardinality, stride=stride))
            for _ in range(blocks_per_stage - 1):
                stage.append(ResNeXtBlock(out_channels, group_width,
                                          out_channels, cardinality))
            stages.append(stage)
            in_channels = out_channels
        self.stage1, self.stage2, self.stage3 = stages
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(in_channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.fc(out)


def resnext29_4x32d(num_classes: int = 10, cardinality: int = 4,
                    base_width: int = 32, stem_width: int = 64) -> ResNeXt29:
    """Build the paper's ResNeXt-29 (cardinality 4, base width 32)."""
    return ResNeXt29(cardinality=cardinality, base_width=base_width,
                     num_classes=num_classes, stem_width=stem_width)
