"""Analytical model summaries: MACs, parameters, BN footprint, activations.

A summary is produced by tracing one real forward pass (batch size 1) and
deriving, per leaf layer:

- multiply-accumulate operations (convolutions and linear layers),
- learnable parameter count,
- BN channels / BN parameters (gamma + beta, the paper's "BN parameters"),
- BN *elements* per sample (``C*H*W`` summed over BN layers — the workload
  of recomputing normalization statistics, which drives BN-Norm cost),
- activation elements saved for backward (every conv/BN/activation input —
  the PyTorch dynamic-graph memory the paper measures at 3.12 GB /
  5.1 GB for ResNeXt at batch 100 / 200).

These summaries are the *workload half* of the edge-device cost models in
:mod:`repro.devices`; the numbers for the four paper models are pinned by
tests against Section III-B / IV-F.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.nn.module import Module, TraceRecord, trace_calls
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class LayerStats:
    """Workload of one leaf layer for a single input sample."""

    name: str
    kind: str                      # "conv" | "linear" | "bn" | "act" | "pool" | "other"
    macs: float                    # multiply-accumulates per sample
    params: int                    # learnable parameters
    bn_channels: int               # C for BN layers, else 0
    input_elements: float          # elements of the input tensor per sample
    output_elements: float         # elements of the output tensor per sample
    conv_flavor: str = ""          # "dense" | "grouped" | "depthwise" for convs


@dataclass
class ModelSummary:
    """Aggregate workload of a model for one input sample."""

    model_name: str
    input_shape: Tuple[int, int, int]
    layers: List[LayerStats] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates (all per sample unless stated otherwise)
    # ------------------------------------------------------------------
    @property
    def total_macs(self) -> float:
        return sum(layer.macs for layer in self.layers)

    @property
    def gmacs(self) -> float:
        return self.total_macs / 1e9

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def bn_channels(self) -> int:
        return sum(layer.bn_channels for layer in self.layers)

    @property
    def bn_params(self) -> int:
        """gamma + beta across all BN layers (the paper's 'BN parameters')."""
        return 2 * self.bn_channels

    @property
    def bn_elements(self) -> float:
        """Per-sample elements flowing through BN layers (stat-recompute work)."""
        return sum(layer.input_elements for layer in self.layers
                   if layer.kind == "bn")

    @property
    def conv_macs(self) -> float:
        return sum(layer.macs for layer in self.layers
                   if layer.kind in ("conv", "linear"))

    def macs_by_flavor(self) -> Dict[str, float]:
        """Split conv/linear MACs into dense / grouped / depthwise.

        Grouped and depthwise convolutions achieve a lower fraction of a
        device's peak throughput (less reuse per memory access); the
        device cost models apply per-flavor efficiency factors, which is
        how ResNeXt's grouped 3x3 and MobileNet's depthwise stacks end up
        disproportionately slow — as the paper observes.
        """
        split = {"dense": 0.0, "grouped": 0.0, "depthwise": 0.0}
        for layer in self.layers:
            if layer.kind == "linear":
                split["dense"] += layer.macs
            elif layer.kind == "conv":
                split[layer.conv_flavor or "dense"] += layer.macs
        return split

    @property
    def act_elements(self) -> float:
        """Per-sample elements through activation and pooling layers."""
        return sum(layer.input_elements for layer in self.layers
                   if layer.kind in ("act", "pool"))

    @property
    def saved_activation_elements(self) -> float:
        """Per-sample elements the dynamic autograd graph retains for backward.

        Every conv, BN, and activation keeps its input; BN additionally
        keeps the normalized tensor (its output size).  This mirrors what
        PyTorch retains when all parameters require grad, which is the
        regime the paper profiles (BN-Opt leaves requires_grad enabled
        during the forward pass that builds the graph).
        """
        total = 0.0
        for layer in self.layers:
            if layer.kind in ("conv", "act", "pool"):
                total += layer.input_elements
            elif layer.kind == "bn":
                total += layer.input_elements + layer.output_elements
        return total

    @property
    def peak_activation_elements(self) -> float:
        """Largest single intermediate tensor (inference working set)."""
        peak = 0.0
        for layer in self.layers:
            peak = max(peak, layer.input_elements, layer.output_elements)
        return peak

    def weight_bytes(self) -> int:
        """float32 bytes of the learnable parameters."""
        return self.total_params * 4

    def bn_layer_count(self) -> int:
        return sum(1 for layer in self.layers if layer.kind == "bn")

    def describe(self) -> str:
        """One-line human summary matching the paper's Section III-B style."""
        return (f"{self.model_name}: {self.gmacs:.3f} GMACs, "
                f"{self.total_params / 1e6:.2f}M params, "
                f"{self.bn_params} BN params, "
                f"{self.weight_bytes() / 1e6:.0f} MB weights")


def _classify(module: Module) -> str:
    if isinstance(module, nn.Conv2d):
        return "conv"
    if isinstance(module, nn.Linear):
        return "linear"
    if isinstance(module, nn.BatchNorm2d):
        return "bn"
    if isinstance(module, (nn.ReLU, nn.ReLU6)):
        return "act"
    if isinstance(module, (nn.MaxPool2d, nn.AvgPool2d, nn.GlobalAvgPool2d)):
        return "pool"
    return "other"


def _layer_stats(name: str, record: TraceRecord) -> LayerStats:
    module = record.module
    kind = _classify(module)
    in_elems = float(np.prod(record.input_shape[1:])) if record.input_shape else 0.0
    out_elems = float(np.prod(record.output_shape[1:]))
    macs = 0.0
    params = sum(p.data.size for p in module._parameters.values()
                 if p is not None)
    conv_flavor = ""
    if kind == "conv":
        conv: nn.Conv2d = module  # type: ignore[assignment]
        kh, kw = conv.kernel_size
        per_output = (conv.in_channels // conv.groups) * kh * kw
        macs = out_elems * per_output
        if conv.groups == 1:
            conv_flavor = "dense"
        elif conv.groups == conv.in_channels:
            conv_flavor = "depthwise"
        else:
            conv_flavor = "grouped"
    elif kind == "linear":
        linear: nn.Linear = module  # type: ignore[assignment]
        macs = float(linear.in_features * linear.out_features)
    bn_channels = module.num_features if kind == "bn" else 0
    return LayerStats(name=name, kind=kind, macs=macs, params=params,
                      bn_channels=bn_channels, input_elements=in_elems,
                      output_elements=out_elems, conv_flavor=conv_flavor)


# Cache entries hold a strong reference to the model: the key uses
# id(model), and CPython reuses ids after garbage collection, so the
# reference is what keeps the key valid for the cache's lifetime.
# Mutation happens under the lock: concurrent summary builds (the grid
# summary cache and the serve daemon's handler threads race them) must
# never interleave a dict resize with a lookup.
_SUMMARY_CACHE: Dict[Tuple[int, Tuple[int, int, int]],
                     Tuple[Module, ModelSummary]] = {}
_SUMMARY_CACHE_LOCK = threading.Lock()


def summarize(model: Module, input_shape: Tuple[int, int, int] = (3, 32, 32),
              name: Optional[str] = None) -> ModelSummary:
    """Trace one forward pass and return the per-layer workload summary.

    ``input_shape`` is (C, H, W); a single-sample forward in eval mode with
    autograd disabled is executed to capture real shapes.  Results are
    cached per (model instance, input shape).
    """
    key = (id(model), tuple(input_shape))
    with _SUMMARY_CACHE_LOCK:
        cached = _SUMMARY_CACHE.get(key)
    if cached is not None:
        return cached[1]

    # Names for leaf modules, for readable reports.
    names = {id(module): module_name or type(module).__name__
             for module_name, module in model.named_modules()}

    was_training = model.training
    model.eval()
    x = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
    with no_grad(), trace_calls() as records:
        model(x)
    if was_training:
        model.train()

    summary = ModelSummary(model_name=name or type(model).__name__,
                           input_shape=tuple(input_shape))
    for record in records:
        layer_name = names.get(id(record.module), type(record.module).__name__)
        summary.layers.append(_layer_stats(layer_name, record))
    with _SUMMARY_CACHE_LOCK:
        _SUMMARY_CACHE[key] = (model, summary)
    return summary
