"""Model zoo: the paper's three robust DNNs plus MobileNet-V2.

All four are faithful CIFAR-scale re-implementations whose analytical
footprints match the numbers reported in Section III-B / IV-F of the paper
(verified by `tests/test_models/test_paper_counts.py`):

============== ======= ============ ========== =====================
model          GMACs   total params BN params  factory
============== ======= ============ ========== =====================
ResNet-18      0.56    11.17 M      7808       :func:`resnet18`
WRN-40-2       0.33    2.24 M       5408       :func:`wide_resnet40_2`
ResNeXt-29     1.08    6.81 M       25216      :func:`resnext29_4x32d`
MobileNet-V2   0.096   ~2.3 M       34112      :func:`mobilenet_v2`
============== ======= ============ ========== =====================

Each factory also exists in a reduced-width "tiny" profile used by the
native (actually-executed) accuracy experiments; see
:mod:`repro.models.registry`.
"""

from repro.models.mobilenet import MobileNetV2, mobilenet_v2
from repro.models.registry import MODEL_NAMES, PROFILES, build_model, model_info
from repro.models.resnet import ResNet18, resnet18
from repro.models.resnext import ResNeXt29, resnext29_4x32d
from repro.models.summary import ModelSummary, summarize
from repro.models.wide_resnet import WideResNet, wide_resnet40_2

__all__ = [
    "ResNet18",
    "WideResNet",
    "ResNeXt29",
    "MobileNetV2",
    "resnet18",
    "wide_resnet40_2",
    "resnext29_4x32d",
    "mobilenet_v2",
    "build_model",
    "model_info",
    "MODEL_NAMES",
    "PROFILES",
    "ModelSummary",
    "summarize",
]
