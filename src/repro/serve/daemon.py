"""The multi-tenant adaptation daemon: event-loop TCP front-end.

One ``selectors`` event loop owns every socket (PR 9 replaced the
thread-per-connection :class:`socketserver.ThreadingTCPServer`): the
loop does non-blocking accepts, reads, framing, and writes, and hands
complete messages to a small dispatcher pool whose replies flow back
through a thread-safe outbox (a socketpair waker gets the loop's
attention).  Per-connection messages are processed strictly in order —
a connection is *busy* while one of its messages is in flight and its
inbox simply queues — so the wire semantics are exactly the old
handler loop's, but a thousand idle connections now cost a thousand
socket registrations instead of a thousand threads.  Batch execution
is pooled too: the manager submits carved batches to the cross-tenant
:class:`~repro.serve.scheduler.BatchScheduler`.

Connections are stateless beyond the ``hello`` handshake: a tenant's
session lives in the manager, not the connection, so a dropped client
reconnects and carries on — and a killed *daemon* restarted with
``resume=True`` carries on from the journal.

The wire format is the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`; malformed requests get an ``error`` reply
and the connection stays up, so one confused client cannot take a
tenant down.

Hardened for long-lived operation (pinned by the hardening and
chaos-proxy suites; the event loop preserves every contract):

- every connection runs under a read deadline (``io_timeout``): a
  slow-loris client that dribbles bytes — or stalls mid-frame — is
  evicted with an ``error`` reply instead of pinning resources.  The
  deadline applies only while the connection is *idle*; a request
  being processed never times its own connection out;
- recoverable protocol violations (an oversized declared length, a
  well-framed but undecodable payload) get an ``error`` reply and the
  connection *stays up* — oversized payload bytes are skipped as they
  stream in, so framing never desyncs; only a broken byte stream
  closes a connection;
- ``status`` reports per-tenant health, scheduler and journal
  statistics without a handshake;
- shutdown drains: stop accepting, finish in-flight batches,
  checkpoint every tenant, compact the journal, then exit — and the
  helper thread that stops the serve loop is joined in :meth:`close`,
  so the listening socket is provably gone when :func:`serve` returns;
- idle tenants are evicted with a checkpoint (``idle_evict_s``) from
  the loop's housekeeping tick, keeping resident model memory
  proportional to *active* tenants.
"""

from __future__ import annotations

import json
import logging
import selectors
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, Optional, Tuple

from repro.serve import protocol
from repro.serve.checkpoint import decode_array
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec

_log = logging.getLogger("repro.serve")

_LENGTH = struct.Struct(">I")

#: bytes pulled per non-blocking recv
_RECV_BYTES = 1 << 16

#: grace (seconds) a connection marked for closing gets to flush its
#: last reply before the deadline sweep hard-closes it
_CLOSE_GRACE_S = 5.0


class _Connection:
    """Per-connection state, owned by the event-loop thread.

    The dispatcher pool only ever touches ``tenant`` (and only while
    this connection is ``busy``, so exactly one thread at a time).
    """

    __slots__ = ("sock", "peer", "recv_buffer", "send_buffer", "inbox",
                 "tenant", "busy", "closing", "eof", "skip_remaining",
                 "skip_error", "deadline", "events")

    def __init__(self, sock: socket.socket, peer) -> None:
        self.sock = sock
        self.peer = peer
        self.recv_buffer = bytearray()
        self.send_buffer = bytearray()
        #: complete decoded messages awaiting dispatch (in order)
        self.inbox: Deque[dict] = deque()
        self.tenant: Optional[str] = None
        #: a message of this connection is in the dispatcher pool
        self.busy = False
        #: close once the send buffer flushes (post-``bye``/eviction)
        self.closing = False
        #: peer sent EOF; close once queued work and replies settle
        self.eof = False
        #: oversized-frame payload bytes still to discard
        self.skip_remaining = 0
        self.skip_error: Optional[str] = None
        #: monotonic eviction instant (None while a request is in
        #: flight — processing time never counts against the peer)
        self.deadline: Optional[float] = None
        self.events = selectors.EVENT_READ


class ServeDaemon:
    """The serving loop: bind, select, and delegate to the manager.

    ``port=0`` binds an OS-assigned port (tests); :attr:`address` is
    the actually-bound ``(host, port)``.  :meth:`serve_forever` blocks
    until a client sends ``shutdown`` or :meth:`shutdown` is called;
    :meth:`drain` checkpoints every tenant and compacts the journal;
    :meth:`close` joins the shutdown helper, tears down the sockets and
    the manager.  :meth:`server_close` tears down *only* the sockets —
    the kill-resume tests use it as SIGKILL: manager and journal stay
    untouched.

    Parameters
    ----------
    io_timeout:
        Idle-connection deadline in seconds (0 disables): a peer that
        keeps a connection silent — or stalls mid-frame — longer than
        this is evicted.
    idle_evict_s:
        Evict-with-checkpoint tenants idle longer than this (0
        disables); enforced by :meth:`service_actions` every loop tick.
    max_message_bytes:
        Frame-size cap (tests shrink it to exercise the
        oversized-frame reply).
    dispatch_workers:
        Dispatcher pool size — how many connections' messages can be
        *handled* concurrently (batch execution itself is pooled one
        layer down, in the manager's scheduler).
    """

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 0, *, io_timeout: float = 30.0,
                 idle_evict_s: float = 0.0,
                 max_message_bytes: int = protocol.MAX_MESSAGE_BYTES,
                 dispatch_workers: int = 8) -> None:
        if io_timeout < 0:
            raise ValueError("io_timeout must be >= 0")
        if idle_evict_s < 0:
            raise ValueError("idle_evict_s must be >= 0")
        if dispatch_workers < 1:
            raise ValueError("dispatch_workers must be >= 1")
        self.manager = manager
        self.io_timeout = io_timeout
        self.idle_evict_s = idle_evict_s
        self.max_message_bytes = max_message_bytes
        self.poll_interval = 0.5
        self.draining = False
        self.drain_requested = False
        self.evicted_connections = 0
        self._shutdown_thread: Optional[threading.Thread] = None
        self._shutdown_request = False
        #: set while the loop is *not* running (stdlib-compatible
        #: shutdown(): callable before, during, or after serve_forever)
        self._stopped = threading.Event()
        self._stopped.set()
        self._closed = False
        self._connections: Dict[socket.socket, _Connection] = {}
        self._outbox: Deque[tuple] = deque()
        self._outbox_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="serve-dispatch")
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(128)
            self._listener.setblocking(False)
        except OSError:
            self._listener.close()
            raise
        self._server_address = self._listener.getsockname()[:2]
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._waker_recv, self._waker_send = socket.socketpair()
        self._waker_recv.setblocking(False)
        self._waker_send.setblocking(False)
        self._selector.register(self._waker_recv, selectors.EVENT_READ,
                                "waker")

    @property
    def address(self) -> Tuple[str, int]:
        return self._server_address[0], self._server_address[1]

    # -- the event loop ------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (or a ``bye``)."""
        self._stopped.clear()
        try:
            while not self._shutdown_request:
                try:
                    ready = self._selector.select(self._select_timeout())
                except OSError:
                    if self._closed:
                        break       # server_close raced the loop
                    raise
                for key, mask in ready:
                    if key.data is None:
                        self._accept()
                    elif key.data == "waker":
                        self._drain_waker()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_WRITE \
                                and conn.sock in self._connections:
                            self._flush(conn)
                        if mask & selectors.EVENT_READ \
                                and conn.sock in self._connections:
                            self._read(conn)
                self._drain_outbox()
                self._sweep_deadlines()
                self.service_actions()
        finally:
            self._shutdown_request = False
            self._stopped.set()

    def _select_timeout(self) -> float:
        timeout = self.poll_interval
        now = time.monotonic()
        for conn in self._connections.values():
            if conn.deadline is not None:
                timeout = min(timeout, max(0.0, conn.deadline - now))
        return timeout

    def _accept(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            conn = _Connection(sock, peer)
            if self.io_timeout:
                conn.deadline = time.monotonic() + self.io_timeout
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _read(self, conn: _Connection) -> None:
        try:
            while True:
                data = conn.sock.recv(_RECV_BYTES)
                if not data:
                    conn.eof = True
                    break
                conn.recv_buffer += data
                self._touch(conn)
                if len(data) < _RECV_BYTES:
                    break
        except BlockingIOError:
            pass                    # socket drained for now
        except OSError:
            self._close_connection(conn)
            return
        self._parse(conn)
        if conn.sock not in self._connections:
            return                  # a parse error reply closed it
        self._pump(conn)
        if conn.eof and not conn.busy and not conn.inbox \
                and not conn.send_buffer:
            self._close_connection(conn)

    def _touch(self, conn: _Connection) -> None:
        """Re-arm the idle deadline after bytes or a finished reply."""
        if self.io_timeout and not conn.closing and not conn.busy:
            conn.deadline = time.monotonic() + self.io_timeout

    def _parse(self, conn: _Connection) -> None:
        """Carve complete frames out of the receive buffer.

        Mirrors :func:`repro.serve.protocol.recv_message` error for
        error so the event loop keeps the threading daemon's exact
        reply texts: an oversized declared length flips the connection
        into skip mode (payload bytes are discarded as they stream in,
        framing stays intact) and the refusal is sent once the skip
        completes; an undecodable payload is refused with the
        connection left up.
        """
        while conn.sock in self._connections:
            if conn.skip_remaining:
                drop = min(len(conn.recv_buffer), conn.skip_remaining)
                del conn.recv_buffer[:drop]
                conn.skip_remaining -= drop
                if conn.skip_remaining:
                    return          # more payload still on the wire
                reason, conn.skip_error = conn.skip_error, None
                self._send_error(conn, reason)
                continue
            if len(conn.recv_buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack(bytes(conn.recv_buffer[:4]))
            if length > self.max_message_bytes:
                del conn.recv_buffer[:4]
                conn.skip_remaining = length
                error = protocol.FrameTooLargeError(length,
                                                    self.max_message_bytes)
                conn.skip_error = f"protocol violation: {error}"
                continue
            if len(conn.recv_buffer) < _LENGTH.size + length:
                return
            payload = bytes(conn.recv_buffer[4:4 + length])
            del conn.recv_buffer[:4 + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                self._send_error(
                    conn, "protocol violation: undecodable message "
                    f"payload: {error}")
                continue
            if not isinstance(message, dict) or "type" not in message:
                self._send_error(
                    conn, "protocol violation: message must be a JSON "
                    "object with a 'type'")
                continue
            conn.inbox.append(message)

    def _pump(self, conn: _Connection) -> None:
        """Dispatch the connection's next message, if it is free to."""
        if conn.busy or conn.closing or not conn.inbox:
            return
        message = conn.inbox.popleft()
        conn.busy = True
        conn.deadline = None        # processing never times the peer out
        self._executor.submit(self._dispatch, conn, message)

    def _dispatch(self, conn: _Connection, message: dict) -> None:
        """Handle one message (dispatcher pool thread); reply via outbox."""
        reply: Optional[dict] = None
        close_after = False
        shutdown_drain: Optional[bool] = None
        try:
            reply, close_after, shutdown_drain = self._handle(conn, message)
        except (AdmissionError, ValueError, KeyError) as error:
            reply = {"type": "error",
                     "reason": str(error) or type(error).__name__}
        except Exception:
            _log.exception("handler failure for %r", message.get("type"))
            reply = {"type": "error", "reason": "internal error"}
            close_after = True
        with self._outbox_lock:
            self._outbox.append((conn, reply, close_after, shutdown_drain))
        self._wake()

    def _handle(self, conn: _Connection, message: dict):
        """The request dispatch table; returns (reply, close, drain?)."""
        kind = message.get("type")
        # `close` naming its tenant explicitly is allowed without a
        # handshake: it is how a retrying client settles a close whose
        # first reply was lost on a severed connection
        handshake_free = ("hello", "shutdown", "status")
        if conn.tenant is None and kind not in handshake_free \
                and not (kind == "close" and message.get("tenant")):
            return {"type": "error",
                    "reason": "first message must be 'hello'"}, False, None
        if kind == "hello":
            if message.get("protocol") != protocol.PROTOCOL_VERSION:
                raise ValueError(
                    f"protocol version mismatch: daemon speaks "
                    f"{protocol.PROTOCOL_VERSION}")
            if self.draining:
                raise AdmissionError(
                    "daemon is draining; not admitting tenants")
            spec = TenantSpec(**message["spec"])
            opened = self.manager.open_tenant(spec)
            conn.tenant = spec.tenant
            return {"type": "welcome", "tenant": spec.tenant,
                    "resumed": opened["resumed"],
                    "batches_done": opened["batches_done"],
                    "chunk": opened["chunk"]}, False, None
        if kind == "frames":
            if self.draining:
                raise AdmissionError(
                    "daemon is draining; not accepting frames")
            images = decode_array(message["images"])
            labels = decode_array(message["labels"])
            chunk = message.get("chunk")
            outcome = self.manager.ingest(
                conn.tenant, images, labels,
                faults=int(message.get("faults", 0)),
                chunk=None if chunk is None else int(chunk))
            return dict(outcome, type="ack"), False, None
        if kind == "scorecard":
            card = self.manager.scorecard(conn.tenant)
            return {"type": "scorecard",
                    "scorecard": protocol.scorecard_to_dict(card)}, \
                False, None
        if kind == "status":
            return dict(self.status(), type="status"), False, None
        if kind == "close":
            name = str(message.get("tenant") or conn.tenant)
            card = self.manager.close_tenant(
                name, restore=bool(message.get("restore", False)))
            if name == conn.tenant:
                conn.tenant = None
            return {"type": "closed",
                    "scorecard": protocol.scorecard_to_dict(card)}, \
                False, None
        if kind == "shutdown":
            return {"type": "bye"}, True, bool(message.get("drain", True))
        return {"type": "error",
                "reason": f"unknown message type {kind!r}"}, False, None

    def _drain_outbox(self) -> None:
        """Apply dispatcher replies (event-loop thread)."""
        while True:
            with self._outbox_lock:
                if not self._outbox:
                    return
                conn, reply, close_after, shutdown_drain = \
                    self._outbox.popleft()
            conn.busy = False
            if shutdown_drain is not None:
                self.request_shutdown(drain=shutdown_drain)
            if conn.sock not in self._connections:
                continue            # closed while the reply was made
            if reply is not None:
                self._queue_reply(conn, reply)
            if close_after:
                conn.closing = True
                conn.deadline = time.monotonic() + _CLOSE_GRACE_S
            self._flush(conn)
            if conn.sock not in self._connections:
                continue
            if conn.closing:
                if not conn.send_buffer:
                    self._close_connection(conn)
                continue
            self._touch(conn)
            self._pump(conn)
            if conn.eof and not conn.busy and not conn.inbox \
                    and not conn.send_buffer:
                self._close_connection(conn)

    # -- writes --------------------------------------------------------

    def _queue_reply(self, conn: _Connection, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        conn.send_buffer += _LENGTH.pack(len(payload)) + payload

    def _send_error(self, conn: _Connection, reason: str) -> None:
        self._queue_reply(conn, {"type": "error", "reason": reason})
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.send_buffer:
            try:
                sent = conn.sock.send(bytes(conn.send_buffer))
            except BlockingIOError:
                break
            except OSError:
                self._close_connection(conn)
                return
            if sent == 0:
                break
            del conn.send_buffer[:sent]
        self._update_events(conn)

    def _update_events(self, conn: _Connection) -> None:
        wanted = selectors.EVENT_READ
        if conn.send_buffer:
            wanted |= selectors.EVENT_WRITE
        if wanted != conn.events:
            conn.events = wanted
            try:
                self._selector.modify(conn.sock, wanted, conn)
            except (KeyError, ValueError, OSError):
                pass                # already unregistered / closing

    # -- deadlines and housekeeping ------------------------------------

    def _sweep_deadlines(self) -> None:
        now = time.monotonic()
        for conn in list(self._connections.values()):
            if conn.deadline is None or now < conn.deadline:
                continue
            if conn.closing:
                self._close_connection(conn)    # flush grace expired
                continue
            # slow-loris / stalled peer: evict the connection, the
            # tenant session (if any) survives in the manager
            self.evicted_connections += 1
            self._queue_reply(conn, {
                "type": "error",
                "reason": "read deadline exceeded; evicting connection "
                          "(tenant state is kept)"})
            conn.closing = True
            conn.deadline = now + _CLOSE_GRACE_S
            self._flush(conn)
            if conn.sock in self._connections and not conn.send_buffer:
                self._close_connection(conn)

    def service_actions(self) -> None:
        """Housekeeping every loop tick: idle-tenant eviction."""
        if self.idle_evict_s > 0:
            for name in self.manager.evict_idle(self.idle_evict_s):
                _log.info("evicted idle tenant %s (checkpointed)", name)

    def _close_connection(self, conn: _Connection) -> None:
        if self._connections.pop(conn.sock, None) is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass                    # selector already closed / gone
        try:
            conn.sock.close()
        except OSError:
            pass                    # peer already reset the socket

    def _wake(self) -> None:
        try:
            self._waker_send.send(b"\0")
        except (BlockingIOError, OSError):
            pass                    # waker full or loop torn down: the
            #                         poll-interval tick picks it up

    def _drain_waker(self) -> None:
        try:
            while self._waker_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass                    # drained (or torn down mid-read)

    # -- status, shutdown, teardown ------------------------------------

    def status(self) -> dict:
        """The manager's health document plus daemon-level state."""
        return dict(self.manager.status(),
                    draining=self.draining,
                    evicted_connections=self.evicted_connections,
                    connections=len(self._connections),
                    address=list(self.address))

    def shutdown(self) -> None:
        """Stop the serve loop; blocks until it has exited."""
        self._shutdown_request = True
        self._wake()
        self._stopped.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop the serve loop without blocking the caller.

        ``shutdown()`` blocks until ``serve_forever`` exits, which
        never happens from inside the loop (or a dispatcher thread) —
        so the stop is issued from a helper thread, which :meth:`close`
        joins so nothing is fire-and-forget.  ``drain`` marks the
        daemon draining (new hellos and frames are refused) and asks
        the owner of the serve loop to run :meth:`drain` before
        closing, which is exactly what :func:`serve` does.
        """
        self.draining = self.draining or drain
        self.drain_requested = self.drain_requested or drain
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(target=self.shutdown,
                                                     daemon=True)
            self._shutdown_thread.start()

    def drain(self, timeout: Optional[float] = None) -> dict:
        """Finish in-flight batches, checkpoint every tenant, compact.

        Safe to call after ``serve_forever`` has returned (the CLI
        path) or while it still runs (the daemon refuses new work once
        ``draining`` is set).  Returns the manager's drain summary.
        """
        self.draining = True
        summary = self.manager.drain(timeout)
        _log.info("drained: %d tenant(s) checkpointed, %d journal "
                  "entries compacted away", len(summary["checkpointed"]),
                  summary["compacted_entries"])
        return summary

    def server_close(self) -> None:
        """Close every socket — and nothing else.

        The kill-resume tests call this directly as SIGKILL: the
        manager and its journal must stay untouched so a new daemon
        can resume from the on-disk checkpoints.
        """
        if self._closed:
            return
        self._closed = True
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        for sock in (self._listener, self._waker_recv, self._waker_send):
            try:
                sock.close()
            except OSError:
                pass                # already closed
        try:
            self._selector.close()
        except OSError:
            pass                    # selector backend already gone
        self._executor.shutdown(wait=False, cancel_futures=True)

    def close(self, *, close_tenants: bool = True) -> None:
        """Deterministic teardown: join the stopper, close sockets+manager.

        ``close_tenants=False`` is the drained-shutdown path: tenants
        stay open in the journal for a later ``--resume``.
        """
        if self._shutdown_thread is not None:
            self._shutdown_thread.join(timeout=5.0)
            self._shutdown_thread = None
        self.server_close()
        self.manager.close(close_tenants=close_tenants)

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(manager: SessionManager, host: str = "127.0.0.1",
          port: int = 0, *, io_timeout: float = 30.0,
          idle_evict_s: float = 0.0,
          drain_timeout: Optional[float] = 10.0) -> None:
    """Run a daemon until a client asks it to shut down (CLI entry).

    A drain-flavoured ``shutdown`` (the default) checkpoints every
    tenant and compacts the journal before this function returns —
    the process exits only after the drain completed and the listening
    socket is closed.
    """
    daemon = ServeDaemon(manager, host, port, io_timeout=io_timeout,
                         idle_evict_s=idle_evict_s)
    drained = False
    try:
        _log.info("repro serve listening on %s:%d", *daemon.address)
        daemon.serve_forever()
        if daemon.drain_requested:
            daemon.drain(drain_timeout)
            drained = True
    finally:
        daemon.close(close_tenants=not drained)
