"""The multi-tenant adaptation daemon: TCP front-end over SessionManager.

One thread per connection (:class:`socketserver.ThreadingTCPServer`),
all of them funnelling into a shared
:class:`~repro.serve.manager.SessionManager` — which is where the
serialization actually happens (per-tenant locks), so two clients
feeding the same tenant interleave at batch granularity and two
tenants adapt concurrently.  Connections are stateless beyond the
``hello`` handshake: a tenant's session lives in the manager, not the
connection, so a dropped client reconnects and carries on — and a
killed *daemon* restarted with ``resume=True`` carries on from the
journal.

The wire format is the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`; malformed requests get an ``error`` reply
and the connection stays up, so one confused client cannot take a
tenant down.

Hardened for long-lived operation (and pinned by the chaos-proxy test
suite, :mod:`repro.serve.chaos`):

- every connection runs under a read/write deadline (``io_timeout``),
  so a slow-loris client that dribbles bytes — or stalls mid-frame —
  is evicted instead of pinning a handler thread forever;
- recoverable protocol violations (an oversized declared length, a
  well-framed but undecodable payload) get an ``error`` reply and the
  connection *stays up*; only a broken byte stream (mid-message EOF,
  desynced framing) closes it;
- ``status`` reports per-tenant health and journal statistics without
  a handshake;
- shutdown drains: stop accepting, finish in-flight batches,
  checkpoint every tenant, compact the journal, then exit — and the
  helper thread that stops the serve loop is joined in :meth:`close`,
  so the listening socket is provably gone when :func:`serve` returns;
- idle tenants are evicted with a checkpoint (``idle_evict_s``) from
  the accept loop's housekeeping hook, keeping resident model memory
  proportional to *active* tenants.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.serve import protocol
from repro.serve.checkpoint import decode_array
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec

_log = logging.getLogger("repro.serve")


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: hello handshake, then a request loop."""

    def setup(self) -> None:
        server: ServeDaemon = self.server  # type: ignore[assignment]
        if server.io_timeout:
            self.request.settimeout(server.io_timeout)

    def handle(self) -> None:
        server: ServeDaemon = self.server  # type: ignore[assignment]
        tenant: Optional[str] = None
        while True:
            try:
                message = protocol.recv_message(
                    self.request, max_bytes=server.max_message_bytes)
            except socket.timeout:
                # slow-loris / stalled peer: evict the connection, the
                # tenant session (if any) survives in the manager
                server.evicted_connections += 1
                self._reply_error("read deadline exceeded; evicting "
                                  "connection (tenant state is kept)")
                return
            except protocol.FrameTooLargeError as error:
                # the payload is still on the wire: drain it so framing
                # stays intact, refuse the message, keep serving
                try:
                    protocol.drain_frame(self.request, error.length)
                except (protocol.ProtocolError, OSError):
                    self._reply_error(f"protocol violation: {error}")
                    return
                self._reply_error(f"protocol violation: {error}")
                continue
            except protocol.PayloadError as error:
                # frame consumed exactly; the connection is still usable
                self._reply_error(f"protocol violation: {error}")
                continue
            except protocol.ProtocolError as error:
                self._reply_error(f"protocol violation: {error}")
                return
            except OSError:
                return                  # peer reset / socket gone
            if message is None:
                return                  # client hung up cleanly
            kind = message.get("type")
            # `close` naming its tenant explicitly is allowed without a
            # handshake: it is how a retrying client settles a close
            # whose first reply was lost on a severed connection
            handshake_free = ("hello", "shutdown", "status")
            if tenant is None and kind not in handshake_free \
                    and not (kind == "close" and message.get("tenant")):
                self._reply_error("first message must be 'hello'")
                continue
            try:
                if kind == "hello":
                    tenant = self._handle_hello(server, message)
                elif kind == "frames":
                    self._handle_frames(server, tenant, message)
                elif kind == "scorecard":
                    card = server.manager.scorecard(tenant)
                    protocol.send_message(self.request, {
                        "type": "scorecard",
                        "scorecard": protocol.scorecard_to_dict(card)})
                elif kind == "status":
                    protocol.send_message(
                        self.request, dict(server.status(), type="status"))
                elif kind == "close":
                    name = str(message.get("tenant") or tenant)
                    card = server.manager.close_tenant(
                        name, restore=bool(message.get("restore", False)))
                    protocol.send_message(self.request, {
                        "type": "closed",
                        "scorecard": protocol.scorecard_to_dict(card)})
                    if name == tenant:
                        tenant = None
                elif kind == "shutdown":
                    protocol.send_message(self.request, {"type": "bye"})
                    server.request_shutdown(
                        drain=bool(message.get("drain", True)))
                    return
                else:
                    self._reply_error(f"unknown message type {kind!r}")
            except (AdmissionError, ValueError, KeyError) as error:
                self._reply_error(str(error) or type(error).__name__)
            except OSError:
                return                  # reply could not be delivered

    def _handle_hello(self, server: "ServeDaemon", message: dict) -> str:
        if message.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ValueError(
                f"protocol version mismatch: daemon speaks "
                f"{protocol.PROTOCOL_VERSION}")
        if server.draining:
            raise AdmissionError("daemon is draining; not admitting tenants")
        spec = TenantSpec(**message["spec"])
        opened = server.manager.open_tenant(spec)
        protocol.send_message(self.request, {
            "type": "welcome", "tenant": spec.tenant,
            "resumed": opened["resumed"],
            "batches_done": opened["batches_done"],
            "chunk": opened["chunk"]})
        return spec.tenant

    def _handle_frames(self, server: "ServeDaemon", tenant: str,
                       message: dict) -> None:
        if server.draining:
            raise AdmissionError("daemon is draining; not accepting frames")
        images = decode_array(message["images"])
        labels = decode_array(message["labels"])
        chunk = message.get("chunk")
        outcome = server.manager.ingest(
            tenant, images, labels,
            faults=int(message.get("faults", 0)),
            chunk=None if chunk is None else int(chunk))
        protocol.send_message(self.request, dict(outcome, type="ack"))

    def _reply_error(self, reason: str) -> None:
        try:
            protocol.send_message(self.request, {"type": "error",
                                                 "reason": reason})
        except OSError:
            pass        # peer is gone; nothing to tell it


class ServeDaemon(socketserver.ThreadingTCPServer):
    """The serving loop: bind, accept, and delegate to the manager.

    ``port=0`` binds an OS-assigned port (tests); :attr:`address` is
    the actually-bound ``(host, port)``.  :meth:`serve_forever` blocks
    until a client sends ``shutdown`` or :meth:`shutdown` is called;
    :meth:`drain` checkpoints every tenant and compacts the journal;
    :meth:`close` joins the shutdown helper, tears down the socket and
    the manager.

    Parameters
    ----------
    io_timeout:
        Per-connection socket deadline in seconds (0 disables): a peer
        that stalls a read or write longer than this is evicted.
    idle_evict_s:
        Evict-with-checkpoint tenants idle longer than this (0
        disables); enforced by :meth:`service_actions` between accepts.
    max_message_bytes:
        Frame-size cap handed to :func:`repro.serve.protocol.recv_message`
        (tests shrink it to exercise the oversized-frame reply).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 0, *, io_timeout: float = 30.0,
                 idle_evict_s: float = 0.0,
                 max_message_bytes: int = protocol.MAX_MESSAGE_BYTES) -> None:
        if io_timeout < 0:
            raise ValueError("io_timeout must be >= 0")
        if idle_evict_s < 0:
            raise ValueError("idle_evict_s must be >= 0")
        self.manager = manager
        self.io_timeout = io_timeout
        self.idle_evict_s = idle_evict_s
        self.max_message_bytes = max_message_bytes
        self.draining = False
        self.drain_requested = False
        self.evicted_connections = 0
        self._shutdown_thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def service_actions(self) -> None:
        """Housekeeping between accepts: idle-tenant eviction."""
        if self.idle_evict_s > 0:
            for name in self.manager.evict_idle(self.idle_evict_s):
                _log.info("evicted idle tenant %s (checkpointed)", name)

    def status(self) -> dict:
        """The manager's health document plus daemon-level state."""
        return dict(self.manager.status(),
                    draining=self.draining,
                    evicted_connections=self.evicted_connections,
                    address=list(self.address))

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop the serve loop without deadlocking the calling handler.

        ``shutdown()`` blocks until ``serve_forever`` exits, which never
        happens from inside a handler thread — so the stop is issued
        from a helper thread, which :meth:`close` joins so nothing is
        fire-and-forget.  ``drain`` marks the daemon draining (new
        hellos and frames are refused) and asks the owner of the serve
        loop to run :meth:`drain` before closing, which is exactly what
        :func:`serve` does.
        """
        self.draining = self.draining or drain
        self.drain_requested = self.drain_requested or drain
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(target=self.shutdown,
                                                     daemon=True)
            self._shutdown_thread.start()

    def drain(self, timeout: Optional[float] = None) -> dict:
        """Finish in-flight batches, checkpoint every tenant, compact.

        Safe to call after ``serve_forever`` has returned (the CLI
        path) or while it still runs (the daemon refuses new work once
        ``draining`` is set).  Returns the manager's drain summary.
        """
        self.draining = True
        summary = self.manager.drain(timeout)
        _log.info("drained: %d tenant(s) checkpointed, %d journal "
                  "entries compacted away", len(summary["checkpointed"]),
                  summary["compacted_entries"])
        return summary

    def close(self, *, close_tenants: bool = True) -> None:
        """Deterministic teardown: join the stopper, close socket+manager.

        ``close_tenants=False`` is the drained-shutdown path: tenants
        stay open in the journal for a later ``--resume``.
        """
        if self._shutdown_thread is not None:
            self._shutdown_thread.join(timeout=5.0)
            self._shutdown_thread = None
        self.server_close()
        self.manager.close(close_tenants=close_tenants)

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(manager: SessionManager, host: str = "127.0.0.1",
          port: int = 0, *, io_timeout: float = 30.0,
          idle_evict_s: float = 0.0,
          drain_timeout: Optional[float] = 10.0) -> None:
    """Run a daemon until a client asks it to shut down (CLI entry).

    A drain-flavoured ``shutdown`` (the default) checkpoints every
    tenant and compacts the journal before this function returns —
    the process exits only after the drain completed and the listening
    socket is closed.
    """
    daemon = ServeDaemon(manager, host, port, io_timeout=io_timeout,
                         idle_evict_s=idle_evict_s)
    drained = False
    try:
        _log.info("repro serve listening on %s:%d", *daemon.address)
        daemon.serve_forever()
        if daemon.drain_requested:
            daemon.drain(drain_timeout)
            drained = True
    finally:
        daemon.close(close_tenants=not drained)
