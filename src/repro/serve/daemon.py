"""The multi-tenant adaptation daemon: TCP front-end over SessionManager.

One thread per connection (:class:`socketserver.ThreadingTCPServer`),
all of them funnelling into a shared
:class:`~repro.serve.manager.SessionManager` — which is where the
serialization actually happens (per-tenant locks), so two clients
feeding the same tenant interleave at batch granularity and two
tenants adapt concurrently.  Connections are stateless beyond the
``hello`` handshake: a tenant's session lives in the manager, not the
connection, so a dropped client reconnects and carries on — and a
killed *daemon* restarted with ``resume=True`` carries on from the
journal.

The wire format is the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`; malformed requests get an ``error`` reply
and the connection stays up, so one confused client cannot take a
tenant down.
"""

from __future__ import annotations

import logging
import socketserver
import threading
from typing import Optional, Tuple

from repro.serve import protocol
from repro.serve.checkpoint import decode_array
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec

_log = logging.getLogger("repro.serve")


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: hello handshake, then a request loop."""

    def handle(self) -> None:
        server: ServeDaemon = self.server  # type: ignore[assignment]
        tenant: Optional[str] = None
        while True:
            try:
                message = protocol.recv_message(self.request)
            except protocol.ProtocolError as error:
                self._reply_error(f"protocol violation: {error}")
                return
            if message is None:
                return                      # client hung up cleanly
            kind = message.get("type")
            if tenant is None and kind not in ("hello", "shutdown"):
                self._reply_error("first message must be 'hello'")
                continue
            try:
                if kind == "hello":
                    tenant = self._handle_hello(server, message)
                elif kind == "frames":
                    self._handle_frames(server, tenant, message)
                elif kind == "scorecard":
                    card = server.manager.scorecard(tenant)
                    protocol.send_message(self.request, {
                        "type": "scorecard",
                        "scorecard": protocol.scorecard_to_dict(card)})
                elif kind == "close":
                    card = server.manager.close_tenant(
                        tenant, restore=bool(message.get("restore", False)))
                    protocol.send_message(self.request, {
                        "type": "closed",
                        "scorecard": protocol.scorecard_to_dict(card)})
                    tenant = None
                elif kind == "shutdown":
                    protocol.send_message(self.request, {"type": "bye"})
                    server.request_shutdown()
                    return
                else:
                    self._reply_error(f"unknown message type {kind!r}")
            except (AdmissionError, ValueError, KeyError) as error:
                self._reply_error(str(error) or type(error).__name__)

    def _handle_hello(self, server: "ServeDaemon", message: dict) -> str:
        if message.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ValueError(
                f"protocol version mismatch: daemon speaks "
                f"{protocol.PROTOCOL_VERSION}")
        spec = TenantSpec(**message["spec"])
        opened = server.manager.open_tenant(spec)
        protocol.send_message(self.request, {
            "type": "welcome", "tenant": spec.tenant,
            "resumed": opened["resumed"],
            "batches_done": opened["batches_done"]})
        return spec.tenant

    def _handle_frames(self, server: "ServeDaemon", tenant: str,
                       message: dict) -> None:
        images = decode_array(message["images"])
        labels = decode_array(message["labels"])
        outcome = server.manager.ingest(
            tenant, images, labels,
            faults=int(message.get("faults", 0)))
        protocol.send_message(self.request, dict(outcome, type="ack"))

    def _reply_error(self, reason: str) -> None:
        try:
            protocol.send_message(self.request, {"type": "error",
                                                 "reason": reason})
        except OSError:
            pass        # peer is gone; nothing to tell it


class ServeDaemon(socketserver.ThreadingTCPServer):
    """The serving loop: bind, accept, and delegate to the manager.

    ``port=0`` binds an OS-assigned port (tests); :attr:`address` is
    the actually-bound ``(host, port)``.  :meth:`serve_forever` blocks
    until a client sends ``shutdown`` or :meth:`shutdown` is called;
    :meth:`close` tears down the socket and the manager (which closes
    every tenant and the journal).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.manager = manager
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def request_shutdown(self) -> None:
        """Stop the serve loop without deadlocking the calling handler.

        ``shutdown()`` blocks until ``serve_forever`` exits, which never
        happens from inside a handler thread — so the stop is issued
        from a helper thread.
        """
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        self.server_close()
        self.manager.close()

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(manager: SessionManager, host: str = "127.0.0.1",
          port: int = 0) -> None:
    """Run a daemon until a client asks it to shut down (CLI entry)."""
    with ServeDaemon(manager, host, port) as daemon:
        _log.info("repro serve listening on %s:%d", *daemon.address)
        daemon.serve_forever()
