"""Cross-tenant batch scheduling for the serve path.

PR 8's manager processed batches inline inside ``ingest``, under the
calling tenant's lock: correct, but one hot tenant's backlog ran on the
connection handler's thread while every other tenant's work waited for
a thread of its own.  :class:`BatchScheduler` decouples *who asks* from
*who runs*: ingest enqueues carved batches as keyed work items and a
small shared worker pool dispatches them — so frames from many tenants
coalesce into shared backend dispatches instead of one lock-serialized
stream per connection thread.

Two invariants make the scheduler safe to put under the bit-identity
contract (kill-resume, chaos twins):

- **per-key FIFO**: items submitted under one key run in submission
  order, exactly the order ``ingest`` carved them;
- **per-key non-overlap**: at most one item per key is in flight, so a
  tenant's session is never entered concurrently.

Across keys the dispatch order is round-robin: a key leaves the
rotation while its item runs and re-joins at the *tail* when it
completes, so a hot tenant with a deep queue cannot starve a cold one
— every key gets one batch per rotation sweep.

Submitters get a :class:`BatchTicket` per item and wait on it; the ack
a client sees is therefore still synchronous (`batches_done` reflects
every batch of the chunk), only the execution is pooled.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["BatchScheduler", "BatchTicket", "SchedulerClosedError"]


class SchedulerClosedError(RuntimeError):
    """Work submitted to — or stranded in — a scheduler being closed."""


class BatchTicket:
    """Completion handle for one submitted batch.

    A deliberately tiny future: :meth:`wait` blocks until the batch ran
    (re-raising the batch's exception, if any) and returns ``False``
    only on timeout.
    """

    __slots__ = ("_event", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        if not self._event.wait(timeout):
            return False
        if self.error is not None:
            raise self.error
        return True

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self.error = error
        self._event.set()


class _KeyQueue:
    """One key's pending items plus its in-flight marker."""

    __slots__ = ("items", "in_flight")

    def __init__(self) -> None:
        self.items: Deque[tuple] = deque()      # (fn, ticket)
        self.in_flight = False


class BatchScheduler:
    """Round-robin keyed work queues over a bounded worker pool.

    Parameters
    ----------
    workers:
        Worker thread count — the cross-tenant parallelism.  Workers
        are daemon threads so an abandoned manager (the SIGKILL test
        pattern ``del manager``) never blocks interpreter exit.
    record_dispatches:
        Keep an ordered log of dispatched keys in :attr:`dispatch_log`
        (tests assert fairness on it; off by default to stay O(1)).
    start:
        ``False`` delays the worker pool until :meth:`start`, letting a
        test preload queues and observe a deterministic dispatch order.
    """

    def __init__(self, *, workers: int = 2,
                 record_dispatches: bool = False,
                 start: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.dispatch_log: List[str] = []
        self._record = record_dispatches
        self._cond = threading.Condition()
        self._queues: Dict[str, _KeyQueue] = {}
        self._rotation: Deque[str] = deque()
        self._in_flight = 0
        self._queued = 0
        self._dispatched = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        if start:
            self.start()

    # -- submission ----------------------------------------------------

    def submit(self, key: str, fn: Callable[[], None]) -> BatchTicket:
        """Queue ``fn`` under ``key``; returns its completion ticket."""
        ticket = BatchTicket()
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = _KeyQueue()
            queue.items.append((fn, ticket))
            self._queued += 1
            # a key already in flight (or already queued) is not
            # re-entered into the rotation: the finishing worker or the
            # existing entry will pick this item up in FIFO order
            if not queue.in_flight and len(queue.items) == 1:
                self._rotation.append(key)
            self._cond.notify()
        return ticket

    # -- worker pool ---------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        started: List[threading.Thread] = []
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._work, daemon=True,
                    name=f"serve-batch-{len(self._threads)}")
                self._threads.append(thread)
                started.append(thread)
        for thread in started:
            thread.start()

    def _work(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._rotation:
                    self._cond.wait()
                if self._closed:
                    return
                key = self._rotation.popleft()
                queue = self._queues[key]
                fn, ticket = queue.items.popleft()
                queue.in_flight = True
                self._in_flight += 1
                self._queued -= 1
                self._dispatched += 1
                if self._record:
                    self.dispatch_log.append(key)
            error: Optional[BaseException] = None
            try:
                fn()
            except BaseException as exc:       # noqa: BLE001 — carried
                error = exc                    # to the submitter's wait
            with self._cond:
                self._in_flight -= 1
                if not self._closed:
                    queue.in_flight = False
                    if queue.items:
                        # tail re-entry: round-robin fairness across keys
                        self._rotation.append(key)
                    else:
                        del self._queues[key]
                self._cond.notify_all()         # wake workers + waiters
            ticket._finish(error)

    # -- synchronization -----------------------------------------------

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued or in flight anywhere."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._queued == 0 and self._in_flight == 0,
                timeout)

    def wait_key(self, key: str, timeout: Optional[float] = None) -> bool:
        """Block until ``key`` has no queued or in-flight work."""
        with self._cond:
            return self._cond.wait_for(
                lambda: key not in self._queues, timeout)

    def depth(self) -> int:
        """Batches currently queued plus in flight."""
        with self._cond:
            return self._queued + self._in_flight

    def stats(self) -> dict:
        """JSON-safe counters for the daemon's status document."""
        with self._cond:
            return {"workers": self.workers, "queued": self._queued,
                    "in_flight": self._in_flight,
                    "dispatched": self._dispatched}

    def close(self, timeout: float = 5.0) -> None:
        """Stop the pool; outstanding tickets fail with a closed error.

        In-flight batches finish (their tickets resolve normally);
        queued-but-never-dispatched items are failed so no submitter
        waits forever.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            stranded = [ticket for queue in self._queues.values()
                        for _, ticket in queue.items]
            self._queues.clear()
            self._rotation.clear()
            self._queued = 0
            self._cond.notify_all()
        for ticket in stranded:
            ticket._finish(SchedulerClosedError(
                "scheduler closed before the batch ran"))
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=timeout)
        with self._cond:
            self._threads.clear()
