"""Seeded TCP chaos proxy: network faults for the serve wire protocol.

The robustness layer injects *batch-level* faults (NaN pixels, constant
frames) into adaptation streams; this module extends the same seeded
fault grammar to the *network and lifecycle* layer.  :class:`ChaosProxy`
is an in-process TCP proxy that sits between a
:class:`~repro.serve.client.ServeClient` and a
:class:`~repro.serve.daemon.ServeDaemon` and mangles the client→server
byte stream on a deterministic schedule, reproducing the failure modes
a long-lived edge deployment actually sees: mid-frame disconnects,
partial writes, stalled and dribbling senders, truncated frames, and
malformed garbage.

The schedule reuses :class:`~repro.robustness.faults.FaultSpec` /
:class:`~repro.robustness.faults.FaultSchedule` verbatim — the network
taxonomy below is registered into the spec grammar at import time, so
``"disconnect:0.1"``, ``"truncate@2+5"``, and friends parse exactly
like batch fault specs.  Fault indices count *client→server protocol
messages through the proxy* (the ``hello`` is message 0), across all
connections, so a retried message consumes the next index.

Network fault taxonomy (``NETWORK_FAULT_NAMES``):

- ``disconnect`` — forward the frame intact, then sever the client
  connection before the reply can arrive.  The server *applies* the
  operation; the client must retry; only chunk-dedupe on the daemon
  keeps the retry from double-applying adaptation.
- ``truncate`` — forward the length prefix and a strict prefix of the
  payload, then sever both sides.  The server sees a mid-message EOF
  (the op is *not* applied); the client must retry.
- ``split`` — deliver the frame one header byte at a time and the
  payload in tiny chunks with pauses: the slow-but-honest sender every
  ``recv`` loop must tolerate.
- ``delay`` — stall the whole frame by ``delay_s`` before forwarding
  (raise it past the daemon's ``io_timeout`` to exercise slow-loris
  eviction).
- ``garbage`` — replace the frame with seeded random bytes (top bit of
  the bogus length prefix forced on, so the daemon refuses it as
  oversized instead of waiting for gigabytes) and sever both sides.

Usage::

    specs = parse_fault_specs("disconnect@2,truncate@5")
    with ChaosProxy(daemon_host, daemon_port, specs, seed=7) as proxy:
        client = ServeClient.connect(*proxy.address, retries=8)
        ...
    proxy.events     # [FaultEvent(batch_index=2, fault="disconnect"), ...]

The proxy is deliberately one-way-chaotic: server→client bytes are
relayed verbatim (a ``disconnect``/``truncate``/``garbage`` still kills
the relay, losing the in-flight reply — which is the point).
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.robustness.faults import (
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    parse_fault_specs,
    register_fault_names,
)

#: the network fault taxonomy, in severity-of-mangling order
NETWORK_FAULT_NAMES = ("disconnect", "delay", "truncate", "split",
                       "garbage")

# make the network taxonomy parseable by the shared FaultSpec grammar
# (import-time, single-threaded by Python's import lock)
register_fault_names(NETWORK_FAULT_NAMES)

_LENGTH = struct.Struct(">I")

#: bytes of seeded noise a ``garbage`` fault sends upstream
_GARBAGE_BYTES = 32


def parse_network_fault_specs(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a comma-separated chaos spec string (CLI ``--chaos``).

    Same grammar as batch fault specs, restricted to the network
    taxonomy so a typo'd ``nan:0.2`` fails loudly here instead of
    silently never firing in the proxy.
    """
    specs = parse_fault_specs(text)
    for spec in specs:
        if spec.fault not in NETWORK_FAULT_NAMES:
            raise ValueError(
                f"{spec.fault!r} is not a network fault; choose from "
                f"{NETWORK_FAULT_NAMES}")
    return specs


def _read_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF (clean or mid-read)."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Relay:
    """One proxied connection: client socket, upstream socket, pumps."""

    def __init__(self, client: socket.socket,
                 upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self._closed = threading.Lock()   # close-once guard

    def close(self) -> None:
        if not self._closed.acquire(blocking=False):
            return
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass        # peer already gone; closing is what matters
            try:
                sock.close()
            except OSError:
                pass        # double-close race with the other pump


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of a serve daemon.

    Parameters
    ----------
    upstream_host, upstream_port:
        The real daemon to forward to.
    specs:
        :class:`FaultSpec` sequence over :data:`NETWORK_FAULT_NAMES`
        (e.g. from :func:`parse_network_fault_specs`).
    seed:
        Seeds both the fault schedule and the ``garbage`` noise, so a
        chaos run is reproducible message-for-message.
    delay_s:
        Stall duration of the ``delay`` fault.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 specs: Sequence[FaultSpec], *, seed: int = 0,
                 delay_s: float = 0.2,
                 listen_host: str = "127.0.0.1") -> None:
        for spec in specs:
            if spec.fault not in NETWORK_FAULT_NAMES:
                raise ValueError(
                    f"{spec.fault!r} is not a network fault; choose "
                    f"from {NETWORK_FAULT_NAMES}")
        self.upstream = (upstream_host, upstream_port)
        self.schedule = FaultSchedule(specs, seed=seed)
        self.delay_s = delay_s
        self.events: List[FaultEvent] = []
        self._lock = threading.Lock()       # schedule + events + relays
        self._message_index = 0
        self._relays: List[_Relay] = []
        self._threads: List[threading.Thread] = []
        self._closing = False
        self._listener: Optional[socket.socket] = None
        self._listen_host = listen_host

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The proxy's bound ``(host, port)`` — point clients here."""
        if self._listener is None:
            raise RuntimeError("proxy is not started")
        name = self._listener.getsockname()
        return name[0], name[1]

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return len(self.events)

    def start(self) -> "ChaosProxy":
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._listen_host, 0))
        listener.listen()
        self._listener = listener
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        with self._lock:
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Close the listener and every live relay; join the pumps."""
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass        # already closed by a failed accept
        with self._lock:
            relays = list(self._relays)
            threads = list(self._threads)
        for relay in relays:
            relay.close()
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / pump machinery ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return          # listener closed: shutting down
            try:
                upstream = socket.create_connection(self.upstream,
                                                    timeout=10.0)
            except OSError:
                client.close()
                continue
            relay = _Relay(client, upstream)
            forward = threading.Thread(target=self._pump_requests,
                                       args=(relay,), daemon=True)
            backward = threading.Thread(target=self._pump_replies,
                                        args=(relay,), daemon=True)
            with self._lock:
                self._relays.append(relay)
                self._threads.extend((forward, backward))
            forward.start()
            backward.start()

    def _pump_replies(self, relay: _Relay) -> None:
        """Server→client: verbatim byte relay (no injected chaos)."""
        while True:
            try:
                data = relay.upstream.recv(1 << 16)
            except OSError:
                break
            if not data:
                break
            try:
                relay.client.sendall(data)
            except OSError:
                break
        relay.close()

    def _pump_requests(self, relay: _Relay) -> None:
        """Client→server: frame-aware forwarding with injected faults."""
        while True:
            header = _read_exact(relay.client, _LENGTH.size)
            if header is None:
                break
            (length,) = _LENGTH.unpack(header)
            payload = _read_exact(relay.client, length)
            if payload is None:
                break
            with self._lock:
                index = self._message_index
                self._message_index += 1
                fault = self.schedule.fault_for(index)
                if fault:
                    self.events.append(
                        FaultEvent(batch_index=index, fault=fault))
            try:
                if not self._inject(relay, fault, index, header, payload):
                    break
            except OSError:
                break
        relay.close()

    def _inject(self, relay: _Relay, fault: str, index: int,
                header: bytes, payload: bytes) -> bool:
        """Forward one frame under ``fault``; False ends the relay."""
        if fault == "disconnect":
            # applied server-side, reply lost: the retry-dedupe case
            relay.upstream.sendall(header + payload)
            relay.close()
            return False
        if fault == "truncate":
            # mid-message EOF server-side: *not* applied
            keep = max(1, len(payload) // 2)
            relay.upstream.sendall(header + payload[:keep])
            relay.close()
            return False
        if fault == "garbage":
            relay.upstream.sendall(self._garbage(index))
            relay.close()
            return False
        if fault == "delay":
            time.sleep(self.delay_s)
            relay.upstream.sendall(header + payload)
            return True
        if fault == "split":
            for byte in header:
                relay.upstream.sendall(bytes([byte]))
                time.sleep(0.001)
            for start in range(0, len(payload), 7):
                relay.upstream.sendall(payload[start:start + 7])
                time.sleep(0.001)
            return True
        relay.upstream.sendall(header + payload)
        return True

    def _garbage(self, index: int) -> bytes:
        """Seeded noise whose bogus length prefix is always oversized."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self.schedule.seed, index)))
        noise = bytearray(rng.integers(0, 256, _GARBAGE_BYTES,
                                       dtype=np.uint8).tobytes())
        noise[0] |= 0x80        # declared length >= 2 GiB: refused, not read
        return bytes(noise)
