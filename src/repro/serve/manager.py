"""Multi-tenant session management for the serve daemon.

A *tenant* is one named adaptation stream: its own model instance, its
own :class:`~repro.serve.session.AdaptationSession`, its own frame
queue.  :class:`SessionManager` owns all of them and provides the three
operations the daemon's connection handlers call:

- :meth:`open_tenant` — admit (or re-attach to) a tenant from a
  :class:`TenantSpec`, resuming from the journal when one is configured;
- :meth:`ingest` — append frames to the tenant's queue, apply admission
  control, and coalesce full adaptation batches through the session;
- :meth:`close_tenant` — finish the stream and journal the scorecard.

Batches are *not* run on the caller's thread: ingest carves them and
submits each to a shared :class:`~repro.serve.scheduler.BatchScheduler`
(cross-tenant round-robin over ``workers`` threads), then waits the
tickets out so the ack is still synchronous.  Per-tenant order and
non-overlap are the scheduler's invariants, so the stream stays
bit-identical to PR 8's inline processing; what changed is that many
tenants' batches now share one bounded pool instead of each hogging
its own connection thread.

Durability follows the study runners' journal discipline
(:mod:`repro.resilience.journal`): every processed batch appends a
``tenant_checkpoint`` entry carrying the session's full checkpoint, so
a killed daemon restarted with ``resume=True`` re-admits every open
tenant *bit-identically* — same model bytes, same guard ladder
position, same optimizer moments, same score counters.  Admission
control reuses the real-time simulator's ``queue_capacity`` semantics
(:class:`repro.core.streaming.RealTimeStream`): a tenant buffers at
most ``queue_capacity`` batches of backlog beyond the one being
assembled; frames past that are dropped and scored as such.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import asdict, dataclass
from functools import partial
from typing import Dict, List, Optional

import numpy as np

from repro.engine import create_backend, use_backend
from repro.models.registry import build_model
from repro.nn import init as nn_init
from repro.resilience.journal import RunJournal
from repro.serve.protocol import scorecard_to_dict
from repro.serve.scheduler import BatchScheduler, BatchTicket
from repro.serve.session import AdaptationSession

#: journal event names of the serve layer (the study runners own
#: run_start/cell_ok/...; serve events are disjoint so one scanner can
#: tell the two document kinds apart)
SERVE_EVENTS = ("serve_start", "tenant_open", "tenant_checkpoint",
                "tenant_close", "tenant_evict")

#: the manager's lock discipline, outermost first, enforced by the
#: REP009 lock-order analysis: a per-tenant `entry.lock` may be held
#: while taking the registry or journal lock, never the reverse
_LOCK_ORDER = ("entry.lock", "SessionManager._tenants_lock",
               "SessionManager._journal_lock")

#: closed-tenant final scorecards retained for idempotent re-close
_FINAL_SCORECARDS_KEPT = 128


class AdmissionError(RuntimeError):
    """A tenant the manager refuses to admit (capacity or spec clash)."""


@dataclass(frozen=True)
class TenantSpec:
    """Everything that shapes one tenant's stream, fingerprintable.

    ``train=True`` pre-trains the tiny-profile model through the robust
    trainer's shared disk cache; ``train=False`` (the default, and what
    CI smoke uses) builds a deterministically random-initialized model
    seeded by ``seed`` — fast, and still reproducible across daemon
    restarts.
    """

    tenant: str
    model: str = "wrn40_2"
    method: str = "bn_opt"
    batch_size: int = 16
    guard: bool = True
    queue_capacity: int = 2
    train: bool = False
    image_size: int = 16
    seed: int = 0

    def __post_init__(self):
        if not self.tenant:
            raise ValueError("tenant name must be non-empty")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")

    def fingerprint(self) -> str:
        """Stable digest of the spec; a resume under a different spec
        is refused rather than silently continuing an incomparable
        stream."""
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class _Tenant:
    """One admitted tenant: spec, session, frame queue, its own lock."""

    def __init__(self, spec: TenantSpec, session: AdaptationSession) -> None:
        self.spec = spec
        self.session = session
        self.pending_images: List[np.ndarray] = []
        self.pending_labels: List[np.ndarray] = []
        self.lock = threading.Lock()
        self.closed = False
        #: highest applied ``frames`` chunk index (idempotent re-send
        #: dedupe); rides the checkpoint so resume keeps the dedupe line
        self.last_chunk = -1
        #: monotonic instant of the last ingest/open (idle eviction)
        self.last_active = time.monotonic()
        #: frames carved into batches sitting in (or running on) the
        #: scheduler — counted against :attr:`capacity` so admission
        #: sees the true backlog, not just the uncarved remainder
        self.queued_frames = 0

    @property
    def capacity(self) -> int:
        """Maximum buffered frames: the batch being assembled plus
        ``queue_capacity`` batches of backlog."""
        return (self.spec.queue_capacity + 1) * self.spec.batch_size


class SessionManager:
    """Owns every tenant session plus the shared backend and journal.

    Thread-safe: connection handler threads call into it concurrently.
    The tenant table has its own lock, each tenant serializes its
    stream behind a per-tenant lock (frames for one tenant process in
    arrival order even across connections), and journal appends — the
    :class:`~repro.resilience.journal.RunJournal` is not itself
    thread-safe — are serialized behind a journal lock.
    """

    def __init__(self, *, journal: Optional[str] = None,
                 resume: bool = False, backend: str = "numpy",
                 max_tenants: int = 8, checkpoint_every: int = 1,
                 compact_above: int = 0, workers: int = 2) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if compact_above < 0:
            raise ValueError("compact_above must be >= 0")
        self.max_tenants = max_tenants
        self.checkpoint_every = checkpoint_every
        #: journal size (bytes) above which a checkpoint append triggers
        #: online compaction (0 disables the threshold)
        self.compact_above = compact_above
        self.evictions = 0
        self.compactions = 0
        self._backend = create_backend(backend)
        self._scheduler = BatchScheduler(workers=workers)
        self._tenants: Dict[str, _Tenant] = {}
        self._tenants_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._journal = RunJournal(journal, resume=resume) if journal else None
        self._saved: Dict[str, dict] = {}
        self._final: Dict[str, object] = {}
        if self._journal is not None:
            if resume:
                self._saved = self._scan_saved()
            self._append({"event": "serve_start",
                          "resumed_tenants": sorted(self._saved)})

    # -- journal -------------------------------------------------------

    def _append(self, entry: dict) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.append(entry)

    def _scan_saved(self) -> Dict[str, dict]:
        """Last checkpoint per still-open tenant from a prior daemon life."""
        saved: Dict[str, dict] = {}
        for entry in self._journal.scan().entries:
            event = entry.get("event")
            if event == "tenant_checkpoint":
                saved[entry["tenant"]] = entry
            elif event == "tenant_close":
                saved.pop(entry["tenant"], None)
        return saved

    # -- tenant lifecycle ----------------------------------------------

    def _build_session(self, spec: TenantSpec) -> AdaptationSession:
        if spec.train:
            from repro.train.trainer import pretrain_robust
            model = pretrain_robust(spec.model, image_size=spec.image_size,
                                    seed=spec.seed)
        else:
            nn_init.seed(spec.seed)
            model = build_model(spec.model, profile="tiny")
            model.eval()
        return AdaptationSession(model, spec.method, guard=spec.guard,
                                 tenant=spec.tenant)

    def open_tenant(self, spec: TenantSpec) -> dict:
        """Admit ``spec``, resuming from the journal when possible.

        Returns ``{"resumed": bool, "batches_done": int, "chunk": int}``
        (``chunk`` is the last applied send index, -1 when none).
        Re-opening a tenant already live in this process re-attaches to
        it (the spec must match); a tenant with a checkpoint from a
        previous daemon life — or suspended here by idle eviction — is
        restored from it.
        """
        with self._tenants_lock:
            live = self._tenants.get(spec.tenant)
            if live is not None:
                if live.spec != spec:
                    raise AdmissionError(
                        f"tenant {spec.tenant!r} is live with a different "
                        "spec")
                return {"resumed": True,
                        "batches_done": live.session.batches_total,
                        "chunk": live.last_chunk}
            if len(self._tenants) >= self.max_tenants:
                raise AdmissionError(
                    f"tenant limit reached ({self.max_tenants})")
            saved = self._saved.pop(spec.tenant, None)
            if saved is not None and saved["fingerprint"] != spec.fingerprint():
                raise AdmissionError(
                    f"tenant {spec.tenant!r} was journaled under a "
                    "different spec; refusing to resume")
            session = self._build_session(spec)
            if saved is not None:
                session.load_checkpoint(saved["checkpoint"])
            else:
                session.start()
            tenant = _Tenant(spec, session)
            if saved is not None:
                tenant.last_chunk = int(saved.get("chunk", -1))
            self._tenants[spec.tenant] = tenant
        self._append({"event": "tenant_open", "tenant": spec.tenant,
                      "spec": asdict(spec),
                      "fingerprint": spec.fingerprint(),
                      "resumed": saved is not None})
        return {"resumed": saved is not None,
                "batches_done": session.batches_total,
                "chunk": tenant.last_chunk}

    def session(self, tenant: str) -> AdaptationSession:
        """The live session of one tenant (tests and handlers)."""
        return self._get(tenant).session

    def tenants(self) -> List[str]:
        """Names of the currently live tenants."""
        with self._tenants_lock:
            return sorted(self._tenants)

    def _get(self, tenant: str) -> _Tenant:
        with self._tenants_lock:
            try:
                return self._tenants[tenant]
            except KeyError:
                raise AdmissionError(f"unknown tenant {tenant!r}") from None

    # -- streaming -----------------------------------------------------

    def ingest(self, tenant: str, images: np.ndarray,
               labels: np.ndarray, *, faults: int = 0,
               chunk: Optional[int] = None) -> dict:
        """Queue frames, apply admission control, run full batches.

        Frames beyond the tenant's buffer capacity are dropped (scored
        as drops, exactly the real-time simulator's overflow rule);
        accepted frames are coalesced into ``batch_size`` adaptation
        batches, submitted to the shared cross-tenant scheduler, and
        *waited out* — the ack reflects every batch of this chunk —
        checkpointing every ``checkpoint_every`` batches.  Carving and
        submission happen under the tenant lock so concurrent ingests
        for one tenant enqueue in arrival order; the wait happens
        outside it so other chunks can queue up meanwhile.  ``faults``
        is the sender's count
        of faults it injected into this chunk (faults happen at the
        *edge*, client-side; the daemon only tallies them so the
        tenant's scorecard stays honest).

        ``chunk`` is the sender's monotonically increasing send index:
        a chunk at or below the highest applied one is acknowledged as
        a ``duplicate`` without touching the session, so a client whose
        connection was severed between apply and ack can blindly
        re-send — adaptation is never double-applied.  The dedupe line
        rides the journal checkpoints, staying consistent with the
        model state a resume restores.
        """
        if len(images) != len(labels):
            raise ValueError("images and labels must align")
        entry = self._get(tenant)
        tickets: List[BatchTicket] = []
        with entry.lock:
            if entry.closed:
                raise AdmissionError(f"tenant {tenant!r} is closed")
            session = entry.session
            entry.last_active = time.monotonic()
            if chunk is not None and int(chunk) <= entry.last_chunk:
                card = session.scorecard()
                return {
                    "accepted": 0,
                    "dropped": 0,
                    "duplicate": True,
                    "batches_done": session.batches_total,
                    "rollbacks": card.rollbacks,
                    "degraded_batches": card.degraded_batches,
                    "fallback_frames": card.fallback_frames,
                }
            session.faults_injected += int(faults)
            backlog = len(entry.pending_images) + entry.queued_frames
            space = entry.capacity - backlog
            accepted = max(0, min(len(images), space))
            dropped = len(images) - accepted
            if dropped:
                session.drop_frames(dropped)
            entry.pending_images.extend(np.asarray(image)
                                        for image in images[:accepted])
            entry.pending_labels.extend(int(label)
                                        for label in labels[:accepted])
            if chunk is not None:
                entry.last_chunk = int(chunk)
            batch = entry.spec.batch_size
            while len(entry.pending_images) >= batch:
                batch_images = np.stack(entry.pending_images[:batch])
                batch_labels = np.asarray(entry.pending_labels[:batch])
                del entry.pending_images[:batch]
                del entry.pending_labels[:batch]
                entry.queued_frames += batch
                tickets.append(self._scheduler.submit(
                    tenant, partial(self._process_batch, entry,
                                    batch_images, batch_labels)))
        for ticket in tickets:
            ticket.wait()
        with entry.lock:
            card = session.scorecard()
            return {
                "accepted": accepted,
                "dropped": dropped,
                "duplicate": False,
                "batches_done": session.batches_total,
                "rollbacks": card.rollbacks,
                "degraded_batches": card.degraded_batches,
                "fallback_frames": card.fallback_frames,
            }

    def _process_batch(self, entry: _Tenant, images: np.ndarray,
                       labels: np.ndarray) -> None:
        """Run one carved batch (scheduler worker thread).

        The tenant lock serializes against close/evict/drain; the
        scheduler already guarantees one batch per tenant at a time and
        FIFO order, so taking the lock here never contends with another
        batch of the same tenant.
        """
        with entry.lock:
            entry.queued_frames -= len(images)
            if entry.closed:
                return      # close or evict raced the queue: discarded
            with use_backend(self._backend):
                entry.session.process_batch(images, labels)
            if entry.session.batches_total % self.checkpoint_every == 0:
                self._checkpoint(entry)

    def _checkpoint(self, entry: _Tenant) -> None:
        self._append({"event": "tenant_checkpoint",
                      "tenant": entry.spec.tenant,
                      "fingerprint": entry.spec.fingerprint(),
                      "batches_done": entry.session.batches_total,
                      "chunk": entry.last_chunk,
                      "checkpoint": entry.session.checkpoint()})
        self.maybe_compact()

    def scorecard(self, tenant: str):
        """The tenant's current scorecard (live counters included)."""
        return self._get(tenant).session.scorecard()

    def close_tenant(self, tenant: str, *, restore: bool = False):
        """Finish one tenant's stream; returns its final scorecard.

        Idempotent: re-closing an already-closed tenant (a retrying
        client whose ``closed`` reply was lost on a severed connection)
        returns the recorded final scorecard instead of refusing.
        """
        try:
            entry = self._get(tenant)
        except AdmissionError:
            with self._tenants_lock:
                final = self._final.get(tenant)
            if final is not None:
                return final
            raise
        # wait out this tenant's queued/in-flight batches first, so the
        # final scorecard counts every frame an ack already admitted
        self._scheduler.wait_key(tenant)
        with entry.lock:
            if not entry.closed:
                entry.session.close(restore_model=restore)
                entry.closed = True
        card = entry.session.scorecard()
        with self._tenants_lock:
            self._tenants.pop(tenant, None)
            self._final[tenant] = card
            while len(self._final) > _FINAL_SCORECARDS_KEPT:
                self._final.pop(next(iter(self._final)))
        self._append({"event": "tenant_close", "tenant": tenant,
                      "scorecard": scorecard_to_dict(card)})
        return card

    # -- long-lived operation ------------------------------------------

    def evict_idle(self, max_idle_s: float) -> List[str]:
        """Suspend tenants idle for more than ``max_idle_s`` seconds.

        Checkpoint-on-evict: the tenant's full checkpoint moves into the
        suspended table (and the journal, when one is configured), its
        session and model are dropped, and a later ``hello`` re-admits
        it bit-identically — exactly the daemon-restart resume path, so
        an idle tenant costs a journal entry instead of a live model.
        Tenants mid-batch are never evicted (their lock is busy).
        """
        if max_idle_s <= 0:
            return []
        with self._tenants_lock:
            candidates = list(self._tenants.items())
        evicted: List[str] = []
        now = time.monotonic()
        for name, entry in candidates:
            if not entry.lock.acquire(blocking=False):
                continue                        # mid-batch: active
            try:
                if entry.closed or entry.queued_frames \
                        or now - entry.last_active < max_idle_s:
                    continue                    # queued work counts as busy
                saved = {"event": "tenant_checkpoint", "tenant": name,
                         "fingerprint": entry.spec.fingerprint(),
                         "batches_done": entry.session.batches_total,
                         "chunk": entry.last_chunk,
                         "checkpoint": entry.session.checkpoint()}
                with self._tenants_lock:
                    if self._tenants.get(name) is not entry:
                        continue                # raced a concurrent close
                    del self._tenants[name]
                    self._saved[name] = saved
                entry.closed = True
                self.evictions += 1
                self._append(saved)
                self._append({"event": "tenant_evict", "tenant": name,
                              "batches_done": entry.session.batches_total})
                evicted.append(name)
            finally:
                entry.lock.release()
        return evicted

    def drain(self, timeout: Optional[float] = None) -> dict:
        """Checkpoint every live tenant, then compact the journal.

        The graceful-shutdown half that belongs to the manager: each
        tenant's lock is taken (waiting out any in-flight batch, up to
        ``timeout`` seconds overall) and a final ``tenant_checkpoint``
        journaled, then the journal is compacted down to one checkpoint
        per tenant.  Tenants stay *open* in the journal — a daemon
        restarted with ``resume=True`` re-admits all of them — which is
        what distinguishes drain from :meth:`close`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        # first let the scheduler run the backlog dry: every batch an
        # ack admitted is applied (and checkpointed) before the final
        # per-tenant drain checkpoints are cut
        remaining = None if deadline is None \
            else max(0.0, deadline - time.monotonic())
        self._scheduler.wait_idle(remaining)
        with self._tenants_lock:
            entries = list(self._tenants.items())
        checkpointed: List[str] = []
        skipped: List[str] = []
        for name, entry in entries:
            remaining = -1 if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not entry.lock.acquire(timeout=remaining):
                skipped.append(name)            # stuck mid-batch past the
                continue                        # deadline: prior per-batch
            try:                                # checkpoints still stand
                if not entry.closed and entry.session.active:
                    self._checkpoint(entry)
                    checkpointed.append(name)
            finally:
                entry.lock.release()
        removed = self.compact()
        return {"checkpointed": checkpointed, "skipped": skipped,
                "compacted_entries": removed}

    def compact(self) -> int:
        """Compact the journal now (no-op without one); entries removed."""
        if self._journal is None:
            return 0
        with self._journal_lock:
            removed = self._journal.compact()
            self.compactions += 1
        return removed

    def maybe_compact(self) -> int:
        """Compact when the journal has outgrown ``compact_above``."""
        if self._journal is None or self.compact_above <= 0:
            return 0
        with self._journal_lock:
            if self._journal.size_bytes() < self.compact_above:
                return 0
            removed = self._journal.compact()
            self.compactions += 1
        return removed

    def status(self) -> dict:
        """JSON-safe health document: tenants, journal, counters."""
        with self._tenants_lock:
            entries = list(self._tenants.items())
            suspended = sorted(self._saved)
        tenants = {}
        for name, entry in entries:
            card = entry.session.scorecard()
            tenants[name] = {
                "batches_done": entry.session.batches_total,
                "pending_frames": len(entry.pending_images)
                + entry.queued_frames,
                "chunk": entry.last_chunk,
                "closed": entry.closed,
                "frames_processed": card.frames_processed,
                "frames_dropped": card.frames_dropped,
                "faults_injected": card.faults_injected,
                "rollbacks": card.rollbacks,
                "degraded_batches": card.degraded_batches,
                "fallback_frames": card.fallback_frames,
            }
        journal = None
        if self._journal is not None:
            with self._journal_lock:
                journal = {"path": str(self._journal.path),
                           "size_bytes": self._journal.size_bytes(),
                           "compact_above": self.compact_above,
                           "compactions": self.compactions}
        return {"tenants": tenants, "suspended": suspended,
                "max_tenants": self.max_tenants,
                "evictions": self.evictions, "journal": journal,
                "scheduler": self._scheduler.stats()}

    def close(self, *, close_tenants: bool = True) -> None:
        """Shut the manager down: close sessions, journal, backend.

        ``close_tenants=False`` (the drained-shutdown path) leaves
        tenants un-closed in the journal so a restart with
        ``resume=True`` re-admits them from their drain checkpoints.
        """
        if close_tenants:
            with self._tenants_lock:
                names = sorted(self._tenants)
            for name in names:
                self.close_tenant(name)
        self._scheduler.close()
        if self._journal is not None:
            with self._journal_lock:
                self._journal.close()
        self._backend.close()
