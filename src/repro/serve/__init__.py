"""Serve layer: reusable adaptation sessions and the multi-tenant daemon.

The paper's deployment story is a model adapting *in production* on an
edge box; this package is that runtime.  It has two halves:

- :class:`~repro.serve.session.AdaptationSession` — the adaptation
  lifecycle (prepare, guarded per-batch forward, scoring, teardown,
  checkpoint/resume) as one reusable object.  The batch-study runner
  and the robustness harness drive their streams through it, so the
  daemon serves *exactly* the code path the experiments measure.
- The daemon stack — :class:`~repro.serve.manager.SessionManager`,
  :class:`~repro.serve.daemon.ServeDaemon`,
  :class:`~repro.serve.client.ServeClient` and the wire protocol
  (:mod:`repro.serve.protocol`) — multi-tenant streaming over TCP with
  journal-backed crash recovery: kill the daemon, restart with
  ``--resume``, and every tenant continues bit-identically.

Long-lived operation is hardened and *tested under adversity*:
:mod:`repro.serve.chaos` provides a seeded TCP chaos proxy (mid-frame
disconnects, truncated frames, dribbling senders, garbage) reusing the
robustness layer's fault grammar; the daemon answers with connection
deadlines, recoverable protocol-error replies, a ``status`` health
message, graceful drain, idle-tenant eviction, and online journal
compaction, while the client retries idempotently with seeded backoff.

PR 9 made the stack *fast and measurably so*: the daemon is a
``selectors`` event loop (thousands of connections, no
thread-per-connection), batches from many tenants coalesce through the
cross-tenant :class:`~repro.serve.scheduler.BatchScheduler`, and
:mod:`repro.serve.loadgen` generates seeded open-loop multi-tenant
load and reduces it to p50/p95/p99 latency + throughput — the
``serving`` section of ``BENCH_engine.json`` that ``bench --compare``
gates in CI.

CLI: ``repro serve`` / ``repro serve-client`` / ``repro serve-bench``.
"""

from repro.serve.chaos import (
    NETWORK_FAULT_NAMES,
    ChaosProxy,
    parse_network_fault_specs,
)
from repro.serve.client import (
    ServeClient,
    ServeDisconnectedError,
    ServeError,
    ServeTimeoutError,
)
from repro.serve.daemon import ServeDaemon, serve
from repro.serve.loadgen import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    TenantLoad,
    parse_arrival_spec,
    run_loadgen,
    run_serving_bench,
)
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec
from repro.serve.scheduler import (
    BatchScheduler,
    BatchTicket,
    SchedulerClosedError,
)
from repro.serve.session import AdaptationSession

__all__ = [
    "ARRIVAL_KINDS",
    "AdaptationSession",
    "AdmissionError",
    "ArrivalSpec",
    "BatchScheduler",
    "BatchTicket",
    "ChaosProxy",
    "NETWORK_FAULT_NAMES",
    "SchedulerClosedError",
    "ServeClient",
    "ServeDaemon",
    "ServeDisconnectedError",
    "ServeError",
    "ServeTimeoutError",
    "SessionManager",
    "TenantLoad",
    "TenantSpec",
    "parse_arrival_spec",
    "parse_network_fault_specs",
    "run_loadgen",
    "run_serving_bench",
    "serve",
]
