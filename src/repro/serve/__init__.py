"""Serve layer: reusable adaptation sessions and the multi-tenant daemon.

The paper's deployment story is a model adapting *in production* on an
edge box; this package is that runtime.  It has two halves:

- :class:`~repro.serve.session.AdaptationSession` — the adaptation
  lifecycle (prepare, guarded per-batch forward, scoring, teardown,
  checkpoint/resume) as one reusable object.  The batch-study runner
  and the robustness harness drive their streams through it, so the
  daemon serves *exactly* the code path the experiments measure.
- The daemon stack — :class:`~repro.serve.manager.SessionManager`,
  :class:`~repro.serve.daemon.ServeDaemon`,
  :class:`~repro.serve.client.ServeClient` and the wire protocol
  (:mod:`repro.serve.protocol`) — multi-tenant streaming over TCP with
  journal-backed crash recovery: kill the daemon, restart with
  ``--resume``, and every tenant continues bit-identically.

Long-lived operation is hardened and *tested under adversity*:
:mod:`repro.serve.chaos` provides a seeded TCP chaos proxy (mid-frame
disconnects, truncated frames, dribbling senders, garbage) reusing the
robustness layer's fault grammar; the daemon answers with connection
deadlines, recoverable protocol-error replies, a ``status`` health
message, graceful drain, idle-tenant eviction, and online journal
compaction, while the client retries idempotently with seeded backoff.

CLI: ``repro serve`` / ``repro serve-client``.
"""

from repro.serve.chaos import (
    NETWORK_FAULT_NAMES,
    ChaosProxy,
    parse_network_fault_specs,
)
from repro.serve.client import (
    ServeClient,
    ServeDisconnectedError,
    ServeError,
    ServeTimeoutError,
)
from repro.serve.daemon import ServeDaemon, serve
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec
from repro.serve.session import AdaptationSession

__all__ = [
    "AdaptationSession",
    "AdmissionError",
    "ChaosProxy",
    "NETWORK_FAULT_NAMES",
    "ServeClient",
    "ServeDaemon",
    "ServeDisconnectedError",
    "ServeError",
    "ServeTimeoutError",
    "SessionManager",
    "TenantSpec",
    "parse_network_fault_specs",
    "serve",
]
