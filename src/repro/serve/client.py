"""Client for the serve daemon: typed calls over the wire protocol.

:class:`ServeClient` wraps one TCP connection to a
:class:`~repro.serve.daemon.ServeDaemon` with methods mirroring the
protocol's message types — ``hello`` / ``send_frames`` / ``scorecard``
/ ``close_tenant`` / ``shutdown`` — decoding replies into plain values
(:class:`~repro.core.streaming.StreamScorecard` for scorecards) and
raising :class:`ServeError` when the daemon answers ``error``.  The
``connect`` constructor retries the TCP connect with a deadline, which
is how the CI smoke job and kill-resume tests wait for a freshly
spawned daemon to come up without racing it.
"""

from __future__ import annotations

import socket
import time
from dataclasses import asdict

import numpy as np

from repro.core.streaming import StreamScorecard
from repro.serve import protocol
from repro.serve.checkpoint import encode_array
from repro.serve.manager import TenantSpec


class ServeError(RuntimeError):
    """The daemon refused a request (its ``error`` reply's reason)."""


class ServeClient:
    """One connection to a serve daemon, one tenant at a time."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = 10.0) -> "ServeClient":
        """Connect, retrying until ``timeout`` (daemon may still be
        binding — the spawn-then-connect race every smoke test has)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return cls(socket.create_connection((host, port), timeout=30))
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- protocol calls ------------------------------------------------

    def _call(self, message: dict, expect: str) -> dict:
        protocol.send_message(self._sock, message)
        reply = protocol.recv_message(self._sock)
        if reply is None:
            raise ServeError("daemon closed the connection")
        if reply.get("type") == "error":
            raise ServeError(reply.get("reason", "unspecified error"))
        if reply.get("type") != expect:
            raise ServeError(
                f"expected {expect!r} reply, got {reply.get('type')!r}")
        return reply

    def hello(self, spec: TenantSpec) -> dict:
        """Open (or resume) a tenant; returns the ``welcome`` payload."""
        return self._call({"type": "hello",
                           "protocol": protocol.PROTOCOL_VERSION,
                           "spec": asdict(spec)}, expect="welcome")

    def send_frames(self, images: np.ndarray, labels: np.ndarray,
                    *, faults: int = 0) -> dict:
        """Stream a chunk of frames; returns the ``ack`` payload.

        ``faults`` reports how many faults the sender injected into
        this chunk, so the daemon's scorecard can account for them.
        """
        return self._call({"type": "frames",
                           "images": encode_array(np.asarray(images)),
                           "labels": encode_array(np.asarray(labels)),
                           "faults": int(faults)},
                          expect="ack")

    def scorecard(self) -> StreamScorecard:
        """The tenant's current scorecard."""
        reply = self._call({"type": "scorecard"}, expect="scorecard")
        return protocol.scorecard_from_dict(reply["scorecard"])

    def close_tenant(self, *, restore: bool = False) -> StreamScorecard:
        """Finish the tenant's stream; returns its final scorecard."""
        reply = self._call({"type": "close", "restore": restore},
                           expect="closed")
        return protocol.scorecard_from_dict(reply["scorecard"])

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (acknowledged with ``bye``)."""
        self._call({"type": "shutdown"}, expect="bye")

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
