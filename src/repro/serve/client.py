"""Client for the serve daemon: typed calls over the wire protocol.

:class:`ServeClient` wraps one TCP connection to a
:class:`~repro.serve.daemon.ServeDaemon` with methods mirroring the
protocol's message types — ``hello`` / ``send_frames`` / ``scorecard``
/ ``status`` / ``close_tenant`` / ``shutdown`` — decoding replies into
plain values (:class:`~repro.core.streaming.StreamScorecard` for
scorecards) and raising :class:`ServeError` when the daemon answers
``error``.  The ``connect`` constructor retries the TCP connect with a
deadline, which is how the CI smoke job and kill-resume tests wait for
a freshly spawned daemon to come up without racing it.

Fault tolerance (what the chaos proxy of :mod:`repro.serve.chaos`
exercises):

- every call runs under ``call_timeout``; a stalled daemon raises the
  typed :class:`ServeTimeoutError` instead of a bare ``socket.timeout``;
- with ``retries > 0``, *transient* failures — timeouts, severed
  connections, broken reply framing — trigger a bounded, seeded
  exponential backoff (the resilience layer's
  :class:`~repro.resilience.executor.RetryPolicy`), a reconnect, a
  re-``hello`` of the remembered tenant spec, and a re-send of the
  exact same message.  Frame chunks carry a monotonically increasing
  ``chunk`` index keyed to the tenant, and the daemon deduplicates
  re-sends, so a ``frames`` call severed *after* the server applied it
  is acknowledged as a duplicate rather than adapted twice.  Error
  *replies* (the daemon deliberately refusing) are never retried.
"""

from __future__ import annotations

import socket
import time
from dataclasses import asdict
from typing import Optional

import numpy as np

from repro.core.streaming import StreamScorecard
from repro.resilience.executor import RetryPolicy
from repro.serve import protocol
from repro.serve.checkpoint import encode_array
from repro.serve.manager import TenantSpec


class ServeError(RuntimeError):
    """The daemon refused a request (its ``error`` reply's reason)."""


class ServeTimeoutError(ServeError):
    """A call exceeded its deadline (``call_timeout``)."""


class ServeDisconnectedError(ServeError):
    """The connection died mid-call (EOF, reset, broken reply framing).

    Transient by definition: with ``retries > 0`` the client reconnects
    and re-sends; without retries it surfaces so the caller can.
    """


class ServeClient:
    """One connection to a serve daemon, one tenant at a time.

    ``retries``/``backoff_base``/``seed`` configure the bounded seeded
    retry described in the module docstring; ``retries=0`` (default)
    preserves fail-fast behavior.
    """

    def __init__(self, sock: socket.socket, *,
                 host: Optional[str] = None, port: Optional[int] = None,
                 call_timeout: float = 30.0, retries: int = 0,
                 backoff_base: float = 0.05, seed: int = 0) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._sock = sock
        self._host = host
        self._port = port
        self.call_timeout = call_timeout
        self.retries = retries
        self._policy = RetryPolicy(max_retries=retries,
                                   backoff_base=backoff_base, seed=seed)
        self._spec: Optional[TenantSpec] = None
        self._next_chunk = 0
        #: wall time of the last completed call, retries included —
        #: what the load generator records as per-request latency
        self.last_rtt_s: Optional[float] = None

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0,
                **kwargs) -> "ServeClient":
        """Connect, retrying until ``timeout`` (daemon may still be
        binding — the spawn-then-connect race every smoke test has).

        Keyword arguments are forwarded to the constructor
        (``call_timeout``, ``retries``, ``backoff_base``, ``seed``).
        """
        call_timeout = kwargs.get("call_timeout", 30.0)
        deadline = time.monotonic() + timeout
        while True:
            try:
                sock = socket.create_connection((host, port),
                                                timeout=call_timeout)
                return cls(sock, host=host, port=port, **kwargs)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- transport -----------------------------------------------------

    def _call_once(self, message: dict, expect: str,
                   timeout: float) -> dict:
        self._sock.settimeout(timeout if timeout > 0 else None)
        try:
            protocol.send_message(self._sock, message)
            reply = protocol.recv_message(self._sock)
        except socket.timeout:
            raise ServeTimeoutError(
                f"no {expect!r} reply within {timeout}s") from None
        except protocol.ProtocolError as error:
            raise ServeDisconnectedError(
                f"broken reply stream: {error}") from None
        except OSError as error:
            raise ServeDisconnectedError(
                f"connection failed mid-call: {error}") from None
        if reply is None:
            raise ServeDisconnectedError("daemon closed the connection")
        if reply.get("type") == "error":
            raise ServeError(reply.get("reason", "unspecified error"))
        if reply.get("type") != expect:
            raise ServeError(
                f"expected {expect!r} reply, got {reply.get('type')!r}")
        return reply

    def _reconnect(self, message: dict, timeout: float) -> None:
        if self._host is None or self._port is None:
            raise ServeDisconnectedError(
                "connection lost and no (host, port) to reconnect to")
        try:
            self._sock.close()
        except OSError:
            pass        # already torn down; reconnect proceeds anyway
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=timeout)
        if self._spec is not None \
                and message.get("type") not in ("hello", "close"):
            # connections are stateless beyond the handshake: re-attach
            # to the tenant before re-sending the interrupted call.
            # `close` is exempt — it names its tenant explicitly, and a
            # re-hello would re-open a fresh session for a tenant the
            # lost first attempt may already have closed
            self._call_once({"type": "hello",
                             "protocol": protocol.PROTOCOL_VERSION,
                             "spec": asdict(self._spec)},
                            expect="welcome", timeout=timeout)

    def _call(self, message: dict, expect: str, *,
              timeout: Optional[float] = None) -> dict:
        timeout = self.call_timeout if timeout is None else timeout
        key = (f"{self._spec.tenant if self._spec else ''}"
               f":{message.get('type')}:{message.get('chunk', '')}")
        last_error: Exception = ServeDisconnectedError("no attempt ran")
        started = time.monotonic()
        for attempt in range(1, self._policy.attempts + 1):
            if attempt > 1:
                time.sleep(self._policy.backoff_delay(key, attempt - 1))
                try:
                    self._reconnect(message, timeout)
                except (ServeTimeoutError, ServeDisconnectedError,
                        OSError) as error:
                    last_error = error
                    continue
            try:
                reply = self._call_once(message, expect, timeout)
                self.last_rtt_s = time.monotonic() - started
                return reply
            except (ServeTimeoutError, ServeDisconnectedError) as error:
                last_error = error
        raise last_error

    # -- protocol calls ------------------------------------------------

    def hello(self, spec: TenantSpec, *,
              timeout: Optional[float] = None) -> dict:
        """Open (or resume) a tenant; returns the ``welcome`` payload.

        The spec is remembered for transparent re-``hello`` after a
        reconnect, and the chunk numbering of :meth:`send_frames`
        continues from the daemon's last applied index.
        """
        self._spec = spec
        reply = self._call({"type": "hello",
                            "protocol": protocol.PROTOCOL_VERSION,
                            "spec": asdict(spec)}, expect="welcome",
                           timeout=timeout)
        self._next_chunk = int(reply.get("chunk", -1)) + 1
        return reply

    def send_frames(self, images: np.ndarray, labels: np.ndarray,
                    *, faults: int = 0, chunk: Optional[int] = None,
                    timeout: Optional[float] = None) -> dict:
        """Stream a chunk of frames; returns the ``ack`` payload.

        ``faults`` reports how many faults the sender injected into
        this chunk, so the daemon's scorecard can account for them.
        ``chunk`` defaults to the client's own monotonically increasing
        send index (seeded from the ``welcome`` reply), which is what
        makes a retried send idempotent server-side; pass it explicitly
        only to replay or test.
        """
        index = self._next_chunk if chunk is None else int(chunk)
        reply = self._call({"type": "frames",
                            "images": encode_array(np.asarray(images)),
                            "labels": encode_array(np.asarray(labels)),
                            "faults": int(faults),
                            "chunk": index},
                           expect="ack", timeout=timeout)
        if chunk is None:
            self._next_chunk = index + 1
        return reply

    def scorecard(self, *,
                  timeout: Optional[float] = None) -> StreamScorecard:
        """The tenant's current scorecard."""
        reply = self._call({"type": "scorecard"}, expect="scorecard",
                           timeout=timeout)
        return protocol.scorecard_from_dict(reply["scorecard"])

    def status(self, *, timeout: Optional[float] = None) -> dict:
        """The daemon's health document (allowed before ``hello``)."""
        return self._call({"type": "status"}, expect="status",
                          timeout=timeout)

    def close_tenant(self, *, restore: bool = False,
                     timeout: Optional[float] = None) -> StreamScorecard:
        """Finish the tenant's stream; returns its final scorecard.

        Safe to retry: the daemon records final scorecards, so a
        re-sent ``close`` whose first reply was lost returns the same
        scorecard instead of "unknown tenant".
        """
        message = {"type": "close", "restore": restore}
        if self._spec is not None:
            message["tenant"] = self._spec.tenant
        reply = self._call(message, expect="closed", timeout=timeout)
        return protocol.scorecard_from_dict(reply["scorecard"])

    def shutdown(self, *, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Ask the daemon to stop serving (acknowledged with ``bye``).

        ``drain=True`` (default) has the daemon checkpoint every tenant
        and compact its journal before the process exits.
        """
        self._call({"type": "shutdown", "drain": drain}, expect="bye",
                   timeout=timeout)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
