"""Length-prefixed JSON wire protocol of the serve daemon.

Every message is one JSON object (UTF-8) preceded by a 4-byte
big-endian byte length.  Length-prefix framing keeps the protocol
trivially parseable from any language while letting frame tensors ride
inside messages via the same base64 array encoding the checkpoints use
(:mod:`repro.serve.checkpoint`) — bit-exact, no separate binary channel.

Client -> server message types (all carry ``"type"``):

- ``hello``     — open/attach a tenant: ``tenant``, ``spec`` (the
  :class:`~repro.serve.manager.TenantSpec` fields), ``protocol``;
- ``frames``    — a chunk of stream frames: ``images``, ``labels``
  (encoded arrays) plus optional ``faults`` (how many faults the sender
  injected into the chunk — faults happen client-side, at the edge);
  the server coalesces the frames into adaptation batches;
- ``scorecard`` — request the tenant's current scorecard;
- ``close``     — finish the tenant's stream: ``restore`` (bool) picks
  whether the tenant model reverts to its source state;
- ``shutdown``  — stop the whole daemon (administrative).

Server -> client:

- ``welcome``   — hello accepted: ``resumed``, ``batches_done``;
- ``ack``       — frames ingested: ``accepted``, ``dropped`` (admission
  control), ``batches_done``, and the live guard counters;
- ``scorecard`` — the serialized scorecard;
- ``closed``    — stream finished, final ``scorecard`` attached;
- ``bye``       — shutdown acknowledged;
- ``error``     — request refused: ``reason`` (the connection stays up).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import asdict
from typing import Optional

from repro.core.streaming import StreamScorecard

#: protocol version a ``hello`` must declare
PROTOCOL_VERSION = 1

#: refuse messages larger than this (corrupt length prefix / abuse)
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ValueError):
    """A wire message that violates the framing or schema."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Frame and send one JSON message (length prefix + payload)."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Receive one framed message; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"declared message length {length} exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable message payload: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be a JSON object with a 'type'")
    return message


def scorecard_to_dict(card: StreamScorecard) -> dict:
    """A scorecard as a JSON-safe dict (all fields are JSON scalars)."""
    return asdict(card)


def scorecard_from_dict(payload: dict) -> StreamScorecard:
    """Inverse of :func:`scorecard_to_dict` (strict about fields)."""
    return StreamScorecard(**payload)
