"""Length-prefixed JSON wire protocol of the serve daemon.

Every message is one JSON object (UTF-8) preceded by a 4-byte
big-endian byte length.  Length-prefix framing keeps the protocol
trivially parseable from any language while letting frame tensors ride
inside messages via the same base64 array encoding the checkpoints use
(:mod:`repro.serve.checkpoint`) — bit-exact, no separate binary channel.

Client -> server message types (all carry ``"type"``):

- ``hello``     — open/attach a tenant: ``tenant``, ``spec`` (the
  :class:`~repro.serve.manager.TenantSpec` fields), ``protocol``;
- ``frames``    — a chunk of stream frames: ``images``, ``labels``
  (encoded arrays) plus optional ``faults`` (how many faults the sender
  injected into the chunk — faults happen client-side, at the edge) and
  optional ``chunk`` (a monotonically increasing per-tenant send index:
  a re-send of an already-applied chunk is acknowledged without being
  re-applied, which is what makes client retry after a severed
  connection idempotent); the server coalesces the frames into
  adaptation batches;
- ``scorecard`` — request the tenant's current scorecard;
- ``status``    — request daemon health (administrative, allowed before
  ``hello``): per-tenant counters, journal stats, drain state;
- ``close``     — finish the tenant's stream: ``restore`` (bool) picks
  whether the tenant model reverts to its source state;
- ``shutdown``  — stop the whole daemon (administrative); optional
  ``drain`` (default true) checkpoints every tenant and compacts the
  journal before the process exits.

Server -> client:

- ``welcome``   — hello accepted: ``resumed``, ``batches_done``,
  ``chunk`` (the last applied send index, -1 when none — the client
  numbers its next ``frames`` from there);
- ``ack``       — frames ingested: ``accepted``, ``dropped`` (admission
  control), ``duplicate`` (an already-applied chunk was re-sent and
  skipped), ``batches_done``, and the live guard counters;
- ``scorecard`` — the serialized scorecard;
- ``status``    — the daemon health document;
- ``closed``    — stream finished, final ``scorecard`` attached;
- ``bye``       — shutdown acknowledged;
- ``error``     — request refused: ``reason`` (the connection stays up
  whenever the frame itself was well-formed; see the exception
  hierarchy below for when it cannot).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import asdict
from typing import Optional

from repro.core.streaming import StreamScorecard

#: protocol version a ``hello`` must declare
PROTOCOL_VERSION = 1

#: refuse messages larger than this (corrupt length prefix / abuse)
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ValueError):
    """A wire message that violates the framing or schema."""


class FrameTooLargeError(ProtocolError):
    """A declared frame length above the cap.

    Raised *before* any payload byte is read, so the payload is still
    on the wire: a receiver that wants to keep the connection up must
    :func:`drain_frame` the declared length first (the daemon does).
    """

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(
            f"declared message length {length} exceeds the "
            f"{limit}-byte limit")
        self.length = length
        self.limit = limit


class PayloadError(ProtocolError):
    """A complete, correctly-framed payload that is not a usable message.

    The frame was consumed exactly, so the connection's framing is
    intact and the receiver may keep serving it after an ``error``
    reply — unlike a bare :class:`ProtocolError`, which means the byte
    stream itself is broken (mid-message EOF, desynced framing).
    """


def send_message(sock: socket.socket, message: dict) -> None:
    """Frame and send one JSON message (length prefix + payload)."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket,
                 max_bytes: int = MAX_MESSAGE_BYTES) -> Optional[dict]:
    """Receive one framed message; ``None`` when the peer closed cleanly.

    ``max_bytes`` is the frame-size cap (tests shrink it to exercise
    the oversized-frame path without shipping 64 MB).  An oversized
    declared length raises :class:`FrameTooLargeError` before reading
    the payload; a framed-but-undecodable payload raises
    :class:`PayloadError` after consuming the frame exactly.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(length, max_bytes)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise PayloadError(f"undecodable message payload: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise PayloadError("message must be a JSON object with a 'type'")
    return message


def drain_frame(sock: socket.socket, length: int,
                chunk_bytes: int = 1 << 16) -> int:
    """Read and discard exactly ``length`` payload bytes.

    Used after :class:`FrameTooLargeError` to consume the refused
    frame so the connection's framing stays intact (the caller's read
    deadline bounds how long a slow or lying sender can stall this).
    Raises :class:`ProtocolError` if the peer hangs up mid-frame.
    """
    remaining = length
    while remaining:
        data = sock.recv(min(remaining, chunk_bytes))
        if not data:
            raise ProtocolError("connection closed mid-message")
        remaining -= len(data)
    return length


def scorecard_to_dict(card: StreamScorecard) -> dict:
    """A scorecard as a JSON-safe dict (all fields are JSON scalars)."""
    return asdict(card)


def scorecard_from_dict(payload: dict) -> StreamScorecard:
    """Inverse of :func:`scorecard_to_dict` (strict about fields)."""
    return StreamScorecard(**payload)
