"""The reusable adaptation-stream lifecycle: one session, one tenant.

Before this layer existed the adaptation lifecycle — build the method,
optionally wrap it in :class:`~repro.robustness.guard.GuardedAdaptation`,
``prepare`` it on a model, time each ``forward``, score predictions,
harvest guard counters, restore the source state — lived twice, inline:
once in the native study runner's cell loop and once in the robustness
harness.  :class:`AdaptationSession` extracts it as an object so both
batch drivers *and* the multi-tenant serve daemon run the exact same
code path, and adds the one thing a long-lived daemon needs that a
batch run does not: journal-ready :meth:`checkpoint` /
:meth:`load_checkpoint` that resume a killed stream bit-identically.

Lifecycle::

    session = AdaptationSession(model, "bn_opt", guard=True, tenant="cam0")
    with session:                      # prepare()s the runner
        session.process_batch(images, labels)   # per adaptation batch
    card = session.scorecard()         # StreamScorecard, tenant-stamped

Teardown policy (``restore``):

- ``"on_error"`` (default, the streaming-harness contract): the model
  keeps its adapted state on clean exit — deployment semantics — but an
  exception mid-stream always restores the pristine source state before
  propagating, so a crashed stream cannot leak poisoned BN statistics
  into whatever runs next on the same model instance.
- ``"always"`` (the study-runner contract): clean exit restores too,
  giving episodic evaluation where every stream starts pristine.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

import numpy as np

from repro.adapt import build_method
from repro.adapt.base import AdaptationMethod, bn_layers
from repro.core.streaming import StreamScorecard
from repro.robustness.guard import GuardConfig, GuardedAdaptation
from repro.serve.checkpoint import (
    decode_model_state,
    decode_state,
    encode_model_state,
    encode_state,
)

#: checkpoint document version (bumped on incompatible layout changes)
CHECKPOINT_VERSION = 1

#: valid teardown policies
_RESTORE_POLICIES = ("on_error", "always")


class AdaptationSession:
    """One adaptation stream bound to one model: the serve layer's unit.

    Parameters
    ----------
    model:
        The model to adapt (mutated in place, exactly as in deployment).
    method:
        An :class:`AdaptationMethod` instance, a method name, or an
        already-built :class:`GuardedAdaptation` (used as-is).
    guard:
        ``True`` (default thresholds), a :class:`GuardConfig`, or
        ``False`` to run unprotected.  Ignored when ``method`` is
        already a :class:`GuardedAdaptation`.
    fps:
        Optional frame arrival rate; when given, a batch whose measured
        service time exceeds the batch period counts as late.
    tenant:
        Name stamped into scorecards and checkpoints ("" for
        single-stream use).
    restore:
        Teardown policy, ``"on_error"`` or ``"always"`` (see module
        docstring).
    """

    def __init__(self, model, method: Union[str, AdaptationMethod],
                 *, guard: Union[bool, GuardConfig] = False,
                 fps: Optional[float] = None, tenant: str = "",
                 restore: str = "on_error") -> None:
        if restore not in _RESTORE_POLICIES:
            raise ValueError(f"restore must be one of {_RESTORE_POLICIES}")
        if isinstance(method, str):
            method = build_method(method)
        if isinstance(method, GuardedAdaptation):
            runner = method
        elif guard:
            config = guard if isinstance(guard, GuardConfig) else None
            runner = GuardedAdaptation(method, config)
        else:
            runner = method
        self.model = model
        self.runner = runner
        self.fps = fps
        self.tenant = tenant
        #: compact scenario spec stamped into scorecards; set by
        #: scenario drivers ("" = plain stream)
        self.scenario = ""
        self.restore = restore
        self._started = False
        self._closed = False
        # pristine source state captured at start() for teardown/resume
        self._source_state = None
        self._source_tracked: List[int] = []
        # stream accounting
        self.frames_processed = 0
        self.frames_correct = 0
        self.frames_dropped = 0
        self.batches_total = 0
        self.batches_late = 0
        self.wall_time_s = 0.0
        #: filled in by drivers that own a FaultInjector
        self.faults_injected = 0
        # guard counters, harvested from the runner on close (the
        # runner re-zeroes them when it re-prepares)
        self.rollbacks = 0
        self.degraded_batches = 0
        self.fallback_frames = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def guarded(self) -> bool:
        """Whether a :class:`GuardedAdaptation` wraps this stream."""
        return isinstance(self.runner, GuardedAdaptation)

    @property
    def active(self) -> bool:
        """True between :meth:`start` and :meth:`close`."""
        return self._started and not self._closed

    def start(self) -> "AdaptationSession":
        """Snapshot the source state and ``prepare`` the runner."""
        if self._started:
            raise RuntimeError("start() on an already-started session")
        self._source_state = self.model.state_dict()
        self._source_tracked = [layer.batches_tracked
                                for layer in bn_layers(self.model)]
        self.runner.prepare(self.model)
        self._started = True
        return self

    def __enter__(self) -> "AdaptationSession":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # an exception mid-stream always restores the source state so a
        # crashed stream cannot leak adapted/poisoned BN statistics
        self.close(restore_model=(self.restore == "always"
                                  or exc_type is not None))

    def close(self, restore_model: Optional[bool] = None) -> None:
        """Finish the stream: harvest counters, optionally restore.

        ``restore_model=None`` applies the session's ``restore`` policy
        for a clean finish.  Restoring goes through ``runner.reset()``
        (the method's own snapshot), which also re-arms train/eval and
        grad modes — exactly the study runner's per-stream teardown.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._sync_counters()
        if restore_model is None:
            restore_model = self.restore == "always"
        if restore_model:
            self.runner.reset()
        self._closed = True

    def _sync_counters(self) -> None:
        """Copy the runner's guard counters into the session (pre-reset)."""
        self.rollbacks = int(getattr(self.runner, "rollbacks", 0))
        self.degraded_batches = int(getattr(self.runner,
                                            "degraded_batches", 0))
        self.fallback_frames = int(getattr(self.runner,
                                           "fallback_frames", 0))

    # -- streaming ---------------------------------------------------------

    def process_batch(self, images: np.ndarray, labels: np.ndarray,
                      *, adapt: bool = True) -> np.ndarray:
        """Adapt on one batch, score it, and return the predictions.

        Reproduces the drivers' shared inner loop exactly: wall time
        around the (adapting) forward, NaN-safe argmax scoring, and the
        optional fps deadline check.

        ``adapt=False`` serves the batch with the model *as adapted so
        far* but frozen — eval-mode inference under ``no_grad``, no BN
        statistic updates, no optimizer step, ``batches_adapted``
        untouched — the ``budgeted`` scenario's between-grants service
        mode.  Train/eval flags are restored afterwards, so the next
        adapting batch sees the runner's own configuration.
        """
        if not self.active:
            raise RuntimeError("process_batch() outside start()/close()")
        start = time.perf_counter()
        if adapt:
            logits = self.runner.forward(images)
        else:
            logits = self._frozen_forward(images)
        elapsed = time.perf_counter() - start
        self.wall_time_s += elapsed
        self.batches_total += 1
        predictions = np.nan_to_num(logits).argmax(axis=-1)
        self.frames_correct += int((predictions == labels).sum())
        self.frames_processed += len(labels)
        if self.fps is not None and elapsed > len(labels) / self.fps:
            self.batches_late += 1
        return predictions

    def _frozen_forward(self, images: np.ndarray) -> np.ndarray:
        """Inference-only forward that leaves every mode flag as found.

        Deliberately bypasses ``runner.forward`` (which adapts) *and*
        ``runner.bind`` (which would rebuild optimizer state): only the
        per-module ``training`` flags are flipped to eval for the call
        and flipped back afterwards.
        """
        from repro.tensor.tensor import Tensor, no_grad

        flags = [module.training for module in self.model.modules()]
        self.model.eval()
        try:
            with no_grad():
                logits = self.model(Tensor(np.asarray(images)))
        finally:
            for module, flag in zip(self.model.modules(), flags):
                object.__setattr__(module, "training", flag)
        return logits.data

    def drop_frames(self, count: int) -> None:
        """Record ``count`` frames refused by admission control."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self.frames_dropped += count

    def scorecard(self) -> StreamScorecard:
        """The stream's outcome so far as a tenant-stamped scorecard."""
        if self.active:
            self._sync_counters()
        frames = self.frames_processed
        error = 100.0 * (1.0 - self.frames_correct / frames) if frames else 0.0
        return StreamScorecard(
            frames_total=frames + self.frames_dropped,
            frames_processed=frames,
            frames_dropped=self.frames_dropped,
            batches_late=self.batches_late,
            batches_total=self.batches_total,
            mean_frame_latency_s=self.wall_time_s / frames if frames else 0.0,
            effective_error_pct=error,
            energy_j=0.0,
            wall_time_s=self.wall_time_s,
            faults_injected=self.faults_injected,
            rollbacks=self.rollbacks,
            degraded_batches=self.degraded_batches,
            fallback_frames=self.fallback_frames,
            tenant=self.tenant,
            scenario=self.scenario,
        )

    # -- checkpoint / resume -----------------------------------------------

    def checkpoint(self) -> dict:
        """Everything needed to resume this stream bit-identically.

        JSON-safe (rides inside journal entries): the pristine source
        state, the current adapted model state, the runner's runtime
        state (ladder position, optimizer moments, counters), and the
        session's own score counters.  Wall-clock fields are included
        for reporting but are the one thing a resume cannot make
        bit-identical — the strip-timing comparison contract applies.
        """
        if not self._started:
            raise RuntimeError("checkpoint() before start()")
        return {
            "version": CHECKPOINT_VERSION,
            "tenant": self.tenant,
            "source": encode_model_state(self._source_state,
                                         self._source_tracked),
            "model": encode_model_state(
                self.model.state_dict(),
                [layer.batches_tracked for layer in bn_layers(self.model)]),
            "runner": encode_state(self.runner.runtime_state()),
            "score": {
                "frames_processed": self.frames_processed,
                "frames_correct": self.frames_correct,
                "frames_dropped": self.frames_dropped,
                "batches_total": self.batches_total,
                "batches_late": self.batches_late,
                "wall_time_s": self.wall_time_s,
                "faults_injected": self.faults_injected,
            },
        }

    def load_checkpoint(self, payload: dict) -> "AdaptationSession":
        """Resume a :meth:`checkpoint` onto this (un-started) session.

        The sequence matters: the *source* state is loaded first and the
        runner prepared over it, so every prepare-time snapshot (the
        method's pristine snapshot, the guard's drift-reference BN
        stats) is rebuilt exactly as in the original run; only then is
        the *adapted* state loaded and the runner's runtime state
        restored on top.
        """
        if self._started:
            raise RuntimeError("load_checkpoint() on a started session")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {payload.get('version')!r}")
        source_state, source_tracked = decode_model_state(payload["source"])
        self._apply_model_state(source_state, source_tracked)
        self.start()
        adapted_state, adapted_tracked = decode_model_state(payload["model"])
        self._apply_model_state(adapted_state, adapted_tracked)
        self.runner.load_runtime_state(decode_state(payload["runner"]))
        score = payload["score"]
        self.frames_processed = int(score["frames_processed"])
        self.frames_correct = int(score["frames_correct"])
        self.frames_dropped = int(score["frames_dropped"])
        self.batches_total = int(score["batches_total"])
        self.batches_late = int(score["batches_late"])
        self.wall_time_s = float(score["wall_time_s"])
        self.faults_injected = int(score["faults_injected"])
        self._sync_counters()
        return self

    def _apply_model_state(self, state, batches_tracked: List[int]) -> None:
        """Load a full model state including the BN batch counters."""
        self.model.load_state_dict(state)
        layers = bn_layers(self.model)
        if len(layers) != len(batches_tracked):
            raise ValueError(
                f"checkpoint has {len(batches_tracked)} BN counters; "
                f"model has {len(layers)} BN layers")
        for layer, tracked in zip(layers, batches_tracked):
            layer.batches_tracked = int(tracked)

    def __repr__(self) -> str:
        return (f"AdaptationSession(tenant={self.tenant!r}, "
                f"runner={self.runner!r}, active={self.active})")
