"""Seeded multi-tenant load generation and the serving latency harness.

The paper's tables cost adaptation per device; the fleet question the
ROADMAP asks — how many streams can one box serve, at what tail
latency — needs *load*, not a single stream.  This module generates it
the way the rest of the repo generates adversity: from a tiny seeded
grammar.

An :class:`ArrivalSpec` is written in the compact ``kind:key=value``
grammar of the scenario and fault specs (``"poisson:rate=120"``,
``"uniform:rate=64"``, ``"burst:rate=64+size=8"``) and expands — with
a seed — into an *open-loop* schedule of absolute send instants: the
generator sends when the schedule says, whether or not the daemon has
kept up, so queueing delay shows up in the measured latency instead of
silently throttling the offered load (the coordinated-omission trap).

:func:`run_loadgen` drives one client thread per
:class:`TenantLoad` against a live daemon, records per-request service
latency *and* open-loop latency (measured from the scheduled instant),
samples the daemon's queue depth over ``status``, and reduces it all
to a report with p50/p95/p99 percentiles and throughput.
:func:`run_serving_bench` wraps that in an in-process daemon and
returns the ``serving`` section that :mod:`repro.engine.bench` embeds
in ``BENCH_engine.json`` and ``bench --compare`` gates in CI.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "TenantLoad",
    "parse_arrival_spec",
    "run_loadgen",
    "run_serving_bench",
]

#: supported arrival-process kinds
ARRIVAL_KINDS = ("uniform", "poisson", "burst")

_DEFAULT_RATE = 64.0
_DEFAULT_BURST = 4


@dataclass(frozen=True)
class ArrivalSpec:
    """One tenant's open-loop arrival process, fingerprintable.

    ``rate`` is offered frames per second; ``size`` (burst kind only)
    is how many consecutive chunks fire back-to-back before the
    schedule pauses long enough to keep the average rate.
    """

    kind: str = "uniform"
    rate: float = _DEFAULT_RATE
    size: int = _DEFAULT_BURST

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r} "
                f"(known: {', '.join(ARRIVAL_KINDS)})")
        if not self.rate > 0:
            raise ValueError("arrival rate must be > 0 frames/s")
        if self.size < 1:
            raise ValueError("burst size must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "ArrivalSpec":
        """Parse the compact form, e.g. ``"poisson:rate=120"``.

        Same shape as the scenario/fault grammars: a kind, then
        optional ``+``-joined ``key=value`` parameters.
        """
        body = text.strip()
        if not body:
            raise ValueError("empty arrival spec")
        kind, _, params_text = body.partition(":")
        params: Dict[str, str] = {}
        if params_text:
            for item in params_text.split("+"):
                key, sep, value = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad arrival spec {text!r}: expected key=value, "
                        f"got {item!r}")
                params[key.strip()] = value.strip()
        unknown = sorted(set(params) - {"rate", "size"})
        if unknown:
            raise ValueError(
                f"bad arrival spec {text!r}: unknown parameter(s) "
                f"{', '.join(unknown)}")
        try:
            rate = float(params.get("rate", _DEFAULT_RATE))
            size = int(params.get("size", _DEFAULT_BURST))
        except ValueError:
            raise ValueError(
                f"bad arrival spec {text!r}: non-numeric parameter") \
                from None
        return cls(kind=kind.strip(), rate=rate, size=size)

    def compact(self) -> str:
        """Canonical compact form (parse → compact round-trips)."""
        rate = f"{self.rate:g}"
        if self.kind == "burst":
            return f"{self.kind}:rate={rate}+size={self.size}"
        return f"{self.kind}:rate={rate}"

    def gaps(self, chunk_frames: int, seed: int = 0) -> Iterator[float]:
        """Infinite stream of inter-send gaps (seconds) between chunks.

        Seeded and deterministic: the same (spec, chunk size, seed)
        always yields the same schedule, which is what makes a serving
        benchmark comparable across runs.
        """
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        interval = chunk_frames / self.rate
        if self.kind == "uniform":
            while True:
                yield interval
        elif self.kind == "poisson":
            rng = np.random.default_rng(
                np.random.SeedSequence((int(seed), 0x10adc)))
            while True:
                yield float(rng.exponential(interval))
        else:       # burst: `size` chunks back-to-back, then a pause
            while True:
                for _ in range(self.size - 1):
                    yield 0.0
                yield interval * self.size

    def offsets(self, chunks: int, chunk_frames: int,
                seed: int = 0) -> np.ndarray:
        """Absolute send offsets (s) for ``chunks`` requests."""
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        gaps = self.gaps(chunk_frames, seed)
        out = np.empty(chunks, dtype=np.float64)
        out[0] = 0.0
        for index in range(1, chunks):
            out[index] = out[index - 1] + next(gaps)
        return out


def parse_arrival_spec(text: str) -> ArrivalSpec:
    """Module-level alias mirroring ``parse_fault_specs`` ergonomics."""
    return ArrivalSpec.parse(text)


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered load: spec, volume, and arrival process."""

    spec: "TenantSpec"          # noqa: F821 — imported lazily below
    frames: int = 128
    #: frames per request; 0 means one batch per request
    chunk_frames: int = 0
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)

    def __post_init__(self):
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.chunk_frames < 0:
            raise ValueError("chunk_frames must be >= 0")

    @property
    def request_frames(self) -> int:
        return self.chunk_frames or self.spec.batch_size


def _make_stream(load: TenantLoad, seed: int) -> List[tuple]:
    """Seeded synthetic frames for one tenant, carved per request."""
    # crc32, not hash(): the tenant-name entropy must survive Python's
    # per-process string-hash randomization to stay reproducible
    rng = np.random.default_rng(np.random.SeedSequence(
        (int(seed), zlib.crc32(load.spec.tenant.encode("utf-8")))))
    size = load.spec.image_size
    per = load.request_frames
    chunks = []
    remaining = load.frames
    while remaining > 0:
        count = min(per, remaining)
        images = rng.standard_normal((count, 3, size, size)).astype(
            np.float32)
        labels = rng.integers(0, 10, size=count).astype(np.int64)
        chunks.append((images, labels))
        remaining -= count
    return chunks


def latency_percentiles(values_ms: Sequence[float]) -> dict:
    if not values_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    data = np.asarray(values_ms, dtype=np.float64)
    p50, p95, p99 = np.percentile(data, [50.0, 95.0, 99.0])
    return {"p50": round(float(p50), 3), "p95": round(float(p95), 3),
            "p99": round(float(p99), 3),
            "mean": round(float(data.mean()), 3),
            "max": round(float(data.max()), 3)}


class _TenantRunner(threading.Thread):
    """One tenant's open-loop sender (daemon thread; joined by caller)."""

    def __init__(self, host: str, port: int, load: TenantLoad, seed: int,
                 barrier: threading.Barrier, *, connect_timeout: float,
                 call_timeout: float, retries: int) -> None:
        super().__init__(daemon=True, name=f"loadgen-{load.spec.tenant}")
        self._host = host
        self._port = port
        self.load = load
        self._seed = seed
        self._barrier = barrier
        self._connect_timeout = connect_timeout
        self._call_timeout = call_timeout
        self._retries = retries
        self.samples: List[dict] = []
        self.errors: List[str] = []
        self.final_card = None

    def _wait_start(self) -> None:
        try:
            self._barrier.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            pass        # a peer failed setup; start unaligned rather
            #             than not at all

    def run(self) -> None:
        from repro.serve.client import ServeClient, ServeError
        load = self.load
        chunks = _make_stream(load, self._seed)
        gaps = load.arrival.gaps(load.request_frames, self._seed)
        aligned = False
        try:
            client = ServeClient.connect(
                self._host, self._port, timeout=self._connect_timeout,
                call_timeout=self._call_timeout, retries=self._retries,
                seed=self._seed)
        except OSError as error:
            self.errors.append(f"connect: {error}")
            self._barrier.abort()           # unblock waiting peers
            return
        try:
            with client:
                client.hello(load.spec)
                aligned = True
                self._wait_start()          # all tenants start together
                epoch = time.monotonic()
                scheduled = 0.0
                for index, (images, labels) in enumerate(chunks):
                    if index > 0:
                        scheduled += next(gaps)
                    delay = epoch + scheduled - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    started = time.monotonic()
                    try:
                        ack = client.send_frames(images, labels)
                    except ServeError as error:
                        self.errors.append(f"chunk {index}: {error}")
                        continue
                    finished = time.monotonic()
                    self.samples.append({
                        "tenant": load.spec.tenant,
                        "chunk": index,
                        "scheduled_s": scheduled,
                        "latency_s": finished - started,
                        "open_loop_latency_s": finished - epoch - scheduled,
                        "accepted": int(ack["accepted"]),
                        "dropped": int(ack["dropped"]),
                        "batches_done": int(ack["batches_done"]),
                    })
                self.final_card = client.close_tenant()
        except (ServeError, OSError) as error:
            self.errors.append(str(error))
        finally:
            if not aligned:
                self._barrier.abort()       # hello failed: unblock peers


class _StatusSampler(threading.Thread):
    """Poll the daemon's queue depth while the load runs."""

    def __init__(self, host: str, port: int, every_s: float, *,
                 connect_timeout: float) -> None:
        super().__init__(daemon=True, name="loadgen-status")
        self._host = host
        self._port = port
        self._every_s = every_s
        self._connect_timeout = connect_timeout
        # not `_stop`: that name is a threading.Thread internal
        self._halt = threading.Event()
        self.depths: List[int] = []

    def run(self) -> None:
        from repro.serve.client import ServeClient, ServeError
        try:
            client = ServeClient.connect(self._host, self._port,
                                         timeout=self._connect_timeout)
        except OSError:
            return      # no status samples, the report says so
        with client:
            while not self._halt.wait(self._every_s):
                try:
                    status = client.status()
                except (ServeError, OSError):
                    return      # daemon gone or draining: stop sampling
                pending = sum(t.get("pending_frames", 0)
                              for t in status.get("tenants", {}).values())
                self.depths.append(int(pending))

    def stop(self) -> None:
        self._halt.set()


def run_loadgen(host: str, port: int, loads: Sequence[TenantLoad], *,
                seed: int = 0, status_every_s: float = 0.05,
                connect_timeout: float = 10.0, call_timeout: float = 30.0,
                retries: int = 0) -> dict:
    """Drive the tenant loads against a live daemon; returns the report.

    Open-loop: each tenant sends on its seeded schedule regardless of
    daemon backpressure, so the latency percentiles include queueing
    delay.  ``seed`` shapes every schedule and every synthetic frame —
    the *offered* load is exactly reproducible; the measured latencies
    are, of course, the machine's.
    """
    if not loads:
        raise ValueError("at least one TenantLoad is required")
    barrier = threading.Barrier(len(loads))
    runners = [
        _TenantRunner(host, port, load, seed + index, barrier,
                      connect_timeout=connect_timeout,
                      call_timeout=call_timeout, retries=retries)
        for index, load in enumerate(loads)
    ]
    sampler = None
    if status_every_s > 0:
        sampler = _StatusSampler(host, port, status_every_s,
                                 connect_timeout=connect_timeout)
        sampler.start()
    started = time.monotonic()
    for runner in runners:
        runner.start()
    for runner in runners:
        runner.join()
    wall_s = time.monotonic() - started
    if sampler is not None:
        sampler.stop()
        sampler.join(timeout=5.0)

    samples = [sample for runner in runners for sample in runner.samples]
    errors = [error for runner in runners for error in runner.errors]
    accepted = sum(sample["accepted"] for sample in samples)
    dropped = sum(sample["dropped"] for sample in samples)
    latencies = [sample["latency_s"] * 1e3 for sample in samples]
    open_loop = [max(0.0, sample["open_loop_latency_s"]) * 1e3
                 for sample in samples]
    depths = sampler.depths if sampler is not None else []
    per_tenant = {}
    for runner in runners:
        card = runner.final_card
        per_tenant[runner.load.spec.tenant] = {
            "requests": len(runner.samples),
            "arrival": runner.load.arrival.compact(),
            "frames_accepted": sum(s["accepted"] for s in runner.samples),
            "frames_dropped": sum(s["dropped"] for s in runner.samples),
            "batches_done": (int(card.batches_total)
                             if card is not None else 0),
            "latency_ms": latency_percentiles(
                [s["latency_s"] * 1e3 for s in runner.samples]),
            "errors": len(runner.errors),
        }
    return {
        "tenants": sorted(load.spec.tenant for load in loads),
        "seed": int(seed),
        "requests": len(samples),
        "frames_offered": sum(load.frames for load in loads),
        "frames_accepted": accepted,
        "frames_dropped": dropped,
        "wall_s": round(wall_s, 4),
        "frames_per_s": round(accepted / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_ms": latency_percentiles(latencies),
        "open_loop_latency_ms": latency_percentiles(open_loop),
        "queue_depth": {
            "samples": len(depths),
            "mean": round(float(np.mean(depths)), 2) if depths else 0.0,
            "max": int(max(depths)) if depths else 0,
        },
        "errors": len(errors),
        "error_messages": errors[:8],
        "per_tenant": per_tenant,
    }


def run_serving_bench(*, tenants: int = 2, frames_per_tenant: int = 96,
                      batch_size: int = 16,
                      arrival: str = "poisson:rate=256", seed: int = 0,
                      workers: int = 2, method: str = "bn_opt",
                      guard: bool = True, model: str = "wrn40_2",
                      image_size: int = 16) -> dict:
    """One seeded end-to-end serving benchmark; returns the section
    that ``BENCH_engine.json`` embeds under ``"serving"``.

    Spins an in-process event-loop daemon over a fresh manager, drives
    ``tenants`` concurrent seeded streams through :func:`run_loadgen`,
    and flattens the report into the gated metrics (p50/p95/p99
    latency, frames/s) plus the full report for humans.
    """
    from repro.serve.daemon import ServeDaemon
    from repro.serve.manager import SessionManager, TenantSpec

    spec = ArrivalSpec.parse(arrival)
    manager = SessionManager(max_tenants=max(tenants, 1), workers=workers)
    daemon = ServeDaemon(manager)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = daemon.address
        loads = [
            TenantLoad(
                spec=TenantSpec(tenant=f"load{index}", model=model,
                                method=method, batch_size=batch_size,
                                guard=guard, queue_capacity=2,
                                image_size=image_size, seed=seed + index),
                frames=frames_per_tenant,
                arrival=spec)
            for index in range(tenants)
        ]
        report = run_loadgen(host, port, loads, seed=seed)
    finally:
        daemon.shutdown()
        thread.join(timeout=10.0)
        daemon.close()
    return {
        "config": {"tenants": tenants,
                   "frames_per_tenant": frames_per_tenant,
                   "batch_size": batch_size, "arrival": spec.compact(),
                   "seed": int(seed), "workers": workers,
                   "method": method, "guard": bool(guard),
                   "model": model, "image_size": image_size},
        "requests": report["requests"],
        "frames_accepted": report["frames_accepted"],
        "frames_dropped": report["frames_dropped"],
        "frames_per_s": report["frames_per_s"],
        "latency_ms": report["latency_ms"],
        "open_loop_latency_ms": report["open_loop_latency_ms"],
        "queue_depth": report["queue_depth"],
        "errors": report["errors"],
        "report": report,
    }
