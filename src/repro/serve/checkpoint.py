"""Lossless JSON encoding of numpy state for serve-layer checkpoints.

Session checkpoints ride inside the serve daemon's run journal (JSONL)
and across the wire protocol, both of which speak JSON — but the state
being checkpointed (model parameters, BN buffers, optimizer moments) is
numpy arrays whose *bytes* must survive the round trip exactly: the
kill-and-resume contract is bit-identity, and a float that went through
``repr`` and back is not the float that was written.  Arrays are
therefore encoded as base64 of their raw little-endian bytes plus dtype
and shape, and nested state containers (dicts, lists, scalars) are
walked recursively with arrays tagged ``{"__ndarray__": ...}``.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Tuple

import numpy as np

#: tag key marking an encoded array inside a state tree
_ARRAY_TAG = "__ndarray__"


def encode_array(array: np.ndarray) -> dict:
    """One array as a JSON-safe dict preserving exact bytes."""
    array = np.asarray(array)
    # shape comes from the original: ascontiguousarray promotes 0-d to 1-d
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,        # includes byte order
        "shape": list(array.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array` (bit-exact)."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


def encode_state(value: Any) -> Any:
    """Recursively encode a state tree, tagging every ndarray.

    Handles the shapes produced by ``Module.state_dict`` and
    ``Optimizer.state_dict``: dicts, lists/tuples, ndarrays, numpy
    scalars, and plain JSON scalars.  Unknown types raise rather than
    silently degrading to ``repr`` (a checkpoint that cannot round-trip
    must fail at write time, not at resume time).
    """
    if isinstance(value, np.ndarray):
        return {_ARRAY_TAG: encode_array(value)}
    if isinstance(value, np.generic):
        return {_ARRAY_TAG: encode_array(np.asarray(value))}
    if isinstance(value, dict):
        return {str(key): encode_state(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_state(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_TAG}:
            return decode_array(value[_ARRAY_TAG])
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def encode_model_state(state: Dict[str, np.ndarray],
                       batches_tracked: List[int]) -> dict:
    """A model's full restorable state as one JSON-safe document.

    ``state_dict()`` covers parameters and buffers but **not** the BN
    ``batches_tracked`` counters (plain ints on the layer, outside the
    buffer registry), which BN-Norm's running-average momentum depends
    on — so they are carried alongside, in :func:`repro.adapt.base.bn_layers`
    traversal order.
    """
    return {
        "state": {name: encode_array(array) for name, array in state.items()},
        "batches_tracked": [int(n) for n in batches_tracked],
    }


def decode_model_state(payload: dict) -> Tuple[Dict[str, np.ndarray], List[int]]:
    """Inverse of :func:`encode_model_state`."""
    state = {name: decode_array(entry)
             for name, entry in payload["state"].items()}
    return state, [int(n) for n in payload["batches_tracked"]]
