"""ASan-style numeric sanitizer for the execution engine.

:class:`SanitizerBackend` wraps any :class:`~repro.engine.base.Backend`
and validates every leaf op's inputs and outputs — NaN/Inf, dtype drift
away from the engine's float32 convention, and shape-contract violations
— attributing each violation to the exact op invocation and argument
where it first appears.  Validation only *reads* the arrays, so a clean
run is bit-for-bit identical to running the inner backend directly.

Two modes:

- record (default): findings accumulate on ``backend.findings`` and the
  computation proceeds untouched — the mode the native study and the
  robustness tests use to show *where* an injected fault enters the
  engine while the guard layer handles recovery.
- ``fail_fast=True``: the first finding raises
  :class:`NumericFaultError` — the mode for pinning "this computation
  is finite" in tests.

Select it as ``--backend sanitize`` on the CLI (it wraps the reference
:class:`~repro.engine.numpy_backend.NumpyBackend`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.base import Backend


@dataclass(frozen=True)
class SanitizerFinding:
    """One numeric-contract violation at a specific op invocation."""

    op: str          #: kernel name, e.g. ``"conv2d_forward"``
    call_index: int  #: 0-based invocation count of that kernel
    argument: str    #: which array — an input name or ``"out"``/``"out[i]"``
    kind: str        #: ``"nan"`` / ``"inf"`` / ``"dtype"`` / ``"shape"`` / ``"range"``
    detail: str      #: human-readable specifics (counts, first index, shapes)

    def describe(self) -> str:
        return (f"{self.op}[call {self.call_index}] {self.argument}: "
                f"{self.kind} — {self.detail}")


class NumericFaultError(RuntimeError):
    """Raised in ``fail_fast`` mode on the first sanitizer finding."""

    def __init__(self, finding: SanitizerFinding):
        super().__init__(finding.describe())
        self.finding = finding


class SanitizerBackend(Backend):
    """Delegating wrapper that validates every kernel's arrays.

    Shares the inner backend's arena (like
    :class:`~repro.engine.instrument.InstrumentedBackend`) and returns
    the inner backend's results unmodified.
    """

    name = "sanitize"

    def __init__(self, inner: Optional[Backend] = None, *,
                 dtype: np.dtype = np.float32, fail_fast: bool = False,
                 max_findings: int = 1000):
        # No super().__init__(): the wrapper shares the inner arena
        # rather than owning a second one.
        if inner is None:
            from repro.engine.numpy_backend import NumpyBackend
            inner = NumpyBackend()
        self.inner = inner
        self.arena = inner.arena
        self.dtype = np.dtype(dtype)
        self.fail_fast = fail_fast
        self.max_findings = max_findings
        self.findings: List[SanitizerFinding] = []
        self.truncated = False
        self._calls: Dict[str, int] = {}

    # -- recording ------------------------------------------------------
    def clear(self) -> None:
        """Drop accumulated findings and invocation counters."""
        self.findings = []
        self.truncated = False
        self._calls = {}

    def describe(self) -> str:
        if not self.findings:
            return "sanitizer: clean (no findings)"
        lines = [finding.describe() for finding in self.findings]
        if self.truncated:
            lines.append(f"... findings truncated at {self.max_findings}")
        lines.append(f"sanitizer: {len(self.findings)} finding(s)")
        return "\n".join(lines)

    def _record(self, op: str, index: int, argument: str, kind: str,
                detail: str) -> None:
        finding = SanitizerFinding(op=op, call_index=index,
                                   argument=argument, kind=kind,
                                   detail=detail)
        if self.fail_fast:
            raise NumericFaultError(finding)
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)
        else:
            self.truncated = True

    # -- array validation ----------------------------------------------
    def _check(self, op: str, index: int, argument: str,
               array: np.ndarray,
               expect_shape: Optional[Tuple[int, ...]] = None) -> None:
        if expect_shape is not None and tuple(array.shape) != expect_shape:
            self._record(op, index, argument, "shape",
                         f"shape {tuple(array.shape)} violates the op "
                         f"contract (expected {expect_shape})")
        if not np.issubdtype(array.dtype, np.floating):
            return                    # integer arrays (argmax) are exempt
        if array.dtype != self.dtype:
            self._record(op, index, argument, "dtype",
                         f"dtype drifted to {array.dtype} (engine "
                         f"convention is {self.dtype})")
        if not np.isfinite(array).all():
            nan_count = int(np.isnan(array).sum())
            inf_count = int(np.isinf(array).sum())
            bad = ~np.isfinite(array)
            first = int(np.flatnonzero(bad.ravel())[0])
            if nan_count:
                self._record(op, index, argument, "nan",
                             f"{nan_count} NaN value(s) (first at flat "
                             f"index {first} of shape {tuple(array.shape)})")
            if inf_count:
                self._record(op, index, argument, "inf",
                             f"{inf_count} Inf value(s) (first at flat "
                             f"index {first} of shape {tuple(array.shape)})")

    def _enter(self, op: str) -> int:
        index = self._calls.get(op, 0)
        self._calls[op] = index + 1
        return index

    # -- delegated, validated kernels ----------------------------------
    def conv2d_forward(self, xp, weight, stride, groups):
        index = self._enter("conv2d_forward")
        self._check("conv2d_forward", index, "xp", xp)
        self._check("conv2d_forward", index, "weight", weight)
        out = self.inner.conv2d_forward(xp, weight, stride, groups)
        n, c, h, w = xp.shape
        co, cig, kh, kw = weight.shape
        sh, sw = stride
        expected = (n, co, (h - kh) // sh + 1, (w - kw) // sw + 1)
        if cig * groups != c:
            self._record("conv2d_forward", index, "weight", "shape",
                         f"weight expects {cig * groups} input channels "
                         f"(groups={groups}) but input has {c}")
        self._check("conv2d_forward", index, "out", out,
                    expect_shape=expected)
        return out

    def conv2d_backward(self, grad, xp, weight, stride, groups,
                        need_input_grad, need_weight_grad):
        index = self._enter("conv2d_backward")
        self._check("conv2d_backward", index, "grad", grad)
        self._check("conv2d_backward", index, "xp", xp)
        self._check("conv2d_backward", index, "weight", weight)
        dxp, dw = self.inner.conv2d_backward(
            grad, xp, weight, stride, groups,
            need_input_grad, need_weight_grad)
        if dxp is not None:
            self._check("conv2d_backward", index, "out[d_input]", dxp,
                        expect_shape=tuple(xp.shape))
        if dw is not None:
            self._check("conv2d_backward", index, "out[d_weight]", dw,
                        expect_shape=tuple(weight.shape))
        return dxp, dw

    def matmul(self, a, b):
        index = self._enter("matmul")
        self._check("matmul", index, "a", a)
        self._check("matmul", index, "b", b)
        if a.ndim >= 2 and b.ndim >= 2 and a.shape[-1] != b.shape[-2]:
            self._record("matmul", index, "b", "shape",
                         f"inner dimensions do not contract: "
                         f"{a.shape} @ {b.shape}")
        out = self.inner.matmul(a, b)
        self._check("matmul", index, "out", out)
        return out

    def batchnorm_stats(self, x):
        index = self._enter("batchnorm_stats")
        self._check("batchnorm_stats", index, "x", x)
        mean, var = self.inner.batchnorm_stats(x)
        channels = (x.shape[1],) if x.ndim >= 2 else tuple(mean.shape)
        self._check("batchnorm_stats", index, "out[mean]", mean,
                    expect_shape=channels)
        self._check("batchnorm_stats", index, "out[var]", var,
                    expect_shape=channels)
        if np.issubdtype(var.dtype, np.floating) and (var < 0).any():
            self._record("batchnorm_stats", index, "out[var]", "range",
                         f"{int((var < 0).sum())} negative variance "
                         "value(s) — numerically impossible for a "
                         "correct reduction")
        return mean, var

    def max_pool2d_forward(self, x, kernel, stride):
        index = self._enter("max_pool2d_forward")
        self._check("max_pool2d_forward", index, "x", x)
        out, arg = self.inner.max_pool2d_forward(x, kernel, stride)
        self._check("max_pool2d_forward", index, "out", out,
                    expect_shape=self._pool_shape(x.shape, kernel, stride))
        return out, arg

    def max_pool2d_backward(self, grad, arg, x_shape, kernel, stride):
        index = self._enter("max_pool2d_backward")
        self._check("max_pool2d_backward", index, "grad", grad)
        out = self.inner.max_pool2d_backward(grad, arg, x_shape,
                                             kernel, stride)
        self._check("max_pool2d_backward", index, "out", out,
                    expect_shape=tuple(x_shape))
        return out

    def avg_pool2d_forward(self, x, kernel, stride):
        index = self._enter("avg_pool2d_forward")
        self._check("avg_pool2d_forward", index, "x", x)
        out = self.inner.avg_pool2d_forward(x, kernel, stride)
        self._check("avg_pool2d_forward", index, "out", out,
                    expect_shape=self._pool_shape(x.shape, kernel, stride))
        return out

    def avg_pool2d_backward(self, grad, x_shape, kernel, stride):
        index = self._enter("avg_pool2d_backward")
        self._check("avg_pool2d_backward", index, "grad", grad)
        out = self.inner.avg_pool2d_backward(grad, x_shape, kernel, stride)
        self._check("avg_pool2d_backward", index, "out", out,
                    expect_shape=tuple(x_shape))
        return out

    def pad_input(self, x, ph, pw):
        index = self._enter("pad_input")
        self._check("pad_input", index, "x", x)
        return self.inner.pad_input(x, ph, pw)

    @staticmethod
    def _pool_shape(x_shape, kernel, stride) -> Tuple[int, ...]:
        n, c, h, w = x_shape
        kh, kw = kernel
        sh, sw = stride
        return (n, c, (h - kh) // sh + 1, (w - kw) // sw + 1)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"SanitizerBackend({self.inner!r}, fail_fast={self.fail_fast})"
