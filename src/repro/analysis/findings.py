"""The unit of static-analysis output: one :class:`Finding` per rule hit.

A finding pins a rule code to an exact file/line/column plus the
stripped source text of the offending line.  The source text is part of
the finding's identity on purpose: the baseline (see
:mod:`repro.analysis.baseline`) matches on ``(path, code, text)`` rather
than line numbers, so unrelated edits above a legacy finding do not
invalidate the baseline entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str       #: rule code, e.g. ``"REP001"``
    message: str    #: human-readable description of this specific hit
    path: str       #: file path as given to the engine (posix separators)
    line: int       #: 1-based line number
    col: int        #: 0-based column offset
    text: str       #: stripped source of the offending line

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def describe(self) -> str:
        """``path:line:col: CODE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col,
                "text": self.text}


def finding_from_dict(row: dict) -> Finding:
    """Inverse of :meth:`Finding.to_dict` (strict about field names)."""
    return Finding(code=row["code"], message=row["message"],
                   path=row["path"], line=int(row["line"]),
                   col=int(row["col"]), text=row["text"])
