"""Correctness tooling: static invariant linter + runtime numeric sanitizer.

PRs 1–4 bought this repo expensive guarantees — seeded determinism,
bit-identical resume, atomic IO, thread-local backend state — and every
one of them can silently regress in a future refactor.  This package
enforces them mechanically, in two complementary passes:

- **static** (:mod:`repro.analysis.engine` + :mod:`repro.analysis.rules`):
  an AST rule engine with project-specific ``REPxxx`` rules, per-line
  ``# repro: noqa[REPxxx]`` suppressions, a committed baseline for
  legacy findings, and text/JSON reporters.  Runs as ``repro check``
  and gates CI.
- **dynamic** (:mod:`repro.analysis.sanitize`): a
  :class:`SanitizerBackend` that wraps any execution backend and
  validates every leaf op's arrays (NaN/Inf, float32 dtype drift,
  shape contracts) with op-site attribution.  Runs as
  ``--backend sanitize``.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.context import FileContext
from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    RuleEngine,
    UsageError,
    check_paths,
    iter_python_files,
    resolve_codes,
)
from repro.analysis.findings import Finding, finding_from_dict
from repro.analysis.reporters import (
    format_json,
    format_rule_catalog,
    format_text,
)
from repro.analysis.rules import RULE_CODES, RULES, RULES_BY_CODE, Rule
from repro.analysis.sanitize import (
    NumericFaultError,
    SanitizerBackend,
    SanitizerFinding,
)

__all__ = [
    "BaselineError",
    "FileContext",
    "Finding",
    "NumericFaultError",
    "PARSE_ERROR_CODE",
    "Rule",
    "RuleEngine",
    "RULES",
    "RULES_BY_CODE",
    "RULE_CODES",
    "SanitizerBackend",
    "SanitizerFinding",
    "UsageError",
    "apply_baseline",
    "check_paths",
    "finding_from_dict",
    "format_json",
    "format_rule_catalog",
    "format_text",
    "iter_python_files",
    "load_baseline",
    "resolve_codes",
    "write_baseline",
]
