"""Correctness tooling: static invariant linter + runtime numeric sanitizer.

PRs 1–4 bought this repo expensive guarantees — seeded determinism,
bit-identical resume, atomic IO, thread-local backend state — and every
one of them can silently regress in a future refactor.  This package
enforces them mechanically, in two complementary passes:

- **static** (:mod:`repro.analysis.engine` + :mod:`repro.analysis.rules`):
  an AST rule engine with project-specific ``REPxxx`` rules, per-line
  ``# repro: noqa[REPxxx]`` suppressions, a committed baseline for
  legacy findings, and text/JSON reporters.  Runs as ``repro check``
  and gates CI.
- **dynamic** (:mod:`repro.analysis.sanitize`): a
  :class:`SanitizerBackend` that wraps any execution backend and
  validates every leaf op's arrays (NaN/Inf, float32 dtype drift,
  shape contracts) with op-site attribution.  Runs as
  ``--backend sanitize``.

PR 10 extends both passes to the threaded serve stack: static
concurrency-discipline rules REP008–REP012
(:mod:`repro.analysis.concurrency` — unguarded shared-state writes,
the project-wide lock-order graph, blocking calls under a lock,
daemon-less threads, condition misuse) and the runtime lock-order
watchdog (:mod:`repro.analysis.lockwatch` — ``instrument_locks()``
patches lock construction to record per-thread acquisition stacks and
report inversions/long holds; opt in with ``REPRO_LOCKWATCH=1``).
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.concurrency import LockEdge, lock_order_findings
from repro.analysis.context import FileContext
from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    RuleEngine,
    UsageError,
    check_paths,
    iter_python_files,
    resolve_codes,
)
from repro.analysis.findings import Finding, finding_from_dict
from repro.analysis.lockwatch import (
    LockInversionError,
    LockWatch,
    active_watch,
    finish_watch,
    instrument_locks,
    lockwatch_enabled,
    maybe_instrument,
)
from repro.analysis.reporters import (
    format_github,
    format_json,
    format_rule_catalog,
    format_text,
)
from repro.analysis.rules import RULE_CODES, RULES, RULES_BY_CODE, Rule
from repro.analysis.sanitize import (
    NumericFaultError,
    SanitizerBackend,
    SanitizerFinding,
)

__all__ = [
    "BaselineError",
    "FileContext",
    "Finding",
    "LockEdge",
    "LockInversionError",
    "LockWatch",
    "NumericFaultError",
    "PARSE_ERROR_CODE",
    "Rule",
    "RuleEngine",
    "RULES",
    "RULES_BY_CODE",
    "RULE_CODES",
    "SanitizerBackend",
    "SanitizerFinding",
    "UsageError",
    "active_watch",
    "apply_baseline",
    "check_paths",
    "finding_from_dict",
    "finish_watch",
    "format_github",
    "format_json",
    "format_rule_catalog",
    "format_text",
    "instrument_locks",
    "iter_python_files",
    "load_baseline",
    "lock_order_findings",
    "lockwatch_enabled",
    "maybe_instrument",
    "resolve_codes",
    "write_baseline",
]
