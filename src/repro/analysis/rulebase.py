"""The ``Rule`` base class, split out so rule modules share it freely.

:mod:`repro.analysis.rules` (REP001–REP007 plus the catalog) and
:mod:`repro.analysis.concurrency` (REP008–REP012) both subclass
:class:`Rule`; keeping the base here lets the catalog module import the
concurrency rules without a circular import, whichever module Python
happens to load first.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding


class Rule:
    """Base class: one invariant, one ``REPxxx`` code.

    Subclasses define ``visit_<NodeType>`` methods; each checked node is
    dispatched to every active rule by the engine.  ``begin_module``
    runs before the walk for rules that need a module-level prepass.
    """

    code: str = "REP000"
    name: str = "base"
    #: one-line rationale shown by ``repro check --list-rules``
    rationale: str = ""
    #: restrict to files under these package directories (None = all)
    scope_dirs: Optional[Tuple[str, ...]] = None
    #: whether the rule runs on test files, source files, or both
    runs_on_tests: bool = True
    runs_on_source: bool = True
    #: project-wide rules collect per-file data during the walk and
    #: produce their findings in :meth:`finalize_project` once every
    #: checked file has been seen (e.g. the REP009 lock-order graph)
    project_wide: bool = False

    def __init__(self, context: FileContext):
        self.context = context
        self.findings: List[Finding] = []

    @classmethod
    def finalize_project(cls, instances: Sequence["Rule"]) -> List[Finding]:
        """Merge per-file state from ``instances`` into global findings."""
        return []

    @classmethod
    def applies(cls, context: FileContext) -> bool:
        if context.is_test and not cls.runs_on_tests:
            return False
        if not context.is_test and not cls.runs_on_source:
            return False
        if cls.scope_dirs is not None and not context.in_packages(cls.scope_dirs):
            return False
        return True

    def begin_module(self) -> None:
        """Optional prepass over ``self.context.tree`` before dispatch."""

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            code=self.code, message=message, path=self.context.path,
            line=line, col=getattr(node, "col_offset", 0),
            text=self.context.source_line(line).strip()))
