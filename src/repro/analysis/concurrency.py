"""Concurrency-discipline rules (REP008–REP012).

The serve stack is the most heavily threaded code in the repo — a
selectors event loop, the cross-tenant ``BatchScheduler`` worker pool,
``SessionManager`` with three locks, the chaos proxy — and the hazards
that kill long-lived servers (lock-order inversions, blocking calls
under a held lock, unguarded shared-state mutation) are invisible to
generic linters.  These rules encode the repo's lock discipline:

- REP008 — an attribute a class mutates under one of its own locks is
  shared state; mutating it *outside* any lock (after ``__init__``)
  races with the guarded sites.
- REP009 — the project-wide lock-order graph, built from nested
  lock-like ``with`` blocks (and ``acquire``/``finally: release``
  holds) across every checked file.  Acquisition cycles — including
  AB/BA inversions — are would-deadlocks; a module may also declare
  its intended order via ``_LOCK_ORDER = ("outer", ..., "inner")`` and
  any edge acquired against a declaration is flagged even without a
  full cycle.
- REP010 — blocking calls (``time.sleep``, socket I/O, unbounded
  ``.join()``/``.wait()``/queue ops, ``open``) while holding a lock
  stall every thread contending for it; file locks
  (``FileLock``) are exempt since they exist to serialize I/O.
- REP011 — ``threading.Thread`` created in library code without an
  explicit ``daemon=`` decision can hang interpreter shutdown.
- REP012 — ``Condition.wait/notify`` outside ``with <condition>:`` is
  a runtime ``RuntimeError`` at best and a lost wakeup at worst.

Lock identity for REP009 normalizes ``self.X`` to ``ClassName.X`` so
sites in different methods agree; bare module-level names are kept
verbatim, which intentionally merges same-named locks across files
(lock *roles*, matching the dynamic side in
:mod:`repro.analysis.lockwatch`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import (FileContext, _looks_lock_like,
                                    _lock_expr_name, dotted_name, noqa_codes)
from repro.analysis.findings import Finding
from repro.analysis.rulebase import Rule

#: ``threading`` constructors whose result is an exclusive guard
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore"})

#: method names that mutate their receiver in place
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "clear", "pop", "popitem", "setdefault",
    "extend", "remove", "discard", "insert", "appendleft", "extendleft",
    "popleft", "rotate", "sort", "reverse",
})

#: module-level names that declare a file's intended lock order
_LOCK_ORDER_NAMES = ("_LOCK_ORDER", "__lock_order__")


def _lock_ctor_kind(value: ast.AST) -> Optional[str]:
    """``'Condition'``/``'Lock'``/... when ``value`` is ``threading.X()``."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    last = name.split(".")[-1]
    return last if last in _LOCK_CTORS else None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``Y`` when ``node`` is (a subscript of) ``self.Y``/``self.Y.…``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    attr = None
    while isinstance(node, ast.Attribute):
        attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id in ("self", "cls"):
        return attr
    return None


class _ConcurrencyRule(Rule):
    """Shared helpers for the lock-discipline rules."""

    runs_on_tests = False

    def _held(self, node: ast.AST) -> List[str]:
        function = self.context.enclosing_function(node)
        return self.context.held_locks(node, within=function)

    def _enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.context.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def _normalize(self, raw: str, node: ast.AST) -> str:
        """``self.X`` → ``ClassName.X``; anything else verbatim."""
        parts = raw.split(".")
        if parts[0] in ("self", "cls"):
            owner = self._enclosing_class(node)
            if owner is not None:
                return ".".join([owner.name] + parts[1:])
        return raw


# ---------------------------------------------------------------------------
# REP008 — unguarded writes to lock-guarded instance state
# ---------------------------------------------------------------------------

class GuardedStateRule(_ConcurrencyRule):
    code = "REP008"
    name = "unguarded-shared-state"
    rationale = ("an attribute a class mutates under one of its own locks "
                 "is shared across threads; mutating it outside any lock "
                 "(after __init__) races with the guarded sites")

    def begin_module(self) -> None:
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node)

    def _check_class(self, classdef: ast.ClassDef) -> None:
        lock_attrs = self._lock_attrs(classdef)
        if not lock_attrs:
            return
        writes = self._attribute_writes(classdef, lock_attrs)
        guarded = {attr for attr, _node, locked, _meth in writes if locked}
        for attr, node, locked, method in writes:
            if attr not in guarded or locked:
                continue
            if method in (None, "__init__"):
                continue           # construction happens-before sharing
            self.report(node, f"write to `self.{attr}` outside a lock in "
                              f"`{classdef.name}.{method}`; other sites "
                              "mutate it under a held lock, so this write "
                              "races with them")

    def _lock_attrs(self, classdef: ast.ClassDef) -> Set[str]:
        """Attributes assigned a ``threading.Lock()``-style constructor."""
        attrs: Set[str] = set()
        for node in ast.walk(classdef):
            if (isinstance(node, ast.Assign)
                    and _lock_ctor_kind(node.value) is not None):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None and not isinstance(target,
                                                           ast.Subscript):
                        attrs.add(attr)
        return attrs

    def _attribute_writes(self, classdef: ast.ClassDef, lock_attrs: Set[str]
                          ) -> List[Tuple[str, ast.AST, bool, Optional[str]]]:
        writes: List[Tuple[str, ast.AST, bool, Optional[str]]] = []

        def record(attr: Optional[str], node: ast.AST) -> None:
            if attr is None or attr in lock_attrs:
                return
            locked = bool(self._held(node))
            writes.append((attr, node, locked, self._method_name(node,
                                                                classdef)))

        for node in ast.walk(classdef):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(_self_attr(target), node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                record(_self_attr(node.target), node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    record(_self_attr(target), node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS):
                record(_self_attr(node.func.value), node)
        return writes

    def _method_name(self, node: ast.AST,
                     classdef: ast.ClassDef) -> Optional[str]:
        """Name of the outermost function between ``node`` and the class."""
        name = None
        for ancestor in self.context.ancestors(node):
            if ancestor is classdef:
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = ancestor.name
        return name


# ---------------------------------------------------------------------------
# REP009 — project-wide lock-order graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LockEdge:
    """One observed nested acquisition: ``acquired`` taken under ``holder``."""
    holder: str
    acquired: str
    path: str
    line: int
    col: int
    text: str


class LockOrderRule(_ConcurrencyRule):
    code = "REP009"
    name = "lock-order"
    rationale = ("nested lock acquisitions define a project-wide order "
                 "graph; a cycle (e.g. AB in one thread, BA in another) "
                 "is a would-deadlock, and modules may pin the intended "
                 "order with `_LOCK_ORDER = (\"outer\", ..., \"inner\")`")
    project_wide = True

    def begin_module(self) -> None:
        self.edges: List[LockEdge] = []
        self.declarations: List[Tuple[str, Tuple[str, ...]]] = []
        for statement in self.context.tree.body:
            if not (isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and statement.targets[0].id in _LOCK_ORDER_NAMES):
                continue
            value = statement.value
            if isinstance(value, (ast.Tuple, ast.List)):
                names = tuple(elt.value for elt in value.elts
                              if isinstance(elt, ast.Constant)
                              and isinstance(elt.value, str))
                if names:
                    self.declarations.append((self.context.path, names))

    def _visit_with(self, node: ast.With) -> None:
        lock_names = [self._normalize(_lock_expr_name(item.context_expr),
                                      node)
                      for item in node.items
                      if _looks_lock_like(item.context_expr)]
        if not lock_names:
            return
        suppressed = noqa_codes(self.context.source_line(node.lineno))
        if suppressed is not None and (not suppressed
                                       or self.code in suppressed):
            return                 # suppressing the site removes its edges
        function = self.context.enclosing_function(node)
        held = [self._normalize(name, node)
                for name in self.context.held_locks(node, within=function)]
        line = node.lineno
        text = self.context.source_line(line).strip()
        for acquired in lock_names:
            for holder in held:
                self.edges.append(LockEdge(holder, acquired,
                                           self.context.path, line,
                                           getattr(node, "col_offset", 0),
                                           text))
            held = [acquired] + held   # `with a, b:` acquires b under a
    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    @classmethod
    def finalize_project(cls, instances: Sequence["LockOrderRule"]
                         ) -> List[Finding]:
        edges = [edge for rule in instances for edge in rule.edges]
        declarations = [decl for rule in instances
                        for decl in rule.declarations]
        return lock_order_findings(edges, declarations)


def _find_path(graph: Dict[str, Set[str]], start: str,
               goal: str) -> Optional[List[str]]:
    """A path ``start → … → goal`` through ``graph`` (DFS), or None."""
    stack: List[List[str]] = [[start]]
    seen = {start}
    while stack:
        path = stack.pop()
        node = path[-1]
        if node == goal:
            return path
        for neighbor in sorted(graph.get(node, ())):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(path + [neighbor])
    return None


def lock_order_findings(
        edges: Sequence[LockEdge],
        declarations: Sequence[Tuple[str, Tuple[str, ...]]]
) -> List[Finding]:
    """Cycle + declared-order analysis over the merged project graph."""
    graph: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], List[LockEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.holder, set()).add(edge.acquired)
        sites.setdefault((edge.holder, edge.acquired), []).append(edge)

    findings: List[Finding] = []
    reported: Set[Tuple[str, int, int]] = set()

    def report(edge: LockEdge, message: str) -> None:
        key = (edge.path, edge.line, edge.col)
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding(code=LockOrderRule.code, message=message,
                                path=edge.path, line=edge.line,
                                col=edge.col, text=edge.text))

    # declared-order violations: an edge acquired against a declaration
    for decl_path, order in declarations:
        index = {name: i for i, name in enumerate(order)}
        for edge in edges:
            if (edge.holder in index and edge.acquired in index
                    and index[edge.acquired] < index[edge.holder]):
                report(edge, f"acquiring `{edge.acquired}` while holding "
                             f"`{edge.holder}` violates the declared lock "
                             f"order in {decl_path} "
                             f"({' -> '.join(order)})")

    # acquisition cycles (includes 2-cycles = AB/BA inversions and
    # self-nesting of a non-reentrant lock)
    for (holder, acquired), edge_sites in sorted(sites.items()):
        if holder == acquired:
            for edge in edge_sites:
                report(edge, f"nested acquisition of `{holder}` under "
                             "itself deadlocks a non-reentrant Lock "
                             "(use RLock deliberately, or restructure)")
            continue
        back_path = _find_path(graph, acquired, holder)
        if back_path is None:
            continue
        cycle = " -> ".join([holder] + back_path)
        for edge in edge_sites:
            report(edge, f"acquiring `{acquired}` while holding "
                         f"`{holder}` closes the lock-order cycle "
                         f"{cycle}; two threads taking opposite routes "
                         "deadlock")

    findings.sort(key=Finding.sort_key)
    return findings


# ---------------------------------------------------------------------------
# REP010 — blocking calls while holding a lock
# ---------------------------------------------------------------------------

_SOCKET_BLOCKING = frozenset({"recv", "recvfrom", "recv_into", "accept",
                              "sendall", "connect"})


def _has_keyword(node: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in node.keywords)


class BlockingUnderLockRule(_ConcurrencyRule):
    code = "REP010"
    name = "blocking-under-lock"
    rationale = ("a blocking call under a held lock stalls every thread "
                 "contending for it — sleeps, socket I/O, unbounded "
                 "joins/waits/queue ops and file I/O belong outside the "
                 "critical section (FileLock holds are exempt: they exist "
                 "to serialize file I/O)")

    def _thread_locks(self, node: ast.AST) -> List[str]:
        """Held locks minus file locks (which sanction I/O, not forbid it)."""
        return [name for name in self._held(node)
                if "file" not in name.lower()]

    def visit_Call(self, node: ast.Call) -> None:
        held = self._thread_locks(node)
        if not held:
            return
        holder = held[0]
        func = node.func
        name = dotted_name(func)
        if name in ("time.sleep", "sleep"):
            self.report(node, f"`{name}(...)` while holding `{holder}`; "
                              "sleep outside the critical section")
            return
        if isinstance(func, ast.Name) and func.id == "open":
            self.report(node, f"file I/O (`open`) while holding `{holder}`; "
                              "stage data outside the lock")
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = dotted_name(func.value)
        if attr in _SOCKET_BLOCKING:
            self.report(node, f"blocking socket call `.{attr}(...)` while "
                              f"holding `{holder}`; a stalled peer stalls "
                              "every contender")
        elif (attr == "join" and not node.args
                and not _has_keyword(node, "timeout")):
            self.report(node, f"unbounded `.join()` while holding "
                              f"`{holder}`; pass a timeout or join outside "
                              "the lock")
        elif attr in ("wait", "wait_for"):
            if receiver is not None and receiver in self._held(node):
                return             # Condition.wait releases the lock it holds
            timeout_position = 0 if attr == "wait" else 1
            if (len(node.args) > timeout_position
                    or _has_keyword(node, "timeout")):
                return
            self.report(node, f"unbounded `.{attr}()` while holding "
                              f"`{holder}`; wait with a timeout or outside "
                              "the lock")
        elif attr in ("get", "put") and receiver is not None \
                and "queue" in receiver.lower():
            bounded = (_has_keyword(node, "timeout")
                       or _has_keyword(node, "block")
                       or len(node.args) > (0 if attr == "get" else 1))
            if not bounded:
                self.report(node, f"unbounded `{receiver}.{attr}(...)` "
                                  f"while holding `{holder}`; a full/empty "
                                  "queue blocks every contender")


# ---------------------------------------------------------------------------
# REP011 — threads without an explicit daemon decision
# ---------------------------------------------------------------------------

_THREAD_CTORS = ("threading.Thread", "Thread")


class ThreadDaemonRule(_ConcurrencyRule):
    code = "REP011"
    name = "thread-daemon"
    rationale = ("library code must decide thread lifetime explicitly: a "
                 "Thread without `daemon=` inherits the creator's flag and "
                 "a forgotten non-daemon worker hangs interpreter shutdown")

    def visit_Call(self, node: ast.Call) -> None:
        if dotted_name(node.func) not in _THREAD_CTORS:
            return
        if not _has_keyword(node, "daemon"):
            self.report(node, "threading.Thread(...) without an explicit "
                              "`daemon=`; decide the thread's lifetime "
                              "(daemon=True, or daemon=False plus a "
                              "recorded join)")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not any(dotted_name(base) in _THREAD_CTORS
                   for base in node.bases):
            return
        sets_daemon = any(
            isinstance(sub, ast.Assign)
            and any(_self_attr(t) == "daemon" for t in sub.targets)
            for sub in ast.walk(node))
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "__init__"
                    and isinstance(sub.func.value, ast.Call)
                    and dotted_name(sub.func.value.func) == "super"):
                continue
            if not _has_keyword(sub, "daemon") and not sets_daemon:
                self.report(sub, f"Thread subclass `{node.name}` forwards "
                                 "super().__init__ without `daemon=`; "
                                 "decide the thread's lifetime explicitly")


# ---------------------------------------------------------------------------
# REP012 — Condition.wait/notify outside the condition's lock
# ---------------------------------------------------------------------------

_CONDITION_METHODS = frozenset({"wait", "wait_for", "notify", "notify_all"})


class ConditionDisciplineRule(_ConcurrencyRule):
    code = "REP012"
    name = "condition-discipline"
    rationale = ("Condition.wait/notify outside `with <condition>:` raises "
                 "RuntimeError at runtime and loses wakeups under race — "
                 "the condition must be held at the call site")

    def begin_module(self) -> None:
        self.condition_names: Set[str] = set()
        for node in ast.walk(self.context.tree):
            if (isinstance(node, ast.Assign)
                    and _lock_ctor_kind(node.value) == "Condition"):
                for target in node.targets:
                    name = dotted_name(target)
                    if name is not None:
                        self.condition_names.add(name)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _CONDITION_METHODS):
            return
        receiver = dotted_name(func.value)
        if receiver is None:
            return
        is_condition = (receiver in self.condition_names
                        or "cond" in receiver.split(".")[-1].lower())
        if not is_condition:
            return
        if receiver in self._held(node):
            return
        self.report(node, f"`{receiver}.{func.attr}(...)` outside "
                          f"`with {receiver}:`; the condition's lock must "
                          "be held at the call site")
