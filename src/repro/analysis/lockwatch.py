"""Runtime lock-order watchdog (the dynamic side of the concurrency pass).

The static rules (REP008–REP012) see lexical structure; this module
sees what the threads actually do.  :func:`instrument_locks` patches
``threading.Lock``/``RLock``/``Condition`` so every lock *constructed
inside the context* reports to a :class:`LockWatch`, which

- keeps a per-thread stack of held locks,
- maintains the observed lock-order graph (edges keyed by the locks'
  construction sites, so every per-tenant lock made at one line is one
  graph node — the same role-based identity REP009 uses),
- records an **inversion** the moment a new edge closes a cycle — the
  AB/BA pattern that deadlocks two threads taking opposite routes —
  with both threads' acquisition stacks for diagnosis, and
- records **long holds** (a lock held longer than ``long_hold_s``),
  the runtime signature of REP010's blocking-call-under-lock.

Locks created *before* entering the context are invisible — the
watchdog observes construction, not acquisition, so wrap the code
under test (a pytest session, ``repro serve``) from the start.

Opt-in hooks: ``REPRO_LOCKWATCH=1`` turns :func:`maybe_instrument`
into a real instrumentation context (the shared pytest fixture in
``tests/conftest.py`` and the ``repro serve`` CLI both use it), and
``REPRO_LOCKWATCH_REPORT=path.json`` asks them to persist
:meth:`LockWatch.report` for the CI artifact.
"""

from __future__ import annotations

import _thread
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.resilience.atomic import atomic_write_text

#: set to ``1`` to activate :func:`maybe_instrument`
ENV_FLAG = "REPRO_LOCKWATCH"
#: where :func:`maybe_instrument` users persist the report
ENV_REPORT = "REPRO_LOCKWATCH_REPORT"

#: per-category cap on stored diagnostic records (counters keep counting)
_MAX_RECORDS = 50


class LockInversionError(AssertionError):
    """Raised by :meth:`LockWatch.assert_clean` when cycles were observed."""


def lockwatch_enabled() -> bool:
    """True when the ``REPRO_LOCKWATCH`` env hook asks for instrumentation."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def _caller_site() -> str:
    """``file.py:lineno`` of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return (f"{os.path.basename(frame.f_code.co_filename)}"
            f":{frame.f_lineno}")


def _acquisition_stack(limit: int = 10) -> List[str]:
    """Trimmed ``file.py:line:function`` frames outside this module."""
    frames: List[str] = []
    frame = sys._getframe(1)
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        if code.co_filename != __file__:
            frames.append(f"{os.path.basename(code.co_filename)}"
                          f":{frame.f_lineno}:{code.co_name}")
        frame = frame.f_back
    return frames


class LockWatch:
    """Observed lock-order graph + per-thread held stacks.

    Internal state is guarded by a raw ``_thread`` lock so the watch
    never recurses into its own instrumentation.
    """

    def __init__(self, long_hold_s: float = 0.5):
        self.long_hold_s = float(long_hold_s)
        self._meta = _thread.allocate_lock()
        self._tls = threading.local()
        self.locks_created = 0
        self.acquisitions = 0
        #: (holder_site, acquired_site) -> {"count", "stack", "thread"}
        self.edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.inversions: List[Dict[str, Any]] = []
        self.inversion_count = 0
        self.long_holds: List[Dict[str, Any]] = []
        self.long_hold_count = 0

    # -- registration / per-thread stack -------------------------------
    def register(self, site: str) -> str:
        """Account a lock constructed at ``site``; the site is the label."""
        with self._meta:
            self.locks_created += 1
        return site

    def _stack(self) -> List[Tuple[str, int, float]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held(self) -> List[str]:
        """Labels of locks the calling thread holds, outermost first."""
        return [label for label, _lock_id, _t0 in self._stack()]

    # -- instrumentation callbacks -------------------------------------
    def note_acquired(self, label: str, lock_id: int,
                      blocking: bool = True) -> None:
        stack = self._stack()
        # thread name resolved before taking _meta: current_thread() may
        # construct objects through the patched factories, which would
        # re-enter register() and deadlock on the raw meta lock
        thread_name = threading.current_thread().name if stack else ""
        with self._meta:
            self.acquisitions += 1
            # a non-blocking acquire can never deadlock, so it adds no
            # *acquired-side* edge (close-once latches use this); the
            # lock still joins the held stack — another thread may block
            # on it, so it remains a valid *holder* for later edges
            if blocking:
                for held_label, held_id, _t0 in stack:
                    if held_id == lock_id:
                        continue   # reentrant hold of the same object
                    key = (held_label, label)
                    info = self.edges.get(key)
                    if info is None:
                        info = {"count": 0,
                                "thread": thread_name,
                                "stack": _acquisition_stack()}
                        self.edges[key] = info
                        self._record_cycle(held_label, label, thread_name)
                    info["count"] += 1
        stack.append((label, lock_id, time.monotonic()))

    def note_released(self, label: str, lock_id: int) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] == lock_id:
                _label, _lock_id, t0 = stack.pop(index)
                held_s = time.monotonic() - t0
                if held_s >= self.long_hold_s:
                    thread_name = threading.current_thread().name
                    with self._meta:
                        self.long_hold_count += 1
                        if len(self.long_holds) < _MAX_RECORDS:
                            self.long_holds.append({
                                "lock": label,
                                "held_s": round(held_s, 4),
                                "thread": thread_name,
                                "stack": _acquisition_stack(),
                            })
                return
        # released by a thread that never acquired it (legal for Lock,
        # e.g. a close-once guard handed across threads) — nothing held

    # -- graph analysis (caller holds self._meta) ----------------------
    def _record_cycle(self, holder: str, acquired: str,
                      thread_name: str) -> None:
        """The edge (holder → acquired) was just added; look for a way back."""
        path = self._path(acquired, holder)
        if path is None:
            return
        self.inversion_count += 1
        if len(self.inversions) >= _MAX_RECORDS:
            return
        reverse = self.edges.get((path[0], path[1])) if len(path) > 1 else None
        self.inversions.append({
            "holding": holder,
            "acquiring": acquired,
            "cycle": [holder] + path,
            "thread": thread_name,
            "stack": _acquisition_stack(),
            "prior_thread": reverse["thread"] if reverse else None,
            "prior_stack": reverse["stack"] if reverse else None,
        })

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        stack = [[start]]
        seen = {start}
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == goal:
                return path
            for held_label, acquired_label in self.edges:
                if held_label == node and acquired_label not in seen:
                    seen.add(acquired_label)
                    stack.append(path + [acquired_label])
        return None

    # -- reporting -----------------------------------------------------
    def report(self) -> Dict[str, Any]:
        with self._meta:
            return {
                "format": "repro.lockwatch_report",
                "version": 1,
                "locks_created": self.locks_created,
                "acquisitions": self.acquisitions,
                "long_hold_s": self.long_hold_s,
                "edges": [{"from": a, "to": b, "count": info["count"]}
                          for (a, b), info in sorted(self.edges.items())],
                "inversion_count": self.inversion_count,
                "inversions": [dict(record) for record in self.inversions],
                "long_hold_count": self.long_hold_count,
                "long_holds": [dict(record) for record in self.long_holds],
            }

    def write_report(self, path: str) -> None:
        atomic_write_text(path, json.dumps(self.report(), indent=2))

    def assert_clean(self, long_holds: bool = False) -> None:
        """Raise :class:`LockInversionError` if inversions were observed.

        Long holds are warnings by default — batch adaptation
        legitimately exceeds any fixed threshold — pass
        ``long_holds=True`` to treat them as failures too.
        """
        problems: List[str] = []
        with self._meta:
            for record in self.inversions:
                problems.append(
                    f"lock-order inversion: {' -> '.join(record['cycle'])} "
                    f"(thread {record['thread']}, "
                    f"at {'; '.join(record['stack'][:3])})")
            if self.inversion_count > len(self.inversions):
                problems.append(f"... and "
                                f"{self.inversion_count - len(self.inversions)}"
                                " more inversion(s)")
            if long_holds:
                for record in self.long_holds:
                    problems.append(
                        f"long hold: {record['lock']} held "
                        f"{record['held_s']}s by {record['thread']}")
        if problems:
            raise LockInversionError(
                f"lockwatch: {len(problems)} problem(s)\n" +
                "\n".join(problems))


class InstrumentedLock:
    """Drop-in ``threading.Lock`` reporting to a :class:`LockWatch`."""

    def __init__(self, watch: LockWatch, label: str):
        self._real = _thread.allocate_lock()
        self._watch = watch
        self._label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._watch.note_acquired(self._label, id(self),
                                      blocking=blocking)
        return acquired

    def release(self) -> None:
        self._real.release()
        self._watch.note_released(self._label, id(self))

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._real.locked() else "unlocked"
        return f"<InstrumentedLock {self._label} {state}>"


class InstrumentedRLock:
    """Drop-in ``threading.RLock``; only the outermost hold is reported."""

    def __init__(self, watch: LockWatch, label: str):
        self._real = _thread.RLock()
        self._watch = watch
        self._label = label
        self._depth = 0            # mutated only while the lock is held

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._depth += 1
            if self._depth == 1:
                self._watch.note_acquired(self._label, id(self),
                                          blocking=blocking)
        return acquired

    def release(self) -> None:
        outermost = self._depth == 1
        self._depth -= 1
        self._real.release()
        if outermost:
            self._watch.note_released(self._label, id(self))

    def __enter__(self) -> "InstrumentedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def _is_owned(self) -> bool:
        return self._real._is_owned()

    def __repr__(self) -> str:
        return f"<InstrumentedRLock {self._label} depth={self._depth}>"


#: innermost-last stack of active watches (nested instrument_locks works;
#: each level restores the factories it replaced)
_ACTIVE: List[LockWatch] = []
_PATCH_LOCK = _thread.allocate_lock()


def active_watch() -> Optional[LockWatch]:
    """The innermost active :class:`LockWatch`, or None."""
    with _PATCH_LOCK:
        return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def instrument_locks(long_hold_s: float = 0.5) -> Iterator[LockWatch]:
    """Patch ``threading`` lock constructors; yield the observing watch.

    Only locks *constructed* inside the context are instrumented;
    ``threading.Event`` (and anything else resolving the module
    globals) picks the patched constructors up automatically.
    """
    watch = LockWatch(long_hold_s=long_hold_s)

    def make_lock() -> InstrumentedLock:
        return InstrumentedLock(watch, watch.register(_caller_site()))

    def make_rlock() -> InstrumentedRLock:
        return InstrumentedRLock(watch, watch.register(_caller_site()))

    original_condition = threading.Condition

    def make_condition(lock: Optional[object] = None):
        return original_condition(lock if lock is not None else make_lock())

    with _PATCH_LOCK:
        saved = (threading.Lock, threading.RLock, threading.Condition)
        threading.Lock = make_lock          # type: ignore[assignment]
        threading.RLock = make_rlock        # type: ignore[assignment]
        threading.Condition = make_condition  # type: ignore[assignment]
        _ACTIVE.append(watch)
    try:
        yield watch
    finally:
        with _PATCH_LOCK:
            threading.Lock, threading.RLock, threading.Condition = saved
            _ACTIVE.remove(watch)


@contextmanager
def maybe_instrument(long_hold_s: float = 0.5
                     ) -> Iterator[Optional[LockWatch]]:
    """:func:`instrument_locks` when ``REPRO_LOCKWATCH=1``, else a no-op."""
    if not lockwatch_enabled():
        yield None
        return
    with instrument_locks(long_hold_s=long_hold_s) as watch:
        yield watch


def finish_watch(watch: Optional[LockWatch]) -> None:
    """Shared epilogue for env-hook users: persist + assert clean.

    Writes the report to ``REPRO_LOCKWATCH_REPORT`` (when set) before
    raising, so CI can upload the artifact from a failed run.
    """
    if watch is None:
        return
    report_path = os.environ.get(ENV_REPORT, "")
    if report_path:
        watch.write_report(report_path)
    watch.assert_clean()
