"""The project-specific invariant rules (``REPxxx``).

Each rule is an AST visitor targeting one way a PR can silently erode a
guarantee this repo has paid for — seeded determinism, crash-safe IO,
thread-local backend state.  Rules declare ``visit_<NodeType>`` methods;
the engine walks each file's tree once and dispatches every node to
every active rule (see :mod:`repro.analysis.engine`).

The catalog (code — invariant protected):

- REP001 — global-state ``np.random.*`` / ``random.*`` calls: all
  randomness must flow through seeded ``np.random.Generator`` objects
  (``default_rng``), or per-cell seeding breaks and parallel workers
  diverge from the serial twin.
- REP002 — wall-clock reads (``time.time``/``datetime.now``) in the
  seed/resume-critical packages (``core``, ``resilience``,
  ``parallel``): resumed runs must be bit-identical to uninterrupted
  ones, which a wall-clock dependence silently breaks.  Monotonic and
  ``perf_counter`` duration timing is fine.
- REP003 — raw file writes (``open(..., "w")``, ``json.dump``,
  ``np.save*``, ``Path.write_text``/``write_bytes``) that bypass
  :mod:`repro.resilience.atomic`: a crash mid-write must never leave a
  half-written artifact.  Writes to a name bound by
  ``with atomic_path(...) as tmp`` are the sanctioned pattern and are
  not flagged.
- REP004 — mutable default arguments: shared-across-calls state is
  exactly the hidden coupling the resilience layer exists to avoid.
- REP005 — writes to module-level mutable globals outside a lock: the
  engine is multi-threaded (watchdog threads, ThreadedBackend,
  concurrent sweeps), so module-global mutation must happen inside a
  ``with <lock>:`` block (or through a designated accessor object,
  which mutates attributes, not module globals).
- REP006 — error-swallowing exception handlers: a bare ``except:`` or
  an ``except Exception:`` whose body is only ``pass``/``continue``
  hides exactly the failures the journal exists to record.
- REP007 — broadcast-unsafe exact array equality in tests
  (``(a == b).all()``): silently True under shape broadcasting;
  ``np.array_equal`` states bit-identity intent and checks shapes,
  ``np.allclose`` states numeric closeness.
- REP008–REP012 — the concurrency-discipline rules for the threaded
  serve stack (unguarded shared-state writes, lock-order cycles,
  blocking calls under a lock, daemon-less threads, condition misuse);
  see :mod:`repro.analysis.concurrency` and docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Type

from repro.analysis.context import dotted_name
from repro.analysis.rulebase import Rule


# ---------------------------------------------------------------------------
# REP001 — global-state RNG
# ---------------------------------------------------------------------------

#: numpy legacy global-state functions (the seeded-Generator API —
#: default_rng / Generator / SeedSequence / bit generators — is allowed)
_NP_GLOBAL_RNG = frozenset({
    "seed", "rand", "randn", "randint", "random", "ranf", "sample",
    "random_sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "binomial", "poisson", "beta", "gamma",
    "exponential", "lognormal", "get_state", "set_state", "bytes",
    "random_integers",
})

#: stdlib ``random`` module functions (module-global Mersenne state)
_STDLIB_RNG = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "getstate", "setstate", "betavariate", "expovariate",
})


class GlobalRandomRule(Rule):
    code = "REP001"
    name = "global-rng"
    rationale = ("randomness must flow through seeded np.random.Generator "
                 "instances; global-state RNG calls break per-cell seeding "
                 "and serial/parallel bit-identity")

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if (len(parts) == 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random" and parts[2] in _NP_GLOBAL_RNG):
            self.report(node, f"global-state numpy RNG call `{name}(...)`; "
                              "thread a seeded np.random.Generator "
                              "(np.random.default_rng) through instead")
        elif (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _STDLIB_RNG):
            self.report(node, f"stdlib global-state RNG call `{name}(...)`; "
                              "use a seeded np.random.Generator instead")


# ---------------------------------------------------------------------------
# REP002 — wall clock in seed/resume-critical packages
# ---------------------------------------------------------------------------

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})


class WallClockRule(Rule):
    code = "REP002"
    name = "wall-clock"
    rationale = ("core/resilience/parallel must produce bit-identical "
                 "results on resume; wall-clock timestamps leak "
                 "nondeterminism (perf_counter/monotonic durations are fine)")
    scope_dirs = ("core", "resilience", "parallel")
    runs_on_tests = False

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK:
            self.report(node, f"wall-clock read `{name}()` in a "
                              "seed/resume-critical module; use "
                              "time.perf_counter/monotonic for durations "
                              "or pass timestamps in explicitly")


# ---------------------------------------------------------------------------
# REP003 — raw writes bypassing the atomic helpers
# ---------------------------------------------------------------------------

_NUMPY_SAVERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})


class RawWriteRule(Rule):
    code = "REP003"
    name = "raw-write"
    rationale = ("persisted artifacts must survive a crash mid-write; "
                 "route writes through repro.resilience.atomic "
                 "(atomic_path / atomic_write_bytes / atomic_write_text)")
    runs_on_tests = False

    def _is_sanctioned(self, node: ast.Call, target: Optional[ast.AST]) -> bool:
        """Writes to a ``with atomic_path(...) as tmp`` binding are fine."""
        if not isinstance(target, ast.Name):
            return False
        return target.id in self.context.atomic_path_bindings(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # open(path, "w"/"wb"/"x"/...)
        if isinstance(func, ast.Name) and func.id == "open":
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
                    and any(ch in mode.value for ch in "wx")):
                target = node.args[0] if node.args else None
                if not self._is_sanctioned(node, target):
                    self.report(node, f"raw `open(..., {mode.value!r})` "
                                      "bypasses the atomic-write helpers; "
                                      "a crash mid-write corrupts the target")
            return
        # <path>.write_text(...) / <path>.write_bytes(...) — checked
        # before the dotted-name match because the receiver is often a
        # call result (``Path(p).write_text``), which has no dotted name
        if (isinstance(func, ast.Attribute)
                and func.attr in ("write_text", "write_bytes")):
            if not self._is_sanctioned(node, func.value):
                self.report(node, f"raw `.{func.attr}(...)` write; use "
                                  "atomic_write_text/atomic_write_bytes")
            return
        name = dotted_name(func)
        if name is None:
            return
        parts = name.split(".")
        # json.dump(obj, fp)
        if name == "json.dump":
            target = node.args[1] if len(node.args) >= 2 else None
            if not self._is_sanctioned(node, target):
                self.report(node, "`json.dump` writes through a raw handle; "
                                  "serialize with json.dumps and write via "
                                  "atomic_write_text")
            return
        # np.save / np.savez / np.savez_compressed / np.savetxt
        if (len(parts) == 2 and parts[0] in ("np", "numpy")
                and parts[1] in _NUMPY_SAVERS):
            target = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "file":
                    target = keyword.value
            if not self._is_sanctioned(node, target):
                self.report(node, f"raw `{name}` write; wrap it in "
                                  "`with atomic_path(target) as tmp:` and "
                                  "write to the temp sibling")


# ---------------------------------------------------------------------------
# REP004 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = frozenset({"dict", "list", "set", "bytearray",
                            "defaultdict", "OrderedDict", "Counter", "deque"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CTORS:
            return True
    return False


class MutableDefaultRule(Rule):
    code = "REP004"
    name = "mutable-default"
    rationale = ("a mutable default is shared across every call — hidden "
                 "cross-call state that survives resets and breaks "
                 "cell isolation")

    def _check(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if _is_mutable_literal(default):
                self.report(default, "mutable default argument; default to "
                                     "None and build the object inside "
                                     "the function")

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
    visit_Lambda = _check


# ---------------------------------------------------------------------------
# REP005 — unguarded writes to module-level mutable globals
# ---------------------------------------------------------------------------

_MUTATORS = frozenset({"append", "add", "update", "clear", "pop", "popitem",
                       "setdefault", "extend", "remove", "discard", "insert",
                       "appendleft", "extendleft"})


class GlobalMutationRule(Rule):
    code = "REP005"
    name = "global-mutation"
    rationale = ("watchdog threads, ThreadedBackend and concurrent sweeps "
                 "share module state; module-global mutation must sit "
                 "inside a `with <lock>:` block or behind a dedicated "
                 "accessor object (use_backend / no_grad / caches "
                 "exposing clear())")
    runs_on_tests = False

    def begin_module(self) -> None:
        self.module_mutables: Set[str] = set()
        for node in self.context.tree.body:
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if _is_mutable_literal(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_mutables.add(target.id)

    def _unguarded(self, node: ast.AST) -> bool:
        function = self.context.enclosing_function(node)
        if function is None:
            return False             # import-time init is single-threaded
        return not self.context.inside_lock(node, within=function)

    def _is_global_name(self, node: ast.AST, name: str) -> bool:
        function = self.context.enclosing_function(node)
        if function is None:
            return False
        return name in self.context.global_declarations(function)

    def _check_target(self, node: ast.AST, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self._is_global_name(node, target.id) and self._unguarded(node):
                self.report(node, f"rebinding module global `{target.id}` "
                                  "outside a lock-guarded block")
        elif isinstance(target, ast.Subscript):
            base = target.value
            if (isinstance(base, ast.Name) and base.id in self.module_mutables
                    and self._unguarded(node)):
                self.report(node, f"writing into module-level mutable "
                                  f"`{base.id}` outside a lock-guarded block")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node, node.target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _MUTATORS):
            return
        base = func.value
        if (isinstance(base, ast.Name) and base.id in self.module_mutables
                and self._unguarded(node)):
            self.report(node, f"mutating module-level `{base.id}."
                              f"{func.attr}(...)` outside a lock-guarded "
                              "block")


# ---------------------------------------------------------------------------
# REP006 — error-swallowing exception handlers
# ---------------------------------------------------------------------------

def _swallows(body: List[ast.stmt]) -> bool:
    """True when a handler body does nothing with the error."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis):
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    code = "REP006"
    name = "swallowed-exception"
    rationale = ("executor and journal code must record failures, not hide "
                 "them; catch the narrowest exception (or use "
                 "contextlib.suppress for the expected one) and act on it")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare `except:` catches everything including "
                              "KeyboardInterrupt; name the exception")
            return
        names = []
        types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for type_node in types:
            name = dotted_name(type_node)
            if name is not None:
                names.append(name.split(".")[-1])
        if any(name in ("Exception", "BaseException") for name in names):
            if _swallows(node.body):
                self.report(node, "over-broad `except "
                                  f"{'/'.join(names)}` silently swallows "
                                  "the error; narrow it or record the "
                                  "failure")


# ---------------------------------------------------------------------------
# REP007 — broadcast-unsafe exact array equality in tests
# ---------------------------------------------------------------------------

class ArrayEqualityRule(Rule):
    code = "REP007"
    name = "array-float-eq"
    rationale = ("`(a == b).all()` broadcasts silently under shape "
                 "mismatch; np.array_equal states bit-identity intent and "
                 "checks shapes, np.allclose states numeric closeness")
    runs_on_source = False            # a tests-only rule

    @staticmethod
    def _is_exact_compare(node: ast.AST) -> bool:
        return (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq)))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # (a == b).all() / .any()
        if (isinstance(func, ast.Attribute)
                and func.attr in ("all", "any")
                and not node.args and not node.keywords
                and self._is_exact_compare(func.value)):
            self.report(node, f"exact array equality via `(... == ...)."
                              f"{func.attr}()`; use np.array_equal for "
                              "intentional bit-identity or np.allclose "
                              "for numeric closeness")
            return
        # np.all(a == b) / np.any(a == b)
        name = dotted_name(func)
        if (name in ("np.all", "np.any", "numpy.all", "numpy.any")
                and len(node.args) == 1
                and self._is_exact_compare(node.args[0])):
            self.report(node, f"exact array equality via `{name}(... == "
                              "...)`; use np.array_equal for intentional "
                              "bit-identity or np.allclose for numeric "
                              "closeness")


# the concurrency rules live in their own module but share this base
# class and catalog; imported at the bottom so `Rule` exists first
from repro.analysis.concurrency import (  # noqa: E402
    BlockingUnderLockRule,
    ConditionDisciplineRule,
    GuardedStateRule,
    LockOrderRule,
    ThreadDaemonRule,
)

#: the rule catalog, in code order
RULES: Tuple[Type[Rule], ...] = (
    GlobalRandomRule,
    WallClockRule,
    RawWriteRule,
    MutableDefaultRule,
    GlobalMutationRule,
    SwallowedExceptionRule,
    ArrayEqualityRule,
    GuardedStateRule,
    LockOrderRule,
    BlockingUnderLockRule,
    ThreadDaemonRule,
    ConditionDisciplineRule,
)

RULES_BY_CODE: Dict[str, Type[Rule]] = {rule.code: rule for rule in RULES}

#: every valid rule code, in order
RULE_CODES: Tuple[str, ...] = tuple(rule.code for rule in RULES)
