"""Finding reporters: text, machine-readable JSON, GitHub annotations."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES


def format_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: CODE message`` lines plus a per-code summary."""
    if not findings:
        return "repro check: no findings"
    lines: List[str] = [finding.describe() for finding in findings]
    by_code = Counter(finding.code for finding in findings)
    summary = ", ".join(f"{code} x{count}"
                        for code, count in sorted(by_code.items()))
    lines.append(f"repro check: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document (what CI archives as an artifact)."""
    payload = {
        "format": "repro.check_report",
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)


def _escape_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=)."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_message(value: str) -> str:
    """Escape a workflow-command *message* (after the ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def format_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions ``::warning`` workflow commands, one per finding.

    Emitted to a job's stdout these land as inline annotations on the
    PR diff; a trailing plain line summarizes for the raw log.
    """
    if not findings:
        return "repro check: no findings"
    lines = [
        f"::warning file={_escape_property(f.path)},line={f.line},"
        f"col={f.col + 1},title={_escape_property(f.code)}::"
        f"{_escape_message(f.message)}"
        for f in findings
    ]
    lines.append(f"repro check: {len(findings)} finding(s)")
    return "\n".join(lines)


def format_rule_catalog() -> str:
    """The ``--list-rules`` table: code, name, scope, rationale."""
    lines = []
    for rule in RULES:
        scope = ("tests" if not rule.runs_on_source
                 else "/".join(rule.scope_dirs) if rule.scope_dirs
                 else "src+tests" if rule.runs_on_tests else "src")
        lines.append(f"{rule.code}  {rule.name:<20s} [{scope}]")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
