"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES


def format_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: CODE message`` lines plus a per-code summary."""
    if not findings:
        return "repro check: no findings"
    lines: List[str] = [finding.describe() for finding in findings]
    by_code = Counter(finding.code for finding in findings)
    summary = ", ".join(f"{code} x{count}"
                        for code, count in sorted(by_code.items()))
    lines.append(f"repro check: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document (what CI archives as an artifact)."""
    payload = {
        "format": "repro.check_report",
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)


def format_rule_catalog() -> str:
    """The ``--list-rules`` table: code, name, scope, rationale."""
    lines = []
    for rule in RULES:
        scope = ("tests" if not rule.runs_on_source
                 else "/".join(rule.scope_dirs) if rule.scope_dirs
                 else "src+tests" if rule.runs_on_tests else "src")
        lines.append(f"{rule.code}  {rule.name:<20s} [{scope}]")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
