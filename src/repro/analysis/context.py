"""Per-file analysis context: parsed AST, source lines, structure queries.

One :class:`FileContext` is built per checked file and shared by every
rule.  It owns the queries rules keep needing — "what encloses this
node", "is this write inside a lock-guarded block", "which names did an
``atomic_path`` context bind" — so individual rules stay declarative.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePath
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

PathLike = Union[str, Path]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: substrings that mark a context-manager name as a concurrency guard
#: ("cond" subsumes "condition" and catches the idiomatic `self._cond`)
_LOCK_NAME_HINTS = ("lock", "mutex", "semaphore", "cond")


def _looks_lock_like(expr: ast.AST) -> bool:
    """Heuristic: does this ``with`` context expression guard concurrency?

    Matches dotted names whose components mention a lock (``_LOCK``,
    ``self._lock``, ``threading.RLock()``) and ``.acquire(...)``-style
    managers; anything else (``open``, ``tempfile``, arbitrary CMs) does
    not count as a guard.
    """
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            return True
        expr = func
    name = dotted_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _LOCK_NAME_HINTS)


def _lock_expr_name(expr: ast.AST) -> str:
    """The lock's dotted name for a lock-like ``with`` item.

    ``with self._lock:`` names ``self._lock``; the ``.acquire(...)``-style
    manager ``with lk.acquire():`` names the receiver ``lk``.
    """
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            return dotted_name(func.value) or "<lock>"
        expr = func
    return dotted_name(expr) or "<lock>"


#: ``# repro: noqa`` (all codes) or ``# repro: noqa[REP001,REP003]``
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9,\s]+)\])?")


def noqa_codes(line: str) -> Optional[Set[str]]:
    """Codes suppressed on this physical line (empty set = all codes)."""
    match = NOQA_PATTERN.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FileContext:
    """Everything the rules may ask about one source file."""

    def __init__(self, path: PathLike, source: str,
                 tree: Optional[ast.Module] = None):
        self.path = PurePath(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source,
                                                            filename=self.path)
        #: path components (directories + file name)
        self.segments: Tuple[str, ...] = PurePath(self.path).parts
        stem = PurePath(self.path).stem
        self.is_test = (stem.startswith("test_") or stem.endswith("_test")
                        or "tests" in self.segments[:-1]
                        or stem == "conftest")
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._global_decls: Dict[int, Set[str]] = {}

    # -- structure queries ---------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost def/lambda containing ``node`` (None at module scope)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None

    def inside_lock(self, node: ast.AST,
                    within: Optional[ast.AST] = None) -> bool:
        """True when a lock guard sits between ``node`` and ``within``.

        ``within`` bounds the search (typically the enclosing function);
        ancestors above it do not count.  Only context managers that look
        like concurrency guards count — ``with open(...)`` or
        ``with tempfile...`` blocks are not locks and must not sanction a
        shared-state write.  The explicit ``lk.acquire(...)`` +
        ``try: ... finally: lk.release()`` idiom counts too.
        """
        return bool(self.held_locks(node, within=within))

    def held_locks(self, node: ast.AST,
                   within: Optional[ast.AST] = None) -> List[str]:
        """Dotted names of lock guards held at ``node``, innermost first.

        Two idioms count: a lock-like ``with`` block between ``node`` and
        ``within``, and a ``try`` ancestor whose ``finally`` releases a
        lock-named receiver (``lk.acquire(...)`` … ``finally:
        lk.release()`` — the non-blocking/timeout acquire pattern where a
        ``with`` cannot express the conditional hold).
        """
        held: List[str] = []
        for ancestor in self.ancestors(node):
            if ancestor is within:
                break
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _looks_lock_like(item.context_expr):
                        held.append(_lock_expr_name(item.context_expr))
            elif isinstance(ancestor, ast.Try):
                held.extend(self._finally_released_locks(ancestor))
        return held

    def _finally_released_locks(self, try_node: ast.Try) -> List[str]:
        """Lock-named receivers of zero-arg ``.release()`` in the finally."""
        names: List[str] = []
        for statement in try_node.finalbody:
            for sub in ast.walk(statement):
                if not (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and not sub.args and not sub.keywords):
                    continue
                name = dotted_name(sub.func.value)
                if name is None:
                    continue
                lowered = name.lower()
                if any(hint in lowered for hint in _LOCK_NAME_HINTS):
                    names.append(name)
        return names

    def atomic_path_bindings(self, node: ast.AST) -> Set[str]:
        """Names bound by enclosing ``with atomic_path(...) as name`` items."""
        names: Set[str] = set()
        for ancestor in self.ancestors(node):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if not (isinstance(expr, ast.Call)
                        and (dotted_name(expr.func) or "").split(".")[-1]
                        == "atomic_path"):
                    continue
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
        return names

    def global_declarations(self, function: ast.AST) -> Set[str]:
        """Names a function declares ``global`` (nested defs excluded)."""
        cached = self._global_decls.get(id(function))
        if cached is not None:
            return cached
        names: Set[str] = set()
        body = getattr(function, "body", [])
        stack = list(body) if isinstance(body, list) else []
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue          # nested scope: its globals are its own
            if isinstance(node, ast.Global):
                names.update(node.names)
            stack.extend(ast.iter_child_nodes(node))
        self._global_decls[id(function)] = names
        return names

    def in_packages(self, names: Tuple[str, ...]) -> bool:
        """True when any *directory* component matches one of ``names``."""
        return any(segment in names for segment in self.segments[:-1])

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""
