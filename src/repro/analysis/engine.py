"""The rule engine: parse files, dispatch rules, honor suppressions.

The engine walks each file's AST exactly once.  Every active rule
(filtered by ``--select``/``--ignore`` and by the rule's own scope) gets
each node dispatched to its ``visit_<NodeType>`` handlers; findings on
lines carrying a ``# repro: noqa[REPxxx]`` (or blanket
``# repro: noqa``) comment are dropped before reporting.

A file that fails to parse yields a single ``REP000`` finding rather
than aborting the run — a syntax error in one file must not hide
findings in the rest of the tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, \
    Tuple, Type, Union

from repro.analysis.context import FileContext, NOQA_PATTERN, noqa_codes
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_CODES, RULES, Rule

PathLike = Union[str, Path]

#: ``# repro: noqa`` (all codes) or ``# repro: noqa[REP001,REP003]``
#: (kept as an alias: the pattern lives with the per-file helpers)
_NOQA_PATTERN = NOQA_PATTERN

#: code reported for unparseable files
PARSE_ERROR_CODE = "REP000"

#: directories never descended into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv",
                        "node_modules", ".eggs", "build", "dist"})


class UsageError(ValueError):
    """A bad engine invocation (unknown rule code, missing path)."""


def resolve_codes(spec: Optional[str], option: str) -> Optional[Set[str]]:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""
    if spec is None or spec == "":
        return None
    codes = {code.strip().upper() for code in spec.split(",") if code.strip()}
    unknown = codes - set(RULE_CODES)
    if unknown:
        raise UsageError(
            f"unknown rule code(s) for {option}: {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(RULE_CODES)})")
    return codes


_noqa_codes = noqa_codes


def _suppressed(finding: Finding, context: FileContext) -> bool:
    codes = noqa_codes(context.source_line(finding.line))
    if codes is None:
        return False
    return not codes or finding.code in codes


class RuleEngine:
    """Run a set of rules over source files and collect findings."""

    def __init__(self, select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None):
        selected = set(select) if select is not None else set(RULE_CODES)
        ignored = set(ignore) if ignore is not None else set()
        self.rules = tuple(rule for rule in RULES
                           if rule.code in selected
                           and rule.code not in ignored)

    # -- single-source entry points ------------------------------------
    def check_source(self, source: str, path: PathLike) -> List[Finding]:
        """Check one in-memory source blob (the unit the tests drive).

        Project-wide rules finalize over just this file, so single-file
        lock-order cycles still surface through this entry point.
        """
        findings, project = self._walk_file(source, path)
        findings.extend(_finalize_project(project))
        findings.sort(key=Finding.sort_key)
        return findings

    def check_file(self, path: PathLike) -> List[Finding]:
        source = Path(path).read_text(encoding="utf-8")
        return self.check_source(source, path)

    # -- tree walking --------------------------------------------------
    def check_paths(self, paths: Sequence[PathLike]) -> List[Finding]:
        """Check files and/or directory trees; findings in stable order.

        Per-file rules report as each file is walked; project-wide rules
        (REP009's lock-order graph) accumulate state across *every* file
        and finalize once at the end, so an AB edge in one module and a
        BA edge in another still close a reported cycle.
        """
        findings: List[Finding] = []
        project: List[Rule] = []
        for path in iter_python_files(paths):
            source = Path(path).read_text(encoding="utf-8")
            file_findings, file_project = self._walk_file(source, path)
            findings.extend(file_findings)
            project.extend(file_project)
        findings.extend(_finalize_project(project))
        findings.sort(key=Finding.sort_key)
        return findings

    # -- internals -----------------------------------------------------
    def _walk_file(self, source: str, path: PathLike
                   ) -> Tuple[List[Finding], List[Rule]]:
        """One file's walk: (per-file findings, project-wide instances)."""
        try:
            context = FileContext(path, source)
        except SyntaxError as error:
            line = error.lineno or 1
            return [Finding(
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
                path=Path(path).as_posix(), line=line,
                col=(error.offset or 1) - 1,
                text=(source.splitlines()[line - 1].strip()
                      if 0 < line <= len(source.splitlines()) else ""))], []
        active = [rule(context) for rule in self.rules
                  if rule.applies(context)]
        if not active:
            return [], []
        for rule in active:
            rule.begin_module()
        for node in ast.walk(context.tree):
            handler_name = "visit_" + type(node).__name__
            for rule in active:
                handler = getattr(rule, handler_name, None)
                if handler is not None:
                    handler(node)
        findings = [finding
                    for rule in active
                    for finding in rule.findings
                    if not _suppressed(finding, context)]
        return findings, [rule for rule in active if rule.project_wide]


def _finalize_project(instances: Sequence[Rule]) -> List[Finding]:
    """Group project-wide rule instances by class and finalize each."""
    by_class: Dict[Type[Rule], List[Rule]] = {}
    for instance in instances:
        by_class.setdefault(type(instance), []).append(instance)
    findings: List[Finding] = []
    for rule_class, group in by_class.items():
        findings.extend(rule_class.finalize_project(group))
    return findings


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in deterministic order."""
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise UsageError(f"path does not exist: {path}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def check_paths(paths: Sequence[PathLike],
                select: Optional[str] = None,
                ignore: Optional[str] = None) -> List[Finding]:
    """One-call façade: resolve code specs, build the engine, run it."""
    engine = RuleEngine(select=resolve_codes(select, "--select"),
                        ignore=resolve_codes(ignore, "--ignore"))
    return engine.check_paths(paths)
