"""Baseline files: let legacy findings ride while blocking new ones.

A baseline is a committed JSON multiset of ``(path, code, text)``
triples.  Matching deliberately ignores line numbers — editing code
*above* a legacy finding must not invalidate its baseline entry — but
includes the stripped source text, so changing the offending line itself
(or copying it somewhere new) surfaces the finding again.

Multiset semantics: a baseline entry absorbs at most one live finding,
so duplicating a baselined violation produces a fresh finding for the
copy.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple, Union

from repro.analysis.findings import Finding
from repro.resilience.atomic import atomic_write_text

PathLike = Union[str, Path]

_FORMAT = "repro.check_baseline"
_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be used (bad JSON, wrong format)."""


def _key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.path, finding.code, finding.text)


def load_baseline(path: PathLike) -> Counter:
    """Read a baseline into a ``Counter`` of ``(path, code, text)`` keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: "
                            f"{error}") from error
    if (not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
            or not isinstance(payload.get("findings"), list)):
        raise BaselineError(f"baseline {path} is not a {_FORMAT} document")
    entries = Counter()
    for row in payload["findings"]:
        if (not isinstance(row, dict)
                or not all(isinstance(row.get(key), str)
                           for key in ("path", "code", "text"))):
            raise BaselineError(f"baseline {path} has a malformed findings "
                                f"row: {row!r}")
        entries[(row["path"], row["code"], row["text"])] += 1
    return entries


def apply_baseline(findings: List[Finding],
                   baseline: Counter) -> List[Finding]:
    """Drop findings absorbed by the baseline (multiset subtraction)."""
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def write_baseline(path: PathLike, findings: List[Finding]) -> None:
    """Atomically (re)write a baseline absorbing ``findings``."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "findings": [{"path": f.path, "code": f.code, "text": f.text}
                     for f in sorted(findings, key=Finding.sort_key)],
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
