"""Seeded scenario schedules: spec + seed -> per-batch plans.

A :class:`ScenarioSchedule` realizes one :class:`~repro.scenarios.spec.
ScenarioSpec` under one seed into a deterministic, infinite sequence of
:class:`BatchPlan`s — for every batch index, which corruption at which
severity, whether adaptation may run, and (for ``imbalanced``) the
class-weight vector the stream samples labels from.

Determinism follows the :class:`~repro.robustness.faults.FaultSchedule`
discipline: stochastic decisions (Markov transitions) are drawn *in
batch order* from one seeded generator and memoized, so
``plan_for(index)`` returns the same plan no matter the query order or
how far the stream has run; per-batch randomness that must not shift
other batches (Dirichlet class weights) is drawn from a per-index child
generator via ``np.random.SeedSequence``.  The byte-identity tests in
``tests/test_scenarios`` pin exactly these properties — across runs,
across query orders, and across process-parallel workers.

:meth:`ScenarioSchedule.segments` groups a finite prefix of the plan
into contiguous *shift segments* — maximal runs of one
``(corruption, severity)`` phase, each stamped with its recurrence
visit ordinal — the unit the per-phase scorecard metrics
(:mod:`repro.scenarios.metrics`) aggregate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.scenarios.spec import ScenarioSpec, parse_scenario_spec

#: severity recorded for clean phases (clean has no severity level)
CLEAN_SEVERITY = 0


@dataclass(frozen=True)
class BatchPlan:
    """What one batch of a scenario stream looks like.

    ``class_weights`` is ``None`` except under ``imbalanced``, where it
    is the per-class sampling weight vector (a tuple, so plans stay
    hashable and comparable).  ``adapt`` is ``False`` only inside the
    frozen windows of a ``budgeted`` scenario.
    """

    index: int
    corruption: str
    severity: int
    adapt: bool = True
    class_weights: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class Segment:
    """One contiguous shift phase of a finite scenario prefix.

    ``visit`` counts recurrences: the ``visit``-th time (0-based) this
    exact ``(corruption, severity)`` phase has appeared in the stream —
    the handle the forgetting metric keys on.  ``start``/``end`` are
    batch indices, end-exclusive.
    """

    ordinal: int
    corruption: str
    severity: int
    start: int
    end: int
    visit: int

    @property
    def num_batches(self) -> int:
        return self.end - self.start


class ScenarioSchedule:
    """Deterministic realization of a scenario spec under one seed."""

    def __init__(self, spec: ScenarioSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self._rng = np.random.default_rng(
            np.random.SeedSequence((seed, 0)))
        self._decided: Dict[int, BatchPlan] = {}
        self._next_index = 0
        self._markov_state = 0
        if spec.kind == "markov":
            self._markov_state = int(self._rng.integers(len(spec.over)))

    @property
    def label(self) -> str:
        """The compact spec form — what scorecards/records are stamped with."""
        return self.spec.compact()

    def fingerprint(self) -> str:
        """Digest of (spec, seed): two schedules agree iff these match."""
        return f"{self.spec.fingerprint()}-{self.seed}"

    # -- per-batch plans ---------------------------------------------------

    def plan_for(self, batch_index: int) -> BatchPlan:
        """The plan for ``batch_index`` (memoized, drawn in order)."""
        if batch_index < 0:
            raise IndexError(f"batch index must be >= 0, got {batch_index}")
        while self._next_index <= batch_index:
            self._decided[self._next_index] = self._decide(self._next_index)
            self._next_index += 1
        return self._decided[batch_index]

    def plan(self, num_batches: int) -> List[BatchPlan]:
        """Plans for a finite stream prefix."""
        return [self.plan_for(index) for index in range(num_batches)]

    def _severity_for(self, corruption: str, severity: int) -> int:
        return CLEAN_SEVERITY if corruption == "clean" else severity

    def _decide(self, index: int) -> BatchPlan:
        spec = self.spec
        kind = spec.kind
        if kind == "markov":
            if index > 0 and self._rng.random() < spec.param("p"):
                # jump to a *different* state: offset in 1..len-1
                offset = int(self._rng.integers(1, len(spec.over)))
                self._markov_state = (self._markov_state + offset) \
                    % len(spec.over)
            corruption = spec.over[self._markov_state]
            return BatchPlan(index, corruption,
                             self._severity_for(corruption, spec.severity))
        if kind == "cyclic":
            dwell = int(spec.param("dwell"))
            corruption = spec.over[(index // dwell) % len(spec.over)]
            return BatchPlan(index, corruption,
                             self._severity_for(corruption, spec.severity))
        if kind == "ramp":
            dwell = int(spec.param("dwell"))
            rungs = _ramp_rungs(spec.severity)
            severity = rungs[(index // dwell) % len(rungs)]
            return BatchPlan(index, spec.over[0], severity)
        if kind == "imbalanced":
            corruption = spec.over[0]
            weights = self._class_weights(index)
            return BatchPlan(index, corruption,
                             self._severity_for(corruption, spec.severity),
                             class_weights=weights)
        # budgeted: adapt only in the first `budget` batches of each period
        corruption = spec.over[0]
        period = int(spec.param("period"))
        budget = int(spec.param("budget"))
        return BatchPlan(index, corruption,
                         self._severity_for(corruption, spec.severity),
                         adapt=(index % period) < budget)

    def _class_weights(self, index: int, num_classes: int = 10
                       ) -> Tuple[float, ...]:
        # per-index child generator: one batch's draw never shifts
        # another's, so plans are stable under any query order
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 2, index)))
        alpha = self.spec.param("alpha")
        weights = rng.dirichlet(np.full(num_classes, alpha))
        return tuple(float(w) for w in weights)

    # -- segmentation ------------------------------------------------------

    def segments(self, num_batches: int) -> List[Segment]:
        """Contiguous (corruption, severity) phases of a finite prefix."""
        plans = self.plan(num_batches)
        segments: List[Segment] = []
        visits: Dict[Tuple[str, int], int] = {}
        start = 0
        for index in range(1, num_batches + 1):
            if index < num_batches and (
                    plans[index].corruption == plans[start].corruption
                    and plans[index].severity == plans[start].severity):
                continue
            phase = (plans[start].corruption, plans[start].severity)
            visit = visits.get(phase, 0)
            visits[phase] = visit + 1
            segments.append(Segment(
                ordinal=len(segments), corruption=phase[0],
                severity=phase[1], start=start, end=index, visit=visit))
            start = index
        return segments


def _ramp_rungs(peak: int) -> Tuple[int, ...]:
    """Triangle severity wave 1 -> peak -> 2, repeating.

    The descending leg stops at 2 so the wrap back to 1 does not dwell
    twice at the bottom (for ``peak <= 2`` the wave is just the ascent).
    """
    up = tuple(range(1, peak + 1))
    down = tuple(range(peak - 1, 1, -1))
    return up + down


def as_schedule(spec: Union[str, ScenarioSpec, ScenarioSchedule],
                seed: int = 0) -> ScenarioSchedule:
    """Coerce a compact string / spec / schedule into a fresh schedule.

    Strings parse through :func:`~repro.scenarios.spec.
    parse_scenario_spec`; an existing schedule is rebuilt from its spec
    and the *given* seed so callers always get an unconsumed schedule.
    """
    if isinstance(spec, ScenarioSchedule):
        return ScenarioSchedule(spec.spec, seed=seed)
    if isinstance(spec, str):
        spec = parse_scenario_spec(spec)
    return ScenarioSchedule(spec, seed=seed)
