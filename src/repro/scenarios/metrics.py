"""Per-phase scorecard segmentation and the recurrence forgetting metric.

A whole-stream :class:`~repro.core.streaming.StreamScorecard` hides the
thing scenario streams exist to expose: *where* in the shift sequence
accuracy was lost and whether the guard ladder fired during a switch or
a dwell.  This module aggregates per-batch observations into one
:class:`SegmentCard` per contiguous shift phase (the
:class:`~repro.scenarios.schedule.Segment` structure of the schedule),
and computes the recurrence *forgetting* metric over them: when a
``cyclic`` scenario revisits a phase it has adapted to before, how much
worse is the revisit than the first encounter?  Positive forgetting
means the interleaved phases erased what the method had gained —
exactly the continual-adaptation failure mode BoTTA's scenario axis is
designed to surface.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Tuple

from repro.scenarios.schedule import Segment


@dataclass(frozen=True)
class BatchStats:
    """One processed batch's observations, before segmentation.

    Guard counters are *deltas* over this batch (the session exposes
    running totals; the harness differences them), so segment cards sum
    exactly to the whole-stream scorecard.
    """

    index: int
    frames: int
    correct: int
    rollbacks: int = 0
    degraded_batches: int = 0
    fallback_frames: int = 0
    adapted: bool = True


@dataclass(frozen=True)
class SegmentCard:
    """One shift phase's scorecard slice.

    The identity fields mirror :class:`~repro.scenarios.schedule.
    Segment`; the counters are sums of this phase's
    :class:`BatchStats`.  ``batches_adapted`` counts batches where
    adaptation actually ran (under ``budgeted`` a phase can be entirely
    frozen).
    """

    ordinal: int
    corruption: str
    severity: int
    start: int
    end: int
    visit: int
    frames: int
    correct: int
    rollbacks: int
    degraded_batches: int
    fallback_frames: int
    batches_adapted: int

    @property
    def num_batches(self) -> int:
        return self.end - self.start

    @property
    def error_pct(self) -> float:
        if self.frames == 0:
            return 0.0
        return 100.0 * (1.0 - self.correct / self.frames)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["error_pct"] = self.error_pct
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentCard":
        payload = dict(payload)
        payload.pop("error_pct", None)  # derived, recomputed on demand
        return cls(**payload)


def segment_cards(segments: Sequence[Segment],
                  stats: Sequence[BatchStats]) -> List[SegmentCard]:
    """Fold per-batch stats into one card per schedule segment.

    ``stats`` may cover fewer batches than the segments describe (a
    stream cut short still segments cleanly); a batch outside every
    segment is an error — it means the segmentation and the run
    disagree about the schedule.
    """
    by_index: Dict[int, BatchStats] = {s.index: s for s in stats}
    if len(by_index) != len(stats):
        raise ValueError("duplicate batch index in stats")
    cards: List[SegmentCard] = []
    covered = set()
    for segment in segments:
        frames = correct = rollbacks = degraded = fallback = adapted = 0
        for index in range(segment.start, segment.end):
            stat = by_index.get(index)
            if stat is None:
                continue
            covered.add(index)
            frames += stat.frames
            correct += stat.correct
            rollbacks += stat.rollbacks
            degraded += stat.degraded_batches
            fallback += stat.fallback_frames
            adapted += int(stat.adapted)
        cards.append(SegmentCard(
            ordinal=segment.ordinal, corruption=segment.corruption,
            severity=segment.severity, start=segment.start, end=segment.end,
            visit=segment.visit, frames=frames, correct=correct,
            rollbacks=rollbacks, degraded_batches=degraded,
            fallback_frames=fallback, batches_adapted=adapted))
    stray = set(by_index) - covered
    if stray:
        raise ValueError(f"batches outside every segment: {sorted(stray)}")
    return cards


def recurrence_forgetting(cards: Sequence[SegmentCard]) -> float:
    """Mean error increase on phase revisits vs. their first encounter.

    For every ``(corruption, severity)`` phase visited at least twice:
    ``mean(error over revisits) - error(first visit)``, averaged over
    such phases.  Positive = the method forgot; ~zero = it retained;
    negative = revisits still helped (continued adaptation).  ``nan``
    when the stream has no recurrence (nothing to forget).
    """
    first: Dict[Tuple[str, int], float] = {}
    revisits: Dict[Tuple[str, int], List[float]] = {}
    for card in sorted(cards, key=lambda c: c.ordinal):
        if card.frames == 0:
            continue
        phase = (card.corruption, card.severity)
        if card.visit == 0:
            first[phase] = card.error_pct
        else:
            revisits.setdefault(phase, []).append(card.error_pct)
    deltas = [sum(errors) / len(errors) - first[phase]
              for phase, errors in sorted(revisits.items())
              if phase in first]
    if not deltas:
        return math.nan
    return sum(deltas) / len(deltas)
