"""Scenario engine: continual, correlated, and recurring shift streams.

The study grid evaluates i.i.d. single-corruption batches; this package
generates *deployment-shaped* traffic — Markov-switching corruptions,
recurring cyclic shifts, severity ramps, class-imbalanced batches, and
budgeted adaptation windows — as seeded, fingerprinted schedules that
plug into the stream harness, the study runner, and the serve layer.

Layers (each importable on its own):

- :mod:`repro.scenarios.spec` — the frozen :class:`ScenarioSpec` and
  its compact string grammar (``markov:p=0.1@3``);
- :mod:`repro.scenarios.schedule` — :class:`ScenarioSchedule`, the
  seeded realization producing per-batch :class:`BatchPlan`s and
  :class:`Segment` structure;
- :mod:`repro.scenarios.stream` — :class:`ScenarioStream`, a dataset
  played through a schedule (drop-in batch source);
- :mod:`repro.scenarios.metrics` — per-phase :class:`SegmentCard`
  aggregation and the recurrence forgetting metric;
- :mod:`repro.scenarios.harness` — :func:`run_scenario_stream`, the
  end-to-end driver returning a :class:`ScenarioOutcome`.
"""

from repro.scenarios.harness import ScenarioOutcome, run_scenario_stream
from repro.scenarios.metrics import (
    BatchStats,
    SegmentCard,
    recurrence_forgetting,
    segment_cards,
)
from repro.scenarios.schedule import (
    BatchPlan,
    ScenarioSchedule,
    Segment,
    as_schedule,
)
from repro.scenarios.spec import (
    KIND_PARAMS,
    SCENARIO_KINDS,
    SWITCHING_KINDS,
    ScenarioSpec,
    parse_scenario_spec,
)
from repro.scenarios.stream import ScenarioStream

__all__ = [
    "BatchPlan",
    "BatchStats",
    "KIND_PARAMS",
    "SCENARIO_KINDS",
    "SWITCHING_KINDS",
    "ScenarioOutcome",
    "ScenarioSchedule",
    "ScenarioSpec",
    "ScenarioStream",
    "Segment",
    "SegmentCard",
    "as_schedule",
    "parse_scenario_spec",
    "recurrence_forgetting",
    "run_scenario_stream",
    "segment_cards",
]
