"""Scenario specifications: deployment-shaped shift streams, as data.

The study grid evaluates i.i.d. single-corruption streams — every batch
drawn from one corruption at one severity.  Real edge deployments see
*temporally structured* shift: weather that switches, recurs, and ramps;
class mixes that skew; adaptation budgets that gate when updates may
run at all (the scenario axis BoTTA defines for on-device TTA
benchmarking).  A :class:`ScenarioSpec` freezes one such structure as a
small, fingerprintable value object, parsed from the same compact CLI
grammar style as :class:`~repro.robustness.faults.FaultSpec`:

``kind[:key=value[+key=value...]][@severity]``

- ``markov:p=0.1@3`` — Markov switching over the corruption palette
  with per-batch switch probability 0.1, severity 3;
- ``cyclic:dwell=4`` — recurring shifts: the palette cycles in order,
  ``dwell`` batches per corruption, wrapping forever (recurrence);
- ``ramp:dwell=2+over=fog@4`` — severity sweep: a triangle wave
  1 → peak → 1 over one corruption, ``dwell`` batches per rung, with
  ``@severity`` as the peak;
- ``imbalanced:alpha=0.3`` — class-skewed batches: per-batch class
  weights drawn from a Dirichlet with concentration ``alpha`` (smaller
  = more skewed), over one fixed corruption;
- ``budgeted:budget=2+period=8`` — limited-sample adaptation windows:
  adaptation runs for the first ``budget`` batches of every ``period``
  batches and is frozen in between (inference-only service).

``over=`` restricts the corruption palette (``|``-separated names,
``clean`` allowed); the switching kinds default to the full taxonomy,
the single-corruption kinds to ``gaussian_noise``.

Specs are *canonical*: parameters are normalized (defaults filled,
sorted), so ``parse(spec.compact()) == spec`` for every spec and the
:meth:`~ScenarioSpec.fingerprint` is stable across processes — the
property the resume/interop proofs in ``tests/test_scenarios`` pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.data.corruptions import CORRUPTION_NAMES

#: every scenario kind, in taxonomy order
SCENARIO_KINDS = ("markov", "cyclic", "ramp", "imbalanced", "budgeted")

#: kinds that schedule more than one corruption (palette defaults to the
#: full taxonomy); the rest run one corruption (default gaussian_noise)
SWITCHING_KINDS = frozenset({"markov", "cyclic"})

#: per-kind parameter names and default values
KIND_PARAMS: Dict[str, Dict[str, float]] = {
    "markov": {"p": 0.1},
    "cyclic": {"dwell": 4.0},
    "ramp": {"dwell": 2.0},
    "imbalanced": {"alpha": 0.3},
    "budgeted": {"budget": 2.0, "period": 8.0},
}

#: parameters that must hold integral values
_INTEGRAL_PARAMS = frozenset({"dwell", "budget", "period"})

_DEFAULT_SEVERITY = 5


def _default_over(kind: str) -> Tuple[str, ...]:
    if kind in SWITCHING_KINDS:
        return tuple(CORRUPTION_NAMES)
    return ("gaussian_noise",)


def _format_value(value: float) -> str:
    """Shortest round-tripping text for a parameter value."""
    if value == int(value):
        return str(int(value))
    return repr(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """One frozen, fingerprintable shift-stream structure.

    Construction normalizes the spec to canonical form: the palette
    (``over``) defaults by kind, ``params`` accepts a dict or item
    tuple and is stored as a sorted tuple with every kind parameter
    present (defaults filled), and everything is validated — an invalid
    spec cannot exist.
    """

    kind: str
    over: Tuple[str, ...] = ()
    severity: int = _DEFAULT_SEVERITY
    params: Tuple[Tuple[str, float], ...] = field(default=())

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; "
                             f"choose from {SCENARIO_KINDS}")
        object.__setattr__(self, "over",
                           tuple(self.over) or _default_over(self.kind))
        given = dict(self.params) if not isinstance(self.params, dict) \
            else dict(self.params)
        defaults = KIND_PARAMS[self.kind]
        unknown = set(given) - set(defaults)
        if unknown:
            raise ValueError(
                f"{self.kind} does not take parameter(s) "
                f"{sorted(unknown)}; valid: {sorted(defaults)}")
        merged = {key: float(given.get(key, default))
                  for key, default in defaults.items()}
        object.__setattr__(self, "params",
                           tuple(sorted(merged.items())))
        self._validate(merged)

    def _validate(self, params: Dict[str, float]) -> None:
        if self.severity not in (1, 2, 3, 4, 5):
            raise ValueError(f"severity must be in 1..5, got {self.severity}")
        valid_names = set(CORRUPTION_NAMES) | {"clean"}
        bad = [name for name in self.over if name not in valid_names]
        if bad:
            raise ValueError(f"unknown corruption(s) in palette: {bad}")
        if len(set(self.over)) != len(self.over):
            raise ValueError("palette must not repeat corruptions")
        if self.kind == "markov" and len(self.over) < 2:
            raise ValueError("markov needs a palette of >= 2 corruptions")
        if self.kind not in SWITCHING_KINDS and len(self.over) != 1:
            raise ValueError(
                f"{self.kind} runs exactly one corruption; got "
                f"{len(self.over)} in the palette")
        if self.kind == "ramp" and self.over[0] == "clean":
            raise ValueError("ramp sweeps severity; 'clean' has none")
        for key, value in params.items():
            if key in _INTEGRAL_PARAMS and value != int(value):
                raise ValueError(f"{key} must be an integer, got {value}")
        if self.kind == "markov" and not 0.0 < params["p"] <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {params['p']}")
        if self.kind in ("cyclic", "ramp") and params["dwell"] < 1:
            raise ValueError(f"dwell must be >= 1, got {params['dwell']}")
        if self.kind == "imbalanced" and params["alpha"] <= 0.0:
            raise ValueError(f"alpha must be positive, got {params['alpha']}")
        if self.kind == "budgeted":
            if params["period"] < 1:
                raise ValueError(
                    f"period must be >= 1, got {params['period']}")
            if not 1 <= params["budget"] <= params["period"]:
                raise ValueError(
                    f"budget must be in 1..period, got "
                    f"budget={params['budget']} period={params['period']}")

    # -- accessors ---------------------------------------------------------

    def param(self, key: str) -> float:
        """One parameter's value (kind defaults are always present)."""
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(f"{self.kind} has no parameter {key!r}")

    # -- string form -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ScenarioSpec":
        """Parse the compact grammar (see the module docstring)."""
        text = text.strip()
        if not text:
            raise ValueError("empty scenario specification")
        severity = _DEFAULT_SEVERITY
        if "@" in text:
            text, _, severity_text = text.rpartition("@")
            try:
                severity = int(severity_text)
            except ValueError:
                raise ValueError(
                    f"severity after '@' must be an integer, got "
                    f"{severity_text!r}") from None
        kind, _, params_text = text.partition(":")
        over: Tuple[str, ...] = ()
        params: Dict[str, float] = {}
        if params_text:
            for part in params_text.split("+"):
                key, sep, value = part.partition("=")
                if not sep or not key or not value:
                    raise ValueError(
                        f"bad scenario parameter {part!r}: expected "
                        "key=value ('+'-separated)")
                if key == "over":
                    over = tuple(name for name in value.split("|") if name)
                    if not over:
                        raise ValueError("empty 'over' palette")
                    continue
                try:
                    params[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"parameter {key!r} must be numeric, got "
                        f"{value!r}") from None
        return cls(kind=kind, over=over, severity=severity, params=params)

    def compact(self) -> str:
        """Canonical compact form; ``parse(compact()) == self``.

        Parameters and the palette are emitted only when they differ
        from the kind's defaults, so the common specs stay short
        (``"markov"``, ``"cyclic:dwell=2@3"``).
        """
        defaults = KIND_PARAMS[self.kind]
        parts = [f"{key}={_format_value(value)}"
                 for key, value in self.params if value != defaults[key]]
        if self.over != _default_over(self.kind):
            parts.append("over=" + "|".join(self.over))
        text = self.kind
        if parts:
            text += ":" + "+".join(parts)
        if self.severity != _DEFAULT_SEVERITY:
            text += f"@{self.severity}"
        return text

    def fingerprint(self) -> str:
        """Stable digest of the canonical spec (stable across processes)."""
        payload = {
            "format": "repro.scenario_spec",
            "kind": self.kind,
            "over": list(self.over),
            "severity": self.severity,
            "params": {key: value for key, value in self.params},
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def __str__(self) -> str:
        return self.compact()


def parse_scenario_spec(text: str) -> ScenarioSpec:
    """Parse a compact scenario-spec string (CLI ``--scenario``)."""
    return ScenarioSpec.parse(text)
