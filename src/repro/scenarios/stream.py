"""Scenario streams: a dataset played through a scenario schedule.

:class:`ScenarioStream` is the scenario-shaped counterpart of
:class:`~repro.data.stream.CorruptionStream`: instead of one corruption
precomputed over the whole split, every batch is corrupted *on demand*
according to its :class:`~repro.scenarios.schedule.BatchPlan` — so a
`markov` stream really switches corruption mid-stream, a `ramp` stream
really sweeps severity, and an `imbalanced` stream really skews its
label mix per batch.

Determinism contract (pinned by ``tests/test_scenarios``): every batch
is a pure function of ``(dataset, spec, seed, batch_index,
batch_size)``.  Batch composition uses sequential wraparound windows
(or seeded class-weighted sampling under ``imbalanced``), and
per-batch corruption noise comes from a ``SeedSequence((seed, 1,
index))`` child — so batch 7 is byte-identical whether the stream is
consumed serially, re-created in another process, or queried out of
order by parallel workers.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.data.corruptions import corrupt_batch
from repro.data.stream import weighted_batch_indices
from repro.data.synthetic import SynthCIFAR
from repro.scenarios.schedule import BatchPlan, ScenarioSchedule, as_schedule
from repro.scenarios.spec import ScenarioSpec


class ScenarioStream:
    """A finite dataset served as a scenario-scheduled batch stream.

    The stream wraps around the dataset, so any number of batches can
    be drawn from a small split; ``num_batches`` reports the natural
    one-epoch length (what the study runner uses), matching
    ``CorruptionStream.num_batches`` so the two are interchangeable as
    batch sources.
    """

    def __init__(self, dataset: SynthCIFAR, schedule: ScenarioSchedule):
        if len(dataset) == 0:
            raise ValueError("scenario stream needs a non-empty dataset")
        self.dataset = dataset
        self.schedule = schedule

    @classmethod
    def from_dataset(cls, dataset: SynthCIFAR,
                     scenario: Union[str, ScenarioSpec, ScenarioSchedule],
                     seed: int = 0) -> "ScenarioStream":
        """Build from a compact spec string / spec / schedule."""
        return cls(dataset, as_schedule(scenario, seed=seed))

    # -- identity ----------------------------------------------------------

    @property
    def spec(self) -> ScenarioSpec:
        return self.schedule.spec

    @property
    def label(self) -> str:
        """Compact spec form — the `scenario` stamp on records/scorecards."""
        return self.schedule.label

    @property
    def seed(self) -> int:
        return self.schedule.seed

    def __len__(self) -> int:
        return len(self.dataset)

    # -- batches -----------------------------------------------------------

    def plan_for(self, index: int) -> BatchPlan:
        return self.schedule.plan_for(index)

    def _batch_indices(self, index: int, batch_size: int,
                       plan: BatchPlan) -> np.ndarray:
        total = len(self.dataset)
        if plan.class_weights is None:
            return (index * batch_size + np.arange(batch_size)) % total
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 3, index)))
        return weighted_batch_indices(self.dataset.labels, plan.class_weights,
                                      batch_size, rng)

    def batch_at(self, index: int, batch_size: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``index``-th batch — pure in (stream identity, index)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        plan = self.plan_for(index)
        rows = self._batch_indices(index, batch_size, plan)
        images = self.dataset.images[rows]
        labels = self.dataset.labels[rows].copy()
        if plan.corruption != "clean":
            noise_seed = int(np.random.SeedSequence(
                (self.seed, 1, index)).generate_state(1)[0])
            images = corrupt_batch(images, plan.corruption,
                                   severity=plan.severity, seed=noise_seed)
        else:
            images = images.copy()
        return images, labels

    def batches(self, batch_size: int, num_batches: Optional[int] = None
                ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream batches in order (one dataset epoch by default)."""
        if num_batches is None:
            num_batches = self.num_batches(batch_size)
        for index in range(num_batches):
            yield self.batch_at(index, batch_size)

    def num_batches(self, batch_size: int) -> int:
        return len(self.dataset) // batch_size
