"""End-to-end scenario driver: one stream, one session, segmented outcome.

:func:`run_scenario_stream` is the scenario counterpart of
:func:`~repro.robustness.harness.run_guarded_stream`: it plays a
:class:`~repro.scenarios.stream.ScenarioStream` through a real
adaptation method — optionally fault-injected, optionally guarded —
but additionally honors the schedule's per-batch ``adapt`` flag
(``budgeted`` freezing) and differences the session's counters around
every batch, so the outcome carries one
:class:`~repro.scenarios.metrics.SegmentCard` per shift phase plus the
recurrence forgetting metric, not just a whole-stream scorecard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.streaming import StreamScorecard
from repro.robustness.faults import FaultInjector, FaultSpec, parse_fault_specs
from repro.robustness.guard import GuardConfig
from repro.scenarios.metrics import (
    BatchStats,
    SegmentCard,
    recurrence_forgetting,
    segment_cards,
)
from repro.scenarios.stream import ScenarioStream


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one scenario run produced: whole-stream card + per-phase slices."""

    scenario: str
    seed: int
    scorecard: StreamScorecard
    segments: Tuple[SegmentCard, ...] = field(default=())

    @property
    def forgetting(self) -> float:
        """Recurrence forgetting over this run's segments (nan if none)."""
        return recurrence_forgetting(self.segments)

    def to_dict(self) -> dict:
        from dataclasses import asdict
        forgetting = self.forgetting
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "scorecard": asdict(self.scorecard),
            "segments": [card.to_dict() for card in self.segments],
            "forgetting": None if math.isnan(forgetting) else forgetting,
        }


def run_scenario_stream(model, method, stream: ScenarioStream, *,
                        batch_size: int = 16,
                        num_batches: Optional[int] = None,
                        guard: Union[bool, GuardConfig] = True,
                        faults: Union[None, str, Sequence[FaultSpec]] = None,
                        seed: int = 0,
                        fps: Optional[float] = None,
                        restore: str = "on_error") -> ScenarioOutcome:
    """Execute a scenario stream for real and segment the outcome.

    Parameters mirror :func:`~repro.robustness.harness.
    run_guarded_stream`; ``num_batches`` defaults to one dataset epoch.
    ``seed`` seeds the *fault* schedule only — the scenario's own
    randomness is fixed by the stream's schedule seed, so faults can be
    re-rolled without moving the shift sequence.

    ``restore`` is the session teardown policy: ``"on_error"`` (the
    default, deployment semantics — the model stays adapted on clean
    exit) or ``"always"`` (episodic evaluation, the study runner's
    contract).
    """
    # lazy for the same reason as the robustness harness: repro.serve
    # imports the guard layer, so a module-level import would cycle
    from repro.serve.session import AdaptationSession

    if num_batches is None:
        num_batches = stream.num_batches(batch_size)
    if num_batches <= 0:
        raise ValueError(f"num_batches must be positive, got {num_batches}")

    injector = None
    batches = stream.batches(batch_size, num_batches)
    if faults is not None:
        specs = parse_fault_specs(faults) if isinstance(faults, str) \
            else tuple(faults)
        injector = FaultInjector(specs, seed=seed)
        batches = injector.inject(batches)

    stats: List[BatchStats] = []
    session = AdaptationSession(model, method, guard=guard, fps=fps,
                                restore=restore)
    session.scenario = stream.label
    with session:
        for index, (images, labels) in enumerate(batches):
            plan = stream.plan_for(index)
            before = _counters(session)
            session.process_batch(images, labels, adapt=plan.adapt)
            after = _counters(session)
            stats.append(BatchStats(
                index=index,
                frames=after[0] - before[0],
                correct=after[1] - before[1],
                rollbacks=after[2] - before[2],
                degraded_batches=after[3] - before[3],
                fallback_frames=after[4] - before[4],
                adapted=plan.adapt))
        session.faults_injected = injector.faults_injected if injector else 0
    segments = stream.schedule.segments(num_batches)
    return ScenarioOutcome(
        scenario=stream.label,
        seed=stream.seed,
        scorecard=session.scorecard(),
        segments=tuple(segment_cards(segments, stats)))


def _counters(session) -> Tuple[int, int, int, int, int]:
    """Running totals to difference per batch (guard counters live on
    the runner until close; read them through it)."""
    runner = session.runner
    return (session.frames_processed,
            session.frames_correct,
            int(getattr(runner, "rollbacks", 0)),
            int(getattr(runner, "degraded_batches", 0)),
            int(getattr(runner, "fallback_frames", 0)))
