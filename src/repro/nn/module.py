"""Module base class: parameter registry, buffers, train/eval state."""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


@dataclass
class TraceRecord:
    """One leaf-module invocation captured by :func:`trace_calls`."""

    module: "Module"
    input_shape: Optional[Tuple[int, ...]]
    output_shape: Tuple[int, ...]
    duration_s: float = 0.0


# Per-thread trace stacks, mirroring use_backend()/no_grad(): concurrent
# summary builds (the grid summary cache races them deliberately) must
# each observe only their own trace.
_TRACE_TLS = threading.local()


def _trace_stack() -> List[List[TraceRecord]]:
    stack = getattr(_TRACE_TLS, "stack", None)
    if stack is None:
        stack = []
        _TRACE_TLS.stack = stack
    return stack


def _active_trace() -> Optional[List[TraceRecord]]:
    stack = _trace_stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def trace_calls():
    """Record every leaf-module call inside the block.

    Yields the list that will be filled with :class:`TraceRecord` entries
    in execution order — the raw material for the model summaries
    (:mod:`repro.models.summary`) and the op-level profiler
    (:mod:`repro.profiling`).  The stack is thread-local, so traces on
    one thread are invisible to models running on another.
    """
    records: List[TraceRecord] = []
    stack = _trace_stack()
    stack.append(records)
    try:
        yield records
    finally:
        stack.pop()


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable parameter.

    Parameters default to ``requires_grad=True``; adaptation algorithms
    selectively freeze them (BN-Opt freezes everything except BN affine
    parameters, exactly as TENT does in PyTorch).
    """

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Assigning a :class:`Parameter`, a :class:`Module`, or calling
    :meth:`register_buffer` records the child in insertion order so that
    ``named_parameters`` / ``state_dict`` walk the tree deterministically.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. BN running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer in place (keeps registry coherent)."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for param_name, param in module._parameters.items():
                full = f"{module_name}.{param_name}" if module_name else param_name
                yield full, param

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for buffer_name in module._buffers:
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                yield full, module._buffers[buffer_name]

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively (BN switches statistics source)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool) -> "Module":
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name -> array snapshot of parameters and buffers (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                buffer_owners[full] = (module, buffer_name)
        expected = set(params) | set(buffer_owners)
        provided = set(state)
        if expected != provided:
            missing = sorted(expected - provided)
            unexpected = sorted(provided - expected)
            raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}")
                params[name].data = value.astype(np.float32).copy()
            else:
                owner, buffer_name = buffer_owners[name]
                owner.set_buffer(buffer_name, value.copy())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        trace = _active_trace()
        if trace is None:
            return self.forward(*args, **kwargs)
        start = time.perf_counter()
        output = self.forward(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if not self._modules:
            # Only leaf modules are recorded: composites would double count.
            input_shape = args[0].shape if args and isinstance(args[0], Tensor) else None
            trace.append(TraceRecord(module=self, input_shape=input_shape,
                                     output_shape=output.shape,
                                     duration_s=elapsed))
        return output

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(p.data.size for p in self.parameters())

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
            self._order.append(str(i))

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x
