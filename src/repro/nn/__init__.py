"""Neural-network module system built on :mod:`repro.tensor`.

Mirrors the subset of ``torch.nn`` the paper's experiments rely on:
module tree with named parameters/buffers, ``train()``/``eval()`` modes
(which switch :class:`BatchNorm2d` between batch and running statistics —
the exact switch BN-Norm and BN-Opt exploit), convolution / linear / BN /
activation / pooling layers, standard initializers, and SGD / Adam
optimizers.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Optimizer",
    "SGD",
    "Adam",
]
