"""Optimizers: SGD (with momentum / weight decay) and Adam.

Adam is the optimizer the paper's BN-Opt uses for its single
entropy-minimization backprop step; SGD is used by the offline robust
pre-training pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Bytes of optimizer state (for the device memory model)."""
        return 0

    def state_dict(self) -> dict:
        """Internal state as plain arrays, in parameter-list order.

        Together with :meth:`load_state_dict` this makes an optimizer
        checkpointable mid-stream: restoring the state onto a freshly
        built optimizer over the *same parameter list* resumes stepping
        bit-identically (the serve layer's session checkpoints rely on
        this).  Parameters that have never been stepped are represented
        as ``None``.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this optimizer."""
        if state:
            raise ValueError(f"{type(self).__name__} has no state to load")

    def _per_param(self, buffers: Dict[int, np.ndarray]
                   ) -> List[Optional[np.ndarray]]:
        return [buffers.get(id(param)) for param in self.params]

    def _load_per_param(self, buffers: Dict[int, np.ndarray],
                        values: List[Optional[np.ndarray]]) -> None:
        if len(values) != len(self.params):
            raise ValueError(
                f"state covers {len(values)} parameters; optimizer "
                f"has {len(self.params)}")
        buffers.clear()
        for param, value in zip(self.params, values):
            if value is not None:
                buffers[id(param)] = np.array(value, dtype=param.data.dtype)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel *= self.momentum
                vel += grad
                self._velocity[id(param)] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data -= self.lr * grad

    def state_bytes(self) -> int:
        if not self.momentum:
            return 0
        return sum(p.data.nbytes for p in self.params)

    def state_dict(self) -> dict:
        return {"velocity": self._per_param(self._velocity)}

    def load_state_dict(self, state: dict) -> None:
        self._load_per_param(self._velocity, state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction, matching torch.optim.Adam."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(id(param), np.zeros_like(param.data))
            v = self._v.setdefault(id(param), np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_bytes(self) -> int:
        # Two moment buffers per parameter.
        return 2 * sum(p.data.nbytes for p in self.params)

    def state_dict(self) -> dict:
        return {"t": self._t,
                "m": self._per_param(self._m),
                "v": self._per_param(self._v)}

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self._load_per_param(self._m, state["m"])
        self._load_per_param(self._v, state["v"])
