"""Standard layers: Conv2d, Linear, BatchNorm2d, activations, pooling.

All heavy layers execute through the active execution backend
(:mod:`repro.engine`): ``Conv2d`` and the pooling layers via
:mod:`repro.tensor.conv`, ``Linear`` via ``Tensor.matmul``, and
``BatchNorm2d``'s train-mode statistics via
:func:`repro.tensor.functional.batch_norm_train`.  Wrapping a forward
(or a whole adaptation stream) in ``repro.engine.use_backend(...)``
therefore swaps the kernels for every layer below this module without
any layer-level configuration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.init import kaiming_normal, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.tensor import conv as conv_ops
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class Conv2d(Module):
    """2-D convolution over NCHW input.

    Matches ``torch.nn.Conv2d`` semantics for the features used in the
    paper's models: square/rect kernels, stride, symmetric zero padding,
    groups (including depthwise), optional bias (the ResNet-family models
    use ``bias=False`` because BN follows every conv).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, groups: int = 1, bias: bool = True):
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, *kernel_size)
        self.weight = Parameter(kaiming_normal(shape))
        self.bias: Optional[Parameter]
        if bias:
            fan_in = (in_channels // groups) * kernel_size[0] * kernel_size[1]
            self.bias = Parameter(uniform_fan_in((out_channels,), fan_in))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.conv2d(x, self.weight, self.bias,
                               stride=self.stride, padding=self.padding,
                               groups=self.groups)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}, groups={self.groups})")


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b`` over (N, in_features)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_normal((out_features, in_features)))
        self.bias = Parameter(uniform_fan_in((out_features,), in_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW input.

    In ``train`` mode the layer normalizes with the statistics of the
    current batch and updates exponential-moving-average running buffers
    with ``momentum`` — this is the behaviour BN-Norm and BN-Opt switch on
    at test time.  In ``eval`` mode it uses the frozen running statistics
    (No-Adapt).  ``gamma``/``beta`` are the transformation parameters the
    paper's BN-Opt optimizes by entropy minimization (2 per channel, hence
    the paper's "BN parameter" counts: 7808 / 5408 / 25216 / 34112).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))   # gamma
        self.bias = Parameter(np.zeros(num_features))    # beta
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        # Count of batches seen while adapting; exposed for diagnostics.
        self.batches_tracked = 0

    def reset_running_stats(self) -> None:
        """Restore the buffers to their initial (identity) state."""
        self.set_buffer("running_mean", np.zeros(self.num_features))
        self.set_buffer("running_var", np.ones(self.num_features))
        self.batches_tracked = 0

    def forward(self, x: Tensor) -> Tensor:
        if x.data.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got {x.data.shape}")
        if x.data.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d({self.num_features}) got {x.data.shape[1]} channels")
        if self.training:
            out, batch_mean, batch_var = F.batch_norm_train(
                x, self.weight, self.bias, eps=self.eps)
            m = self.momentum
            self.running_mean *= (1.0 - m)
            self.running_mean += m * batch_mean.astype(np.float32)
            self.running_var *= (1.0 - m)
            self.running_var += m * batch_var.astype(np.float32)
            self.batches_tracked += 1
            return out
        return F.batch_norm_eval(x, self.weight, self.bias,
                                 self.running_mean, self.running_var, eps=self.eps)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNetV2's activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)


class Identity(Module):
    """Pass-through module (used for parameter-free shortcuts)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to 1x1, squeezed to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.global_avg_pool2d(x)
