"""Weight initializers (seedable, numpy-based)."""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

_rng = np.random.default_rng(0)
_RNG_LOCK = threading.Lock()


def seed(value: int) -> None:
    """Re-seed the global initializer RNG (for reproducible model builds)."""
    global _rng
    with _RNG_LOCK:
        _rng = np.random.default_rng(value)


def _fan_in(shape: Tuple[int, ...]) -> int:
    if len(shape) == 2:          # Linear: (out, in)
        return shape[1]
    if len(shape) == 4:          # Conv: (out, in/g, kh, kw)
        return shape[1] * shape[2] * shape[3]
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...]) -> np.ndarray:
    """He-normal initialization (gain for ReLU)."""
    std = np.sqrt(2.0 / _fan_in(shape))
    return (_rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in = _fan_in(shape)
    fan_out = shape[0] if len(shape) == 2 else shape[0] * shape[2] * shape[3]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng.uniform(-limit, limit, size=shape).astype(np.float32)


def uniform_fan_in(shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
    """PyTorch-style bias init: uniform in +-1/sqrt(fan_in)."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)
