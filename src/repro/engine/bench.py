"""Engine micro-benchmark: conv forward/backward and one BN-Opt step.

``python -m repro bench`` times the leaf kernels the paper's latency
breakdowns are made of, once per execution backend, and writes the
results to ``BENCH_engine.json`` so successive PRs accumulate a
comparable perf trajectory.  Three workloads:

- ``conv_forward`` — a representative mid-network convolution (3x3,
  stride 1, pad 1) under ``no_grad``, the shape class that dominates
  every forward-time figure (Figs. 3/6/9);
- ``conv_backward`` — the same convolution's input+weight gradient,
  the bulk of BN-Opt's adaptation overhead (Figs. 4/7/10);
- ``bn_opt_step`` — one full TENT step (forward with BN statistics
  recompute, entropy backward, Adam update on gamma/beta) on a small
  conv-BN stack, the paper's end-to-end unit of adaptation work.

Timings are best-of-``repeats`` wall clock (median is also recorded);
the arena's hit-rate over the measured iterations is reported per
backend.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine import Backend, create_backend, use_backend

DEFAULT_BENCH_PATH = "BENCH_engine.json"

#: schema version for BENCH_engine.json (bump on incompatible change)
BENCH_FORMAT_VERSION = 1


def _time(fn: Callable[[], None], repeats: int, warmup: int = 1) -> Dict[str, float]:
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return {
        "best_s": samples[0],
        "median_s": samples[len(samples) // 2],
        "repeats": repeats,
    }


def _conv_workload(batch: int, channels: int, size: int, seed: int):
    from repro.tensor.tensor import Tensor
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal(
        (batch, channels, size, size)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal(
        (channels * 2, channels, 3, 3)).astype(np.float32) * 0.1,
        requires_grad=True)
    return x, w


def _bench_conv(backend: Backend, batch: int, channels: int, size: int,
                repeats: int, seed: int) -> Dict[str, Dict[str, float]]:
    from repro.tensor import no_grad
    from repro.tensor.conv import conv2d
    x, w = _conv_workload(batch, channels, size, seed)

    def forward() -> None:
        with no_grad():
            conv2d(x, w, stride=1, padding=1)

    def forward_backward() -> None:
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=1, padding=1)
        out.backward(np.ones_like(out.data))

    with use_backend(backend):
        fw = _time(forward, repeats)
        bw = _time(forward_backward, repeats)
    return {"conv_forward": fw, "conv_backward": bw}


def _bench_bn_opt_step(backend: Backend, batch: int, repeats: int,
                       seed: int) -> Dict[str, float]:
    from repro import nn
    from repro.adapt.bn_opt import BNOpt
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False), nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.Conv2d(16, 32, 3, stride=2, padding=1, bias=False),
        nn.BatchNorm2d(32), nn.ReLU(),
        nn.GlobalAvgPool2d(), nn.Linear(32, 10))
    images = rng.standard_normal((batch, 3, 16, 16)).astype(np.float32)
    method = BNOpt(lr=1e-3)

    def step() -> None:
        method.prepare(model)
        method.forward(images)

    with use_backend(backend):
        return _time(step, repeats)


def run_engine_bench(backends: Sequence[str] = ("numpy", "threaded"),
                     threads: int = 0,
                     batch: int = 64,
                     channels: int = 16,
                     size: int = 16,
                     repeats: int = 5,
                     seed: int = 0) -> dict:
    """Benchmark every named backend; return the BENCH_engine document."""
    results: Dict[str, dict] = {}
    for name in backends:
        backend = create_backend(name, threads=threads)
        try:
            entry: dict = dict(_bench_conv(backend, batch, channels, size,
                                           repeats, seed))
            entry["bn_opt_step"] = _bench_bn_opt_step(backend, batch,
                                                      repeats, seed)
            stats = backend.arena_stats()
            entry["arena"] = {
                "requests": stats.requests,
                "hits": stats.hits,
                "hit_rate": stats.hit_rate,
                "bytes_allocated": stats.bytes_allocated,
                "bytes_reused": stats.bytes_reused,
            }
            if isinstance(getattr(backend, "threads", None), int):
                entry["threads"] = backend.threads
            results[name] = entry
        finally:
            backend.close()
    doc = {
        "format": "repro.engine_bench",
        "version": BENCH_FORMAT_VERSION,
        "workload": {"batch": batch, "channels": channels, "size": size,
                     "kernel": 3, "repeats": repeats, "seed": seed},
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "backends": results,
    }
    if "numpy" in results and "threaded" in results:
        doc["speedup_threaded_vs_numpy"] = {
            op: results["numpy"][op]["best_s"] / results["threaded"][op]["best_s"]
            for op in ("conv_forward", "conv_backward", "bn_opt_step")
            if results["threaded"][op]["best_s"] > 0
        }
    return doc


def write_engine_bench(path: Union[str, Path] = DEFAULT_BENCH_PATH,
                       **kwargs) -> dict:
    """Run the bench and write the JSON document to ``path``."""
    doc = run_engine_bench(**kwargs)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_engine_bench(doc: dict) -> str:
    """Human-readable summary of a BENCH_engine document."""
    lines = [f"engine bench (batch={doc['workload']['batch']}, "
             f"{doc['host']['cpu_count']} cpus)"]
    header = f"{'backend':<12s} {'conv fw':>10s} {'conv bw':>10s} {'bn-opt':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in doc["backends"].items():
        label = name
        if "threads" in entry:
            label = f"{name}[{entry['threads']}]"
        lines.append(
            f"{label:<12s} {entry['conv_forward']['best_s'] * 1e3:9.2f}ms "
            f"{entry['conv_backward']['best_s'] * 1e3:9.2f}ms "
            f"{entry['bn_opt_step']['best_s'] * 1e3:9.2f}ms"
            + (f"  arena {100 * entry['arena']['hit_rate']:.0f}% hit"
               if entry.get("arena", {}).get("requests") else ""))
    speedups = doc.get("speedup_threaded_vs_numpy")
    if speedups:
        rendered = ", ".join(f"{op} x{ratio:.2f}"
                             for op, ratio in speedups.items())
        lines.append(f"threaded speedup vs numpy: {rendered}")
    return "\n".join(lines)
