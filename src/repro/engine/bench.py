"""Engine micro-benchmark: conv forward/backward and one BN-Opt step.

``python -m repro bench`` times the leaf kernels the paper's latency
breakdowns are made of, once per execution backend, and writes the
results to ``BENCH_engine.json`` so successive PRs accumulate a
comparable perf trajectory.  Three workloads:

- ``conv_forward`` — a representative mid-network convolution (3x3,
  stride 1, pad 1) under ``no_grad``, the shape class that dominates
  every forward-time figure (Figs. 3/6/9);
- ``conv_backward`` — the same convolution's input+weight gradient,
  the bulk of BN-Opt's adaptation overhead (Figs. 4/7/10);
- ``bn_opt_step`` — one full TENT step (forward with BN statistics
  recompute, entropy backward, Adam update on gamma/beta) on a small
  conv-BN stack, the paper's end-to-end unit of adaptation work.

Timings are best-of-``repeats`` wall clock (median is also recorded);
the arena's hit-rate over the measured iterations is reported per
backend.

With ``sweep=True`` the document also gets a ``sweep`` section: a small
native adaptation grid is driven once serially and once through the
process-parallel scheduler (:mod:`repro.parallel`), recording wall time
and cells/sec for each so the sweep-throughput trajectory is tracked
alongside the kernel timings.

With ``serving=True`` (v3) the document also gets a ``serving``
section: a seeded multi-tenant load-generator run against an
in-process event-loop daemon (:mod:`repro.serve.loadgen`), recording
per-request p50/p95/p99 latency, queue depth, and frames/sec — the
serve path's throughput number, gated by the same ``--compare`` CI
gate as the kernels.

:func:`compare_engine_bench` turns two documents into a perf-regression
verdict — ``python -m repro bench --compare BASELINE.json`` exits
non-zero when any kernel slowed down (or sweep throughput dropped)
beyond the tolerance, which is what CI's perf gate runs on every PR.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine import Backend, create_backend, use_backend

DEFAULT_BENCH_PATH = "BENCH_engine.json"

#: schema version for BENCH_engine.json (bump on incompatible change);
#: v2 added the optional ``sweep`` throughput section, v3 the optional
#: ``serving`` latency/throughput section (repro.serve.loadgen)
BENCH_FORMAT_VERSION = 3


def _time(fn: Callable[[], None], repeats: int, warmup: int = 1) -> Dict[str, float]:
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return {
        "best_s": samples[0],
        "median_s": samples[len(samples) // 2],
        "repeats": repeats,
    }


def _conv_workload(batch: int, channels: int, size: int, seed: int):
    from repro.tensor.tensor import Tensor
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal(
        (batch, channels, size, size)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal(
        (channels * 2, channels, 3, 3)).astype(np.float32) * 0.1,
        requires_grad=True)
    return x, w


def _bench_conv(backend: Backend, batch: int, channels: int, size: int,
                repeats: int, seed: int) -> Dict[str, Dict[str, float]]:
    from repro.tensor import no_grad
    from repro.tensor.conv import conv2d
    x, w = _conv_workload(batch, channels, size, seed)

    def forward() -> None:
        with no_grad():
            conv2d(x, w, stride=1, padding=1)

    def forward_backward() -> None:
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=1, padding=1)
        out.backward(np.ones_like(out.data))

    with use_backend(backend):
        fw = _time(forward, repeats)
        bw = _time(forward_backward, repeats)
    return {"conv_forward": fw, "conv_backward": bw}


def _bench_bn_opt_step(backend: Backend, batch: int, repeats: int,
                       seed: int) -> Dict[str, float]:
    from repro import nn
    from repro.adapt.bn_opt import BNOpt
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False), nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.Conv2d(16, 32, 3, stride=2, padding=1, bias=False),
        nn.BatchNorm2d(32), nn.ReLU(),
        nn.GlobalAvgPool2d(), nn.Linear(32, 10))
    images = rng.standard_normal((batch, 3, 16, 16)).astype(np.float32)
    method = BNOpt(lr=1e-3)

    def step() -> None:
        method.prepare(model)
        method.forward(images)

    with use_backend(backend):
        return _time(step, repeats)


def _bench_sweep(workers: int, seed: int) -> dict:
    """Time a small native adaptation grid serially vs in parallel.

    One tiny *untrained* WRN-40-2 (shipped pre-built, so no training
    cost pollutes the throughput number) over a 3-method x 2-batch grid
    with two corruption streams: 6 cells, each real adaptation work on
    the numpy engine.  Cells/sec is the sweep-scheduling metric the
    parallel executor is supposed to move.
    """
    from repro.core.config import StudyConfig
    from repro.core.runner import run_native_study
    from repro.models.registry import build_model

    base = StudyConfig(models=("wrn40_2",),
                       methods=("no_adapt", "bn_norm", "bn_opt"),
                       batch_sizes=(32, 64),
                       corruptions=("gaussian_noise", "fog"),
                       image_size=16, stream_samples=96, seed=seed)
    models = {"wrn40_2": build_model("wrn40_2", profile="tiny")}
    cells = (len(base.models) * len(base.methods) * len(base.batch_sizes))
    section: dict = {
        "cells": cells,
        "grid": {"models": list(base.models),
                 "methods": list(base.methods),
                 "batch_sizes": list(base.batch_sizes),
                 "corruptions": list(base.corruptions),
                 "stream_samples": base.stream_samples},
    }
    from dataclasses import replace as _replace
    for label, n in (("serial", 0), ("parallel", workers)):
        start = time.perf_counter()
        run_native_study(_replace(base, workers=n), models=models)
        wall = time.perf_counter() - start
        section[label] = {"wall_s": wall, "cells_per_s": cells / wall}
        if label == "parallel":
            section[label]["workers"] = workers
    section["speedup_parallel_vs_serial"] = (
        section["parallel"]["cells_per_s"] / section["serial"]["cells_per_s"])
    return section


def run_engine_bench(backends: Sequence[str] = ("numpy", "threaded"),
                     threads: int = 0,
                     batch: int = 64,
                     channels: int = 16,
                     size: int = 16,
                     repeats: int = 5,
                     seed: int = 0,
                     sweep: bool = False,
                     sweep_workers: int = 0,
                     serving: bool = False,
                     serving_tenants: int = 2,
                     serving_frames: int = 96,
                     serving_batch: int = 16,
                     serving_arrival: str = "poisson:rate=256",
                     serving_workers: int = 2) -> dict:
    """Benchmark every named backend; return the BENCH_engine document.

    ``sweep=True`` appends the sweep-throughput section (serial vs
    ``sweep_workers`` processes; 0 means one per CPU core).
    ``serving=True`` appends the serving latency/throughput section
    (``serving_tenants`` seeded tenant streams of ``serving_frames``
    frames each through an in-process daemon).
    """
    results: Dict[str, dict] = {}
    for name in backends:
        backend = create_backend(name, threads=threads)
        try:
            entry: dict = dict(_bench_conv(backend, batch, channels, size,
                                           repeats, seed))
            entry["bn_opt_step"] = _bench_bn_opt_step(backend, batch,
                                                      repeats, seed)
            stats = backend.arena_stats()
            entry["arena"] = {
                "requests": stats.requests,
                "hits": stats.hits,
                "hit_rate": stats.hit_rate,
                "bytes_allocated": stats.bytes_allocated,
                "bytes_reused": stats.bytes_reused,
            }
            if isinstance(getattr(backend, "threads", None), int):
                entry["threads"] = backend.threads
            results[name] = entry
        finally:
            backend.close()
    doc = {
        "format": "repro.engine_bench",
        "version": BENCH_FORMAT_VERSION,
        "workload": {"batch": batch, "channels": channels, "size": size,
                     "kernel": 3, "repeats": repeats, "seed": seed},
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "backends": results,
    }
    if "numpy" in results and "threaded" in results:
        doc["speedup_threaded_vs_numpy"] = {
            op: results["numpy"][op]["best_s"] / results["threaded"][op]["best_s"]
            for op in ("conv_forward", "conv_backward", "bn_opt_step")
            if results["threaded"][op]["best_s"] > 0
        }
    if sweep:
        doc["sweep"] = _bench_sweep(sweep_workers or os.cpu_count() or 1,
                                    seed)
    if serving:
        # lazy import: the serve stack is heavy and the kernel bench
        # must stay runnable without it
        from repro.serve.loadgen import run_serving_bench
        doc["serving"] = run_serving_bench(
            tenants=serving_tenants, frames_per_tenant=serving_frames,
            batch_size=serving_batch, arrival=serving_arrival,
            seed=seed, workers=serving_workers)
    return doc


def write_engine_bench(path: Union[str, Path] = DEFAULT_BENCH_PATH,
                       **kwargs) -> dict:
    """Run the bench and write the JSON document to ``path``."""
    doc = run_engine_bench(**kwargs)
    from repro.resilience.atomic import atomic_write_text
    atomic_write_text(path, json.dumps(doc, indent=2) + "\n")
    return doc


def format_engine_bench(doc: dict) -> str:
    """Human-readable summary of a BENCH_engine document."""
    lines = [f"engine bench (batch={doc['workload']['batch']}, "
             f"{doc['host']['cpu_count']} cpus)"]
    header = f"{'backend':<12s} {'conv fw':>10s} {'conv bw':>10s} {'bn-opt':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in doc["backends"].items():
        label = name
        if "threads" in entry:
            label = f"{name}[{entry['threads']}]"
        lines.append(
            f"{label:<12s} {entry['conv_forward']['best_s'] * 1e3:9.2f}ms "
            f"{entry['conv_backward']['best_s'] * 1e3:9.2f}ms "
            f"{entry['bn_opt_step']['best_s'] * 1e3:9.2f}ms"
            + (f"  arena {100 * entry['arena']['hit_rate']:.0f}% hit"
               if entry.get("arena", {}).get("requests") else ""))
    speedups = doc.get("speedup_threaded_vs_numpy")
    if speedups:
        rendered = ", ".join(f"{op} x{ratio:.2f}"
                             for op, ratio in speedups.items())
        lines.append(f"threaded speedup vs numpy: {rendered}")
    sweep = doc.get("sweep")
    if sweep:
        lines.append(
            f"sweep ({sweep['cells']} cells): "
            f"serial {sweep['serial']['cells_per_s']:.2f} cells/s, "
            f"parallel[{sweep['parallel']['workers']}] "
            f"{sweep['parallel']['cells_per_s']:.2f} cells/s "
            f"(x{sweep['speedup_parallel_vs_serial']:.2f})")
    serving = doc.get("serving")
    if serving:
        lines.append(format_serving_section(serving))
    return "\n".join(lines)


def format_serving_section(serving: dict) -> str:
    """One-line human summary of a ``serving`` bench section."""
    config = serving.get("config", {})
    latency = serving.get("latency_ms", {})
    line = (f"serving ({config.get('tenants', '?')} tenants x "
            f"{config.get('frames_per_tenant', '?')} frames, "
            f"{config.get('arrival', '?')}): "
            f"p50 {latency.get('p50', 0.0):.1f}ms "
            f"p95 {latency.get('p95', 0.0):.1f}ms "
            f"p99 {latency.get('p99', 0.0):.1f}ms, "
            f"{serving.get('frames_per_s', 0.0):.1f} frames/s")
    if serving.get("frames_dropped"):
        line += f", {serving['frames_dropped']} dropped"
    if serving.get("errors"):
        line += f", {serving['errors']} error(s)"
    return line


# ----------------------------------------------------------------------
# Perf-regression comparison (the CI gate behind ``bench --compare``)
# ----------------------------------------------------------------------

#: kernel metrics compared per backend (lower is better)
_KERNEL_OPS = ("conv_forward", "conv_backward", "bn_opt_step")

#: serving latency percentiles compared (lower is better)
_SERVING_LATENCY_METRICS = ("p50", "p95", "p99")


def compare_engine_bench(current: dict, baseline: dict,
                         tolerance_pct: float = 25.0) -> dict:
    """Compare two BENCH_engine documents; flag regressions.

    A kernel regresses when its best time exceeds the baseline's by
    more than ``tolerance_pct`` percent; sweep throughput regresses
    when cells/sec drops by more than the same margin; serving latency
    percentiles (lower is better) and frames/sec (higher is better)
    regress the same way.  Metrics present on only one side are
    skipped, not failed — a v1 baseline (no ``sweep`` section) gates
    the kernels it has and nothing else, and a pre-v3 baseline with no
    ``serving`` section leaves the serving numbers informational (a
    note says so) — the gate never breaks on its own format growth.

    Returns ``{"tolerance_pct", "checked", "regressions", "skipped",
    "notes"}`` where each entry of ``checked``/``regressions`` is
    ``{"metric", "baseline", "current", "ratio"}`` (ratio > 1 means
    slower/worse).
    """
    if tolerance_pct < 0:
        raise ValueError(
            f"tolerance_pct must be >= 0, got {tolerance_pct}")
    allowed = 1.0 + tolerance_pct / 100.0
    checked: List[dict] = []
    regressions: List[dict] = []
    skipped: List[str] = []
    notes: List[str] = []

    def check(metric: str, base_value: Optional[float],
              cur_value: Optional[float], *, lower_is_better: bool) -> None:
        if not base_value or not cur_value or base_value <= 0 \
                or cur_value <= 0:
            skipped.append(metric)
            return
        ratio = (cur_value / base_value if lower_is_better
                 else base_value / cur_value)
        entry = {"metric": metric, "baseline": base_value,
                 "current": cur_value, "ratio": ratio}
        checked.append(entry)
        if ratio > allowed:
            regressions.append(entry)

    base_backends = baseline.get("backends", {})
    for name, entry in current.get("backends", {}).items():
        base_entry = base_backends.get(name, {})
        for op in _KERNEL_OPS:
            check(f"{name}/{op}/best_s",
                  base_entry.get(op, {}).get("best_s"),
                  entry.get(op, {}).get("best_s"), lower_is_better=True)
    for mode in ("serial", "parallel"):
        check(f"sweep/{mode}/cells_per_s",
              baseline.get("sweep", {}).get(mode, {}).get("cells_per_s"),
              current.get("sweep", {}).get(mode, {}).get("cells_per_s"),
              lower_is_better=False)
    cur_serving = current.get("serving") or {}
    base_serving = baseline.get("serving") or {}
    if cur_serving and not base_serving:
        # pre-v3 baseline: report the serving numbers but gate nothing
        # (exactly the v1 no-sweep tolerance, one format later)
        notes.append(
            "baseline has no 'serving' section (pre-v3 format): serving "
            "metrics are informational this run, not gated")
        for name in _SERVING_LATENCY_METRICS:
            skipped.append(f"serving/latency_{name}_ms")
        skipped.append("serving/frames_per_s")
    else:
        for name in _SERVING_LATENCY_METRICS:
            check(f"serving/latency_{name}_ms",
                  base_serving.get("latency_ms", {}).get(name),
                  cur_serving.get("latency_ms", {}).get(name),
                  lower_is_better=True)
        check("serving/frames_per_s",
              base_serving.get("frames_per_s"),
              cur_serving.get("frames_per_s"), lower_is_better=False)
    return {"tolerance_pct": tolerance_pct, "checked": checked,
            "regressions": regressions, "skipped": skipped,
            "notes": notes}


def format_bench_comparison(comparison: dict) -> str:
    """Human-readable verdict for a :func:`compare_engine_bench` result."""
    tolerance = comparison["tolerance_pct"]
    lines = [f"perf comparison (tolerance {tolerance:g}%): "
             f"{len(comparison['checked'])} metric(s) checked, "
             f"{len(comparison['regressions'])} regression(s)"]
    flagged = {entry["metric"] for entry in comparison["regressions"]}
    for entry in comparison["checked"]:
        verdict = "REGRESSED" if entry["metric"] in flagged else "ok"
        lines.append(
            f"  {entry['metric']:<32s} {entry['ratio']:6.2f}x "
            f"({entry['baseline']:.4g} -> {entry['current']:.4g})  "
            f"{verdict}")
    if comparison["skipped"]:
        lines.append("  skipped (absent on one side): "
                     + ", ".join(comparison["skipped"]))
    for note in comparison.get("notes", ()):
        lines.append(f"  note: {note}")
    return "\n".join(lines)
