"""Reference backend: single-threaded numpy with workspace reuse.

Numerics are kept *bit-for-bit identical* to the original in-line
implementations that used to live in :mod:`repro.tensor.conv` and
:mod:`repro.tensor.functional`: the same strided im2col view feeds the
same einsum contraction strings in the same order.  The only change is
where scratch memory comes from — short-lived workspaces (the column
gradient consumed by col2im, the padded-input copy) are drawn from the
backend's :class:`~repro.engine.arena.WorkspaceArena` instead of being
reallocated on every call.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.base import Backend


def im2col_view(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Zero-copy strided view of shape (N, C, kh, kw, Ho, Wo) over ``x``."""
    n, c, h, w = x.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    sn, sc, sh_, sw_ = x.strides
    shape = (n, c, kh, kw, ho, wo)
    strides = (sn, sc, sh_, sw_, sh_ * sh, sw_ * sw)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
           sh: int, sw: int) -> np.ndarray:
    """Scatter-add a (N, C, kh, kw, Ho, Wo) gradient back to input shape."""
    ho = cols.shape[-2]
    wo = cols.shape[-1]
    dx = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        h_stop = i + sh * ho
        for j in range(kw):
            w_stop = j + sw * wo
            dx[:, :, i:h_stop:sh, j:w_stop:sw] += cols[:, :, i, j]
    return dx


class NumpyBackend(Backend):
    """The default backend: today's exact numerics plus the arena."""

    name = "numpy"

    # -- convolution ---------------------------------------------------
    def conv2d_forward(self, xp: np.ndarray, weight: np.ndarray,
                       stride: Tuple[int, int], groups: int) -> np.ndarray:
        sh, sw = stride
        n, c = xp.shape[:2]
        co, cig, kh, kw = weight.shape
        view = im2col_view(xp, kh, kw, sh, sw)
        ho, wo = view.shape[-2:]
        cog = co // groups
        vg = view.reshape(n, groups, cig, kh, kw, ho, wo)
        wg = weight.reshape(groups, cog, cig, kh, kw)
        # out[n, g, o, y, x] = sum_{c,i,j} w[g,o,c,i,j] * v[n,g,c,i,j,y,x]
        out = np.einsum("gocij,ngcijyx->ngoyx", wg, vg, optimize=True)
        return out.reshape(n, co, ho, wo)

    def conv2d_backward(self, grad: np.ndarray, xp: np.ndarray,
                        weight: np.ndarray, stride: Tuple[int, int],
                        groups: int, need_input_grad: bool,
                        need_weight_grad: bool
                        ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        sh, sw = stride
        n, c = xp.shape[:2]
        co, cig, kh, kw = weight.shape
        ho, wo = grad.shape[-2:]
        cog = co // groups
        gg = grad.reshape(n, groups, cog, ho, wo)
        wg = weight.reshape(groups, cog, cig, kh, kw)
        dw = dxp = None
        if need_weight_grad:
            view = im2col_view(xp, kh, kw, sh, sw)
            vg = view.reshape(n, groups, cig, kh, kw, ho, wo)
            dw = np.einsum("ngoyx,ngcijyx->gocij", gg, vg,
                           optimize=True).reshape(co, cig, kh, kw)
        if need_input_grad:
            # The column gradient is the op's largest temporary and dies
            # inside col2im — draw it from the arena.
            dcols = self.arena.acquire((n, groups, cig, kh, kw, ho, wo),
                                       grad.dtype)
            np.einsum("gocij,ngoyx->ngcijyx", wg, gg, optimize=True,
                      out=dcols)
            dxp = col2im(dcols.reshape(n, c, kh, kw, ho, wo), xp.shape,
                         kh, kw, sh, sw)
            self.arena.release(dcols)
        return dxp, dw

    # -- dense ---------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    # -- batch norm ----------------------------------------------------
    def batchnorm_stats(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        axes = (0, 2, 3)
        return x.mean(axis=axes), x.var(axis=axes)

    # -- pooling -------------------------------------------------------
    def max_pool2d_forward(self, x: np.ndarray, kernel: Tuple[int, int],
                           stride: Tuple[int, int]
                           ) -> Tuple[np.ndarray, np.ndarray]:
        kh, kw = kernel
        sh, sw = stride
        view = im2col_view(x, kh, kw, sh, sw)
        n, c, _, _, ho, wo = view.shape
        flat = view.reshape(n, c, kh * kw, ho, wo)
        arg = flat.argmax(axis=2)
        out = np.take_along_axis(flat, arg[:, :, None], axis=2)[:, :, 0]
        return out, arg

    def max_pool2d_backward(self, grad: np.ndarray, arg: np.ndarray,
                            x_shape: Tuple[int, ...], kernel: Tuple[int, int],
                            stride: Tuple[int, int]) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        n, c, ho, wo = grad.shape
        dflat = self.arena.acquire_zeros((n, c, kh * kw, ho, wo), grad.dtype)
        np.put_along_axis(dflat, arg[:, :, None], grad[:, :, None], axis=2)
        dx = col2im(dflat.reshape(n, c, kh, kw, ho, wo), x_shape,
                    kh, kw, sh, sw)
        self.arena.release(dflat)
        return dx

    def avg_pool2d_forward(self, x: np.ndarray, kernel: Tuple[int, int],
                           stride: Tuple[int, int]) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        return im2col_view(x, kh, kw, sh, sw).mean(axis=(2, 3))

    def avg_pool2d_backward(self, grad: np.ndarray, x_shape: Tuple[int, ...],
                            kernel: Tuple[int, int],
                            stride: Tuple[int, int]) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        n, c, ho, wo = grad.shape
        scale = 1.0 / (kh * kw)
        dcols = np.broadcast_to((grad * scale)[:, :, None, None],
                                (n, c, kh, kw, ho, wo)).astype(grad.dtype)
        return col2im(np.ascontiguousarray(dcols), x_shape, kh, kw, sh, sw)
