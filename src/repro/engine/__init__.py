"""Pluggable execution-backend layer for the numpy engine.

The autograd substrate (:mod:`repro.tensor`) defines *what* the leaf ops
compute; this package decides *how* they execute.  Every heavy kernel —
conv2d forward/backward, matmul, batch-norm statistics, pooling — routes
through the active :class:`~repro.engine.base.Backend`:

- :class:`~repro.engine.numpy_backend.NumpyBackend` — the default;
  bit-for-bit the original numerics, plus a shape-keyed
  :class:`~repro.engine.arena.WorkspaceArena` that reuses im2col/col2im
  scratch buffers across calls instead of reallocating.
- :class:`~repro.engine.threaded.ThreadedBackend` — shards the batch
  dimension over a thread pool (numpy releases the GIL in BLAS/einsum)
  with a deterministic weight-gradient reduction order.
- :class:`~repro.engine.instrument.InstrumentedBackend` — wraps either,
  counting calls, bytes allocated/reused, and per-kernel time for the
  native profiler.

Select a backend with the thread-local, nestable context manager::

    from repro.engine import ThreadedBackend, use_backend

    with use_backend(ThreadedBackend(threads=4)):
        study = run_native_study(config)

or process-wide via ``set_default_backend`` / the CLI's ``--backend`` /
``--threads`` flags.
"""

from __future__ import annotations

from repro.engine.arena import ArenaStats, WorkspaceArena
from repro.engine.base import (
    Backend,
    default_backend,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.instrument import InstrumentedBackend, OpStat
from repro.engine.numpy_backend import NumpyBackend
from repro.engine.threaded import ThreadedBackend

#: names accepted by :func:`create_backend` and the CLI ``--backend`` flag
BACKEND_NAMES = ("numpy", "threaded", "sanitize")


def create_backend(name: str, threads: int = 0) -> Backend:
    """Build a backend by CLI name (``threads`` only affects "threaded").

    ``"sanitize"`` wraps the reference NumpyBackend in the numeric
    sanitizer (:class:`~repro.analysis.sanitize.SanitizerBackend`),
    which validates every leaf op's arrays with op-site attribution.
    """
    if name == "numpy":
        return NumpyBackend()
    if name == "threaded":
        return ThreadedBackend(threads=threads)
    if name == "sanitize":
        # imported lazily: repro.analysis imports repro.engine.base, so
        # a top-level import here would tie the packages in a cycle
        from repro.analysis.sanitize import SanitizerBackend
        return SanitizerBackend(NumpyBackend())
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


__all__ = [
    "ArenaStats",
    "WorkspaceArena",
    "Backend",
    "NumpyBackend",
    "ThreadedBackend",
    "InstrumentedBackend",
    "OpStat",
    "BACKEND_NAMES",
    "create_backend",
    "default_backend",
    "get_backend",
    "set_default_backend",
    "use_backend",
]
