"""Workspace arena: shape/dtype-keyed reuse of scratch ndarrays.

The paper's latency breakdowns attribute most of the edge-CPU forward
time to conv leaf ops, and a real fraction of *that* is allocator
traffic: every im2col convolution call allocates a padded-input copy and
(in the backward pass) a ``(N, C, kh, kw, Ho, Wo)`` column gradient that
dies microseconds later.  The arena keeps those short-lived workspaces
alive in a free-pool keyed by ``(shape, dtype)`` so steady-state
adaptation loops — which see the same batch/feature shapes every batch —
stop allocating after the first iteration.

Safety contract: only buffers that provably do not escape an op may be
released back to the pool.  Backends release (a) padded-input copies
once the autograd closure that captured them has run (or immediately,
when no graph is recorded) and (b) column-gradient scratch consumed by
col2im.  Everything that escapes (op outputs, gradients handed to
``Tensor._send_grad``) is allocated fresh.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class ArenaStats:
    """Counters describing how well workspace reuse is working."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    bytes_allocated: int = 0
    bytes_reused: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of acquisitions served from the pool (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class WorkspaceArena:
    """Thread-safe free-pool of scratch ndarrays keyed by (shape, dtype).

    ``acquire`` returns an *uninitialised* buffer (contents are whatever
    the previous user left); use :meth:`acquire_zeros` where the op
    depends on zero-fill (e.g. padded-input borders).  ``release`` parks
    a buffer for reuse; releasing the same array twice is a no-op, and
    buffers that are never released are simply garbage-collected.
    """

    def __init__(self, max_buffers_per_key: int = 4):
        self._pool: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        self._pooled_ids: set = set()
        self._lock = threading.Lock()
        self._max_per_key = max_buffers_per_key
        self._requests = 0
        self._hits = 0
        self._bytes_allocated = 0
        self._bytes_reused = 0

    @staticmethod
    def _key(shape, dtype) -> Tuple[Tuple[int, ...], str]:
        return tuple(int(s) for s in shape), np.dtype(dtype).str

    def acquire(self, shape, dtype) -> np.ndarray:
        """Return a contiguous scratch array of ``shape``/``dtype``."""
        key = self._key(shape, dtype)
        with self._lock:
            self._requests += 1
            bucket = self._pool.get(key)
            if bucket:
                buf = bucket.pop()
                self._pooled_ids.discard(id(buf))
                self._hits += 1
                self._bytes_reused += buf.nbytes
                return buf
        buf = np.empty(key[0], dtype=np.dtype(dtype))
        with self._lock:
            self._bytes_allocated += buf.nbytes
        return buf

    def acquire_zeros(self, shape, dtype) -> np.ndarray:
        """Like :meth:`acquire` but zero-filled (bit-identical to np.zeros)."""
        buf = self.acquire(shape, dtype)
        buf.fill(0)
        return buf

    def release(self, array: np.ndarray) -> None:
        """Park ``array`` for reuse.  Views and foreign arrays are refused
        (a view's base may still be live elsewhere)."""
        if array.base is not None or not array.flags["C_CONTIGUOUS"]:
            return
        key = self._key(array.shape, array.dtype)
        with self._lock:
            if id(array) in self._pooled_ids:
                return  # double release
            bucket = self._pool.setdefault(key, [])
            if len(bucket) < self._max_per_key:
                bucket.append(array)
                self._pooled_ids.add(id(array))

    def stats(self) -> ArenaStats:
        """Snapshot the reuse counters."""
        with self._lock:
            return ArenaStats(
                requests=self._requests,
                hits=self._hits,
                misses=self._requests - self._hits,
                bytes_allocated=self._bytes_allocated,
                bytes_reused=self._bytes_reused,
            )

    def clear(self) -> None:
        """Drop all pooled buffers and reset the counters."""
        with self._lock:
            self._pool.clear()
            self._pooled_ids.clear()
            self._requests = self._hits = 0
            self._bytes_allocated = self._bytes_reused = 0

    def pooled_buffers(self) -> int:
        """Number of buffers currently parked (diagnostics/tests)."""
        with self._lock:
            return sum(len(b) for b in self._pool.values())
