"""Instrumented backend wrapper: per-kernel call counts and wall time.

Wrap any backend to observe what the engine actually does::

    inst = InstrumentedBackend(NumpyBackend())
    with use_backend(inst):
        model(x).backward(...)
    print(inst.describe())

The wrapper delegates every leaf kernel to the inner backend, timing
each call with ``perf_counter`` and aggregating by kernel name.  It
shares the inner backend's arena, so ``arena_stats()`` reports the real
bytes allocated/reused during the instrumented region.
:func:`repro.profiling.profiler.profile_native` uses this wrapper to
attribute engine time per op kind without relying solely on the
module-level ``trace_calls`` hook (which cannot see inside backward
passes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict


from repro.engine.arena import ArenaStats
from repro.engine.base import Backend


@dataclass
class OpStat:
    """Aggregate for one kernel: invocation count and total seconds."""

    calls: int = 0
    time_s: float = 0.0


class InstrumentedBackend(Backend):
    """Delegating wrapper that counts and times every kernel call."""

    def __init__(self, inner: Backend):
        # Intentionally no super().__init__(): the wrapper shares the
        # inner backend's arena rather than owning a second one.
        self.inner = inner
        self.arena = inner.arena
        self.op_stats: Dict[str, OpStat] = {}
        self._arena_start: ArenaStats = inner.arena_stats()

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    def _timed(self, op: str, fn, *args):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        stat = self.op_stats.setdefault(op, OpStat())
        stat.calls += 1
        stat.time_s += elapsed
        return result

    # -- delegated kernels ---------------------------------------------
    def conv2d_forward(self, xp, weight, stride, groups):
        return self._timed("conv2d_forward", self.inner.conv2d_forward,
                           xp, weight, stride, groups)

    def conv2d_backward(self, grad, xp, weight, stride, groups,
                        need_input_grad, need_weight_grad):
        return self._timed("conv2d_backward", self.inner.conv2d_backward,
                           grad, xp, weight, stride, groups,
                           need_input_grad, need_weight_grad)

    def matmul(self, a, b):
        return self._timed("matmul", self.inner.matmul, a, b)

    def batchnorm_stats(self, x):
        return self._timed("batchnorm_stats", self.inner.batchnorm_stats, x)

    def max_pool2d_forward(self, x, kernel, stride):
        return self._timed("max_pool2d_forward",
                           self.inner.max_pool2d_forward, x, kernel, stride)

    def max_pool2d_backward(self, grad, arg, x_shape, kernel, stride):
        return self._timed("max_pool2d_backward",
                           self.inner.max_pool2d_backward,
                           grad, arg, x_shape, kernel, stride)

    def avg_pool2d_forward(self, x, kernel, stride):
        return self._timed("avg_pool2d_forward",
                           self.inner.avg_pool2d_forward, x, kernel, stride)

    def avg_pool2d_backward(self, grad, x_shape, kernel, stride):
        return self._timed("avg_pool2d_backward",
                           self.inner.avg_pool2d_backward,
                           grad, x_shape, kernel, stride)

    def pad_input(self, x, ph, pw):
        return self._timed("pad_input", self.inner.pad_input, x, ph, pw)

    def close(self) -> None:
        self.inner.close()

    # -- reporting ------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the op counters and re-baseline the arena snapshot."""
        self.op_stats = {}
        self._arena_start = self.inner.arena_stats()

    def arena_delta(self) -> ArenaStats:
        """Arena activity since this wrapper was created (or reset)."""
        now = self.inner.arena_stats()
        base = self._arena_start
        return ArenaStats(
            requests=now.requests - base.requests,
            hits=now.hits - base.hits,
            misses=now.misses - base.misses,
            bytes_allocated=now.bytes_allocated - base.bytes_allocated,
            bytes_reused=now.bytes_reused - base.bytes_reused,
        )

    def total_time_s(self) -> float:
        """Seconds spent inside backend kernels."""
        return sum(stat.time_s for stat in self.op_stats.values())

    def describe(self) -> str:
        """One line per kernel: ``name calls time``; arena summary last."""
        lines = [f"{op:<22s} {stat.calls:6d} calls {stat.time_s * 1e3:9.2f} ms"
                 for op, stat in sorted(self.op_stats.items())]
        arena = self.arena_delta()
        lines.append(
            f"arena: {arena.hits}/{arena.requests} hits "
            f"({100.0 * arena.hit_rate:.0f}%), "
            f"{arena.bytes_reused / 1e6:.1f} MB reused, "
            f"{arena.bytes_allocated / 1e6:.1f} MB allocated")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"InstrumentedBackend({self.inner!r})"
