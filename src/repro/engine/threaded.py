"""Batch-sharded threaded backend.

Numpy releases the GIL inside BLAS / einsum kernels, so sharding the
batch dimension across a ``ThreadPoolExecutor`` gives real parallelism
for the conv and matmul leaf ops that dominate the paper's edge-CPU
latency breakdowns — without any native code.

Determinism: shards cover contiguous, disjoint batch slices.  Outputs
and input gradients are written into disjoint slices of a preallocated
result (no reduction at all), and the weight gradient is reduced by
summing per-shard partials **in shard-index order**, independent of
thread completion order.  Results therefore match
:class:`~repro.engine.numpy_backend.NumpyBackend` exactly for forward /
input-grad paths and to floating-point reassociation (~1e-6 in float32)
for the weight gradient — which is why the cross-backend gradcheck suite
passes unchanged.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.numpy_backend import NumpyBackend


def _cpu_count() -> int:
    return os.cpu_count() or 1


class ThreadedBackend(NumpyBackend):
    """Shards conv forward/backward and matmul over the batch dimension.

    Parameters
    ----------
    threads:
        Worker count; ``0`` (default) uses ``os.cpu_count()``.
    min_shard:
        Smallest per-worker batch slice worth dispatching.  Batches
        smaller than ``2 * min_shard`` fall back to the inherited
        single-threaded kernels (thread fan-out costs more than it buys
        on tiny inputs).
    """

    name = "threaded"

    def __init__(self, threads: int = 0, min_shard: int = 8):
        super().__init__()
        self.threads = int(threads) if threads else _cpu_count()
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.min_shard = max(1, int(min_shard))
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- pool management -----------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix="repro-engine")
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    def _shards(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous batch slices, one per worker (empty => no sharding)."""
        if self.threads < 2 or n < 2 * self.min_shard:
            return []
        workers = min(self.threads, max(1, n // self.min_shard))
        if workers < 2:
            return []
        bounds = np.linspace(0, n, workers + 1, dtype=int)
        return [(int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    def _map(self, fn, shards) -> list:
        """Run ``fn`` over shards on the pool, results in shard order."""
        return list(self._executor().map(fn, shards))

    # -- convolution ---------------------------------------------------
    def conv2d_forward(self, xp: np.ndarray, weight: np.ndarray,
                       stride: Tuple[int, int], groups: int) -> np.ndarray:
        n = xp.shape[0]
        shards = self._shards(n)
        if not shards:
            return super().conv2d_forward(xp, weight, stride, groups)
        sh, sw = stride
        co, _, kh, kw = weight.shape
        ho = (xp.shape[2] - kh) // sh + 1
        wo = (xp.shape[3] - kw) // sw + 1
        out = np.empty((n, co, ho, wo), dtype=xp.dtype)

        def run(bounds: Tuple[int, int]) -> None:
            lo, hi = bounds
            out[lo:hi] = NumpyBackend.conv2d_forward(
                self, xp[lo:hi], weight, stride, groups)

        self._map(run, shards)
        return out

    def conv2d_backward(self, grad: np.ndarray, xp: np.ndarray,
                        weight: np.ndarray, stride: Tuple[int, int],
                        groups: int, need_input_grad: bool,
                        need_weight_grad: bool
                        ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        n = xp.shape[0]
        shards = self._shards(n)
        if not shards:
            return super().conv2d_backward(grad, xp, weight, stride, groups,
                                           need_input_grad, need_weight_grad)
        dxp = np.empty(xp.shape, dtype=grad.dtype) if need_input_grad else None

        def run(bounds: Tuple[int, int]) -> Optional[np.ndarray]:
            lo, hi = bounds
            dxp_s, dw_s = NumpyBackend.conv2d_backward(
                self, grad[lo:hi], xp[lo:hi], weight, stride, groups,
                need_input_grad, need_weight_grad)
            if dxp_s is not None:
                dxp[lo:hi] = dxp_s
            return dw_s

        partial_dws = self._map(run, shards)
        dw = None
        if need_weight_grad:
            # Deterministic reduction: fixed shard-index order.
            dw = partial_dws[0].copy()
            for part in partial_dws[1:]:
                dw += part
        return dxp, dw

    # -- dense ---------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2:
            return super().matmul(a, b)
        shards = self._shards(a.shape[0])
        if not shards:
            return super().matmul(a, b)
        out = np.empty((a.shape[0], b.shape[1]),
                       dtype=np.result_type(a.dtype, b.dtype))

        def run(bounds: Tuple[int, int]) -> None:
            lo, hi = bounds
            out[lo:hi] = a[lo:hi] @ b

        self._map(run, shards)
        return out

    def __repr__(self) -> str:
        return f"ThreadedBackend(threads={self.threads})"
