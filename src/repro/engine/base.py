"""Execution-backend interface and active-backend context management.

A :class:`Backend` owns the handful of leaf kernels the paper's models
actually spend their time in — convolution forward/backward, matmul,
batch-norm statistics, pooling — operating on plain ``numpy.ndarray``
inputs (the autograd layer in :mod:`repro.tensor` stays backend-agnostic
and routes its heavy ops through the active backend).

The active backend is selected with :func:`use_backend`, a thread-local,
nestable context manager mirroring ``no_grad``::

    with use_backend(ThreadedBackend(threads=4)):
        logits = model(x)          # conv/matmul shard the batch
        loss.backward()            # backward uses the same backend

An op's backward closure captures the backend that produced its forward
pass, so gradients are computed by the same backend even if the context
has exited by the time ``backward()`` runs.
"""

from __future__ import annotations

import abc
import contextlib
import threading
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.engine.arena import ArenaStats, WorkspaceArena


class Backend(abc.ABC):
    """Leaf-kernel interface all execution backends implement.

    Shapes follow the engine's NCHW convention.  ``stride`` arguments are
    ``(sh, sw)`` pairs and inputs to the conv kernels are *already
    padded*; padding (and the autograd bookkeeping) stays in
    :mod:`repro.tensor.conv`.
    """

    #: canonical name recorded on MeasurementRecords and bench output
    name: str = "base"

    def __init__(self) -> None:
        self.arena = WorkspaceArena()

    # -- convolution ---------------------------------------------------
    @abc.abstractmethod
    def conv2d_forward(self, xp: np.ndarray, weight: np.ndarray,
                       stride: Tuple[int, int], groups: int) -> np.ndarray:
        """Convolve padded input (N, C, H, W) with weight (Co, C/g, kh, kw)."""

    @abc.abstractmethod
    def conv2d_backward(self, grad: np.ndarray, xp: np.ndarray,
                        weight: np.ndarray, stride: Tuple[int, int],
                        groups: int, need_input_grad: bool,
                        need_weight_grad: bool
                        ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Return ``(d_input_padded, d_weight)`` (entries None when not needed)."""

    # -- dense ---------------------------------------------------------
    @abc.abstractmethod
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` (the Linear layer and its backward)."""

    # -- batch norm ----------------------------------------------------
    @abc.abstractmethod
    def batchnorm_stats(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel ``(mean, biased var)`` over the (N, H, W) axes."""

    # -- pooling -------------------------------------------------------
    @abc.abstractmethod
    def max_pool2d_forward(self, x: np.ndarray, kernel: Tuple[int, int],
                           stride: Tuple[int, int]
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(out, argmax)`` — argmax indexes the kh*kw window axis."""

    @abc.abstractmethod
    def max_pool2d_backward(self, grad: np.ndarray, arg: np.ndarray,
                            x_shape: Tuple[int, ...], kernel: Tuple[int, int],
                            stride: Tuple[int, int]) -> np.ndarray:
        """Scatter ``grad`` back through the argmax windows."""

    @abc.abstractmethod
    def avg_pool2d_forward(self, x: np.ndarray, kernel: Tuple[int, int],
                           stride: Tuple[int, int]) -> np.ndarray:
        """Window-mean pooling forward."""

    @abc.abstractmethod
    def avg_pool2d_backward(self, grad: np.ndarray, x_shape: Tuple[int, ...],
                            kernel: Tuple[int, int],
                            stride: Tuple[int, int]) -> np.ndarray:
        """Spread ``grad / (kh*kw)`` uniformly back over each window."""

    # -- workspace -----------------------------------------------------
    def pad_input(self, x: np.ndarray, ph: int, pw: int) -> np.ndarray:
        """Zero-pad spatial dims into an arena workspace (caller releases)."""
        n, c, h, w = x.shape
        buf = self.arena.acquire_zeros((n, c, h + 2 * ph, w + 2 * pw), x.dtype)
        buf[:, :, ph:ph + h, pw:pw + w] = x
        return buf

    def arena_stats(self) -> ArenaStats:
        """Scratch-buffer reuse counters for this backend."""
        return self.arena.stats()

    def close(self) -> None:
        """Release pooled workspaces and any worker threads."""
        self.arena.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Active-backend selection (thread-local stack over a process default)
# ---------------------------------------------------------------------------

_TLS = threading.local()
_DEFAULT_LOCK = threading.Lock()
_DEFAULT_BACKEND: Optional[Backend] = None


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


def default_backend() -> Backend:
    """The process-wide fallback backend (a lazily-built NumpyBackend)."""
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_BACKEND is None:
                from repro.engine.numpy_backend import NumpyBackend
                _DEFAULT_BACKEND = NumpyBackend()
    return _DEFAULT_BACKEND


def set_default_backend(backend: Optional[Backend]) -> None:
    """Replace the process-wide fallback (None restores NumpyBackend)."""
    global _DEFAULT_BACKEND
    with _DEFAULT_LOCK:
        _DEFAULT_BACKEND = backend


def get_backend() -> Backend:
    """The backend ops should dispatch to in the current thread."""
    stack = getattr(_TLS, "stack", None)
    if stack:
        return stack[-1]
    return default_backend()


@contextlib.contextmanager
def use_backend(backend: Backend) -> Iterator[Backend]:
    """Make ``backend`` active inside the block (thread-local, nestable).

    Composes with :func:`repro.tensor.no_grad` in either nesting order
    and restores the previous backend even when the block raises.  Other
    threads are unaffected: each thread has its own stack and falls back
    to the process default.
    """
    stack = _stack()
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()
