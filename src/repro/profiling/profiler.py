"""Native wall-clock profiler for real numpy executions.

Where :mod:`repro.profiling.breakdown` *simulates* the paper's profiler
figures from the device cost model, this module measures actual leaf-op
times of our numpy engine via the :func:`repro.nn.module.trace_calls`
hook.  It is used by tests to check that the simulated decomposition has
the same qualitative shape as a real one (conv dominates forward; BN
forward grows under adaptation) and by examples for diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.models.summary import _classify
from repro.nn.module import Module, trace_calls
from repro.tensor.tensor import Tensor


@dataclass
class NativeProfile:
    """Aggregated per-kind forward times plus total backward time."""

    forward_s_by_kind: Dict[str, float] = field(default_factory=dict)
    backward_s: float = 0.0
    total_forward_s: float = 0.0

    @property
    def conv_fw_s(self) -> float:
        return (self.forward_s_by_kind.get("conv", 0.0)
                + self.forward_s_by_kind.get("linear", 0.0))

    @property
    def bn_fw_s(self) -> float:
        return self.forward_s_by_kind.get("bn", 0.0)

    def describe(self) -> str:
        parts = [f"{kind}={seconds * 1e3:.1f}ms"
                 for kind, seconds in sorted(self.forward_s_by_kind.items())]
        parts.append(f"backward={self.backward_s * 1e3:.1f}ms")
        return ", ".join(parts)


def profile_native(model: Module, x: np.ndarray,
                   loss_fn=None) -> NativeProfile:
    """Profile one forward (and optional backward) pass of ``model``.

    ``loss_fn`` maps logits (a Tensor) to a scalar Tensor; when given,
    the backward pass is timed as a whole (per-op backward attribution is
    not separable in our closure-based engine, so the profile reports a
    single backward figure — tests compare it against the cost model's
    total backward time instead of per-kind).
    """
    profile = NativeProfile()
    start = time.perf_counter()
    with trace_calls() as records:
        logits = model(Tensor(x))
    profile.total_forward_s = time.perf_counter() - start
    for record in records:
        kind = _classify(record.module)
        profile.forward_s_by_kind[kind] = (
            profile.forward_s_by_kind.get(kind, 0.0) + record.duration_s)
    if loss_fn is not None:
        loss = loss_fn(logits)
        start = time.perf_counter()
        loss.backward()
        profile.backward_s = time.perf_counter() - start
    return profile
