"""Native wall-clock profiler for real numpy executions.

Where :mod:`repro.profiling.breakdown` *simulates* the paper's profiler
figures from the device cost model, this module measures actual leaf-op
times of our numpy engine.  Two complementary instruments feed one
:class:`NativeProfile`:

- the :func:`repro.nn.module.trace_calls` hook attributes forward time
  to *module kinds* (conv / bn / linear / ...), matching the paper's
  per-layer decomposition; and
- an :class:`repro.engine.InstrumentedBackend` wrapped around the active
  execution backend counts and times *engine kernels* — including the
  backward-pass kernels the module hook cannot see — and reports the
  workspace arena's allocation/reuse bytes.

It is used by tests to check that the simulated decomposition has the
same qualitative shape as a real one (conv dominates forward; BN forward
grows under adaptation) and by examples for diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.engine import ArenaStats, InstrumentedBackend, OpStat, get_backend, use_backend
from repro.models.summary import _classify
from repro.nn.module import Module, trace_calls
from repro.tensor.tensor import Tensor


@dataclass
class NativeProfile:
    """Aggregated per-kind forward times plus total backward time.

    ``backend_ops`` and ``arena`` carry the engine-level view recorded by
    the instrumented backend: per-kernel call counts/time (forward *and*
    backward) and scratch-buffer reuse over the profiled region.
    """

    forward_s_by_kind: Dict[str, float] = field(default_factory=dict)
    backward_s: float = 0.0
    total_forward_s: float = 0.0
    backend_name: str = ""
    backend_ops: Dict[str, OpStat] = field(default_factory=dict)
    arena: ArenaStats = field(default_factory=ArenaStats)

    @property
    def conv_fw_s(self) -> float:
        return (self.forward_s_by_kind.get("conv", 0.0)
                + self.forward_s_by_kind.get("linear", 0.0))

    @property
    def bn_fw_s(self) -> float:
        return self.forward_s_by_kind.get("bn", 0.0)

    def backend_time_s(self) -> float:
        """Seconds spent inside engine kernels (forward + backward)."""
        return sum(stat.time_s for stat in self.backend_ops.values())

    def describe(self) -> str:
        parts = [f"{kind}={seconds * 1e3:.1f}ms"
                 for kind, seconds in sorted(self.forward_s_by_kind.items())]
        parts.append(f"backward={self.backward_s * 1e3:.1f}ms")
        if self.backend_ops:
            calls = sum(stat.calls for stat in self.backend_ops.values())
            parts.append(f"engine[{self.backend_name}]={calls} kernel calls, "
                         f"arena hit-rate {100 * self.arena.hit_rate:.0f}%")
        return ", ".join(parts)


def profile_native(model: Module, x: np.ndarray,
                   loss_fn=None) -> NativeProfile:
    """Profile one forward (and optional backward) pass of ``model``.

    ``loss_fn`` maps logits (a Tensor) to a scalar Tensor; when given,
    the backward pass is timed as a whole (the module hook cannot split
    backward per layer, but the instrumented backend's ``backend_ops``
    still attributes it to conv/matmul/pooling kernels).
    """
    profile = NativeProfile()
    instrumented = InstrumentedBackend(get_backend())
    profile.backend_name = instrumented.name
    with use_backend(instrumented):
        start = time.perf_counter()
        with trace_calls() as records:
            logits = model(Tensor(x))
        profile.total_forward_s = time.perf_counter() - start
        for record in records:
            kind = _classify(record.module)
            profile.forward_s_by_kind[kind] = (
                profile.forward_s_by_kind.get(kind, 0.0) + record.duration_s)
        if loss_fn is not None:
            loss = loss_fn(logits)
            start = time.perf_counter()
            loss.backward()
            profile.backward_s = time.perf_counter() - start
    profile.backend_ops = instrumented.op_stats
    profile.arena = instrumented.arena_delta()
    return profile
