"""Op-level profiling: the reproduction of the paper's Autograd-profiler
figures (4, 7, 10) plus a native profiler for real executions.

- :mod:`repro.profiling.breakdown` — simulated conv/BN forward/backward
  decomposition from the device cost model, including the profiler's own
  memory overhead (which is what makes ResNeXt unprofilable on the
  Ultra96-v2, as the paper reports).
- :mod:`repro.profiling.profiler` — wall-clock per-op profiler for native
  numpy executions (used in tests and examples to sanity-check that the
  simulated decomposition has the same shape as a real one).
"""

from repro.profiling.breakdown import (
    BreakdownRow,
    ProfilerOOM,
    breakdown_for,
    breakdown_table,
    format_arena_report,
    format_breakdown,
)
from repro.profiling.profiler import NativeProfile, profile_native

__all__ = [
    "BreakdownRow",
    "ProfilerOOM",
    "breakdown_for",
    "breakdown_table",
    "format_arena_report",
    "format_breakdown",
    "NativeProfile",
    "profile_native",
]
