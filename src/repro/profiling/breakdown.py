"""Simulated profiler: conv/BN forward/backward breakdown (Figs. 4, 7, 10).

The paper attaches the PyTorch Autograd profiler (batch size 50) and
reports, per model and adaptation algorithm, the average time spent in
convolution and batch-norm forward and backward passes.  The same
decomposition falls directly out of our device cost model; this module
packages it, and additionally models the profiler's *memory* overhead —
the reason the paper could not profile ResNeXt on the Ultra96-v2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.devices.cost_model import forward_latency
from repro.engine import ArenaStats
from repro.devices.memory import PROFILER_OVERHEAD, estimate_memory
from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary

#: method name -> (adapts_bn_stats, does_backward); kept here to avoid a
#: dependency cycle with repro.adapt.
_METHOD_FLAGS = {
    "no_adapt": (False, False),
    "bn_norm": (True, False),
    "bn_opt": (True, True),
}


class ProfilerOOM(RuntimeError):
    """The profiler's bookkeeping pushed the configuration past device memory."""


@dataclass(frozen=True)
class BreakdownRow:
    """One (model, method) bar group of a breakdown figure."""

    model: str
    method: str
    conv_fw_s: float
    bn_fw_s: float        # includes statistics-recompute work when adapting
    conv_bw_s: float
    bn_bw_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return (self.conv_fw_s + self.bn_fw_s + self.conv_bw_s
                + self.bn_bw_s + self.other_s)


def breakdown_for(summary: ModelSummary, device: DeviceSpec, method: str,
                  batch_size: int = 50, check_profiler_memory: bool = True
                  ) -> BreakdownRow:
    """Profiled phase decomposition for one configuration.

    Raises :class:`ProfilerOOM` when attaching the profiler would exceed
    the device memory budget (the paper's ResNeXt-on-Ultra96 case).
    """
    if method not in _METHOD_FLAGS:
        raise KeyError(f"unknown method {method!r}")
    adapts, backward = _METHOD_FLAGS[method]
    if check_profiler_memory:
        estimate = estimate_memory(summary, batch_size, device,
                                   does_backward=backward, profiling=True)
        if not estimate.fits:
            raise ProfilerOOM(
                f"profiling {summary.model_name}/{method} at batch "
                f"{batch_size} needs {estimate.total_gb:.2f} GB "
                f"(x{PROFILER_OVERHEAD} profiler overhead) on "
                f"{device.display_name}")
    lat = forward_latency(summary, batch_size, device,
                          adapts_bn_stats=adapts, does_backward=backward)
    other = (lat.elementwise_fw_s + lat.elementwise_bw_s + lat.overhead_fw_s
             + lat.overhead_bw_s + lat.optimizer_s)
    return BreakdownRow(model=summary.model_name, method=method,
                        conv_fw_s=lat.conv_fw_s, bn_fw_s=lat.bn_fw_total_s,
                        conv_bw_s=lat.conv_bw_s, bn_bw_s=lat.bn_bw_s,
                        other_s=other)


def breakdown_table(summaries: Sequence[ModelSummary], device: DeviceSpec,
                    methods: Sequence[str] = ("no_adapt", "bn_norm", "bn_opt"),
                    batch_size: int = 50) -> List[BreakdownRow]:
    """Breakdown rows for a figure; configurations that OOM under the
    profiler are skipped (matching the paper's missing ResNeXt bars)."""
    rows: List[BreakdownRow] = []
    for summary in summaries:
        for method in methods:
            try:
                rows.append(breakdown_for(summary, device, method, batch_size))
            except ProfilerOOM:
                continue
    return rows


def format_arena_report(stats_by_backend: Dict[str, ArenaStats],
                        title: str = "Workspace arena hit-rates:") -> str:
    """Render per-backend scratch-buffer reuse as an aligned text table.

    ``stats_by_backend`` maps a backend label to its
    :meth:`~repro.engine.Backend.arena_stats` snapshot (or an
    ``InstrumentedBackend.arena_delta()``).  Native profiles expose the
    same numbers on ``NativeProfile.arena``.
    """
    lines = []
    if title:
        lines.append(title)
    header = (f"{'backend':<14s} {'requests':>9s} {'hits':>9s} "
              f"{'hit rate':>9s} {'MB reused':>10s} {'MB alloc':>10s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in stats_by_backend.items():
        lines.append(
            f"{name:<14s} {stats.requests:9d} {stats.hits:9d} "
            f"{100.0 * stats.hit_rate:8.1f}% {stats.bytes_reused / 1e6:10.1f} "
            f"{stats.bytes_allocated / 1e6:10.1f}")
    return "\n".join(lines)


def format_breakdown(rows: Sequence[BreakdownRow], title: str = "") -> str:
    """Render breakdown rows as an aligned text table (seconds)."""
    lines = []
    if title:
        lines.append(title)
    header = (f"{'model':<14s} {'method':<9s} {'conv fw':>9s} {'bn fw':>9s} "
              f"{'conv bw':>9s} {'bn bw':>9s} {'other':>9s} {'total':>9s}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.model:<14s} {row.method:<9s} {row.conv_fw_s:9.3f} "
            f"{row.bn_fw_s:9.3f} {row.conv_bw_s:9.3f} {row.bn_bw_s:9.3f} "
            f"{row.other_s:9.3f} {row.total_s:9.3f}")
    return "\n".join(lines)
