"""No-Adapt baseline: frozen inference with training-time BN statistics."""

from __future__ import annotations

import numpy as np

from repro.adapt.base import AdaptationMethod
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


class NoAdapt(AdaptationMethod):
    """Plain inference (PyTorch ``eval()`` mode in the paper).

    BN layers normalize with their frozen running statistics; nothing is
    updated, no graph is built.
    """

    name = "no_adapt"
    does_backward = False
    adapts_bn_stats = False

    def _configure(self, model: Module) -> None:
        model.eval()
        model.requires_grad_(False)

    def forward(self, x: np.ndarray) -> np.ndarray:
        model = self._require_model()
        with no_grad():
            logits = model(Tensor(x))
        return logits.data
