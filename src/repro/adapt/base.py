"""Adaptation-method interface and BN-layer utilities."""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro import nn
from repro.nn.module import Module


def bn_layers(model: Module) -> List[nn.BatchNorm2d]:
    """All BatchNorm2d layers of a model, in traversal order."""
    return [m for m in model.modules() if isinstance(m, nn.BatchNorm2d)]


def bn_parameters(model: Module) -> Iterator[nn.Parameter]:
    """The BN affine parameters (gamma, beta) — what BN-Opt optimizes."""
    for layer in bn_layers(model):
        yield layer.weight
        yield layer.bias


def configure_bn_only_grads(model: Module) -> int:
    """Freeze every parameter except BN gamma/beta (TENT's setup).

    Returns the number of trainable parameters left, which for the paper's
    models equals the reported "BN parameter" counts (7808 / 5408 / 25216 /
    34112).
    """
    model.requires_grad_(False)
    count = 0
    for param in bn_parameters(model):
        param.requires_grad = True
        count += param.data.size
    return count


class AdaptationMethod(abc.ABC):
    """Interface shared by No-Adapt, BN-Norm, and BN-Opt.

    Lifecycle: ``prepare(model)`` once per stream, then ``forward(x)`` per
    batch (returns logits *and* performs the method's adaptation, matching
    the paper's "forward time = inference + adaptation" metric), and
    optionally ``reset()`` to restore the pristine pre-adaptation state
    (episodic evaluation).
    """

    #: canonical name used by the study harness and device cost model
    name: str = "base"
    #: whether forward() includes a backpropagation pass (drives sim cost)
    does_backward: bool = False
    #: whether forward() re-estimates BN statistics (drives sim cost)
    adapts_bn_stats: bool = False

    def __init__(self) -> None:
        self.model: Optional[Module] = None
        self._snapshot: Optional[Dict[str, np.ndarray]] = None
        self.batches_adapted = 0

    def prepare(self, model: Module) -> "AdaptationMethod":
        """Bind to ``model``, snapshot its state, and configure modes/grads."""
        self._snapshot = model.state_dict()
        return self.bind(model)

    def bind(self, model: Module) -> "AdaptationMethod":
        """Attach to ``model`` and configure modes/grads *without* taking
        the pristine snapshot.

        For wrappers that manage model state themselves (the robustness
        layer's :class:`~repro.robustness.guard.GuardedAdaptation` switches
        ladder levels mid-stream and restores its own BN snapshots);
        ``reset()`` stays the province of whichever method was
        ``prepare``-d.  Re-binding also rebuilds per-method optimizer
        state, which is exactly what a post-rollback retry wants.
        """
        self.model = model
        self.batches_adapted = 0
        self._configure(model)
        return self

    @abc.abstractmethod
    def _configure(self, model: Module) -> None:
        """Set train/eval mode and requires_grad flags for this method."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run one streamed batch; return logits (N, num_classes)."""

    def reset(self) -> None:
        """Restore the model to its pre-adaptation state (episodic mode)."""
        if self.model is None or self._snapshot is None:
            raise RuntimeError("reset() before prepare()")
        self.model.load_state_dict(self._snapshot)
        self.batches_adapted = 0
        self._configure(self.model)

    def runtime_state(self) -> dict:
        """Mid-stream method state beyond what lives in the model.

        Everything a checkpoint needs so that a freshly ``bind()``-ed
        twin of this method, pointed at a bit-identical model, continues
        the stream bit-identically: the adapted-batch counter plus any
        optimizer moments (methods owning an ``optimizer`` attribute,
        e.g. BN-Opt's Adam).  Model parameters and BN buffers are *not*
        included — they are the model's state, checkpointed separately.
        """
        state: dict = {"batches_adapted": self.batches_adapted}
        optimizer = getattr(self, "optimizer", None)
        if optimizer is not None:
            state["optimizer"] = optimizer.state_dict()
        return state

    def load_runtime_state(self, state: dict) -> None:
        """Restore :meth:`runtime_state` output onto a bound method."""
        self.batches_adapted = int(state["batches_adapted"])
        optimizer = getattr(self, "optimizer", None)
        if optimizer is not None and state.get("optimizer") is not None:
            optimizer.load_state_dict(state["optimizer"])

    def _require_model(self) -> Module:
        if self.model is None:
            raise RuntimeError(f"{self.name}: forward() before prepare()")
        return self.model

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
