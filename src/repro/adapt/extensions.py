"""Adaptation-algorithm extensions beyond the paper's two methods.

The paper's Section IV-G calls for "new hardware-aware adaptation
algorithms"; this module implements two published directions so the
study harness can benchmark them against BN-Norm/BN-Opt:

- :class:`BNNormSourceBlend` — Schneider et al. (NeurIPS 2020): instead
  of discarding the training-time statistics, blend them with the test
  batch's statistics using a source pseudo-count ``N``:
  ``mu = (N * mu_source + n * mu_batch) / (N + n)`` (and likewise for the
  variance).  With ``N = 0`` this degenerates to BN-Norm; large ``N``
  approaches No-Adapt.  Robust for small test batches — the regime the
  paper shows is cheapest on edge devices.

- :class:`BNOptSelective` — entropy-gated TENT in the spirit of EATA
  (Niu et al., ICML 2022): only samples whose prediction entropy is
  below ``entropy_threshold`` x ln(C) contribute to the adaptation loss,
  suppressing gradient noise from unconfident samples.  Because the
  gate shrinks the effective backward batch, it is also a *latency*
  lever: the device cost model charges backward for the gated
  fraction only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.adapt.base import AdaptationMethod, bn_layers, bn_parameters, configure_bn_only_grads
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad


class BNNormSourceBlend(AdaptationMethod):
    """BN statistics blending between source (training) and test batch.

    Parameters
    ----------
    source_count:
        Pseudo-count ``N`` of the source statistics.  The effective
        interpolation weight for the incoming batch of size ``n`` is
        ``n / (N + n)``.
    """

    name = "bn_norm_blend"
    does_backward = False
    adapts_bn_stats = True

    def __init__(self, source_count: int = 16):
        super().__init__()
        if source_count < 0:
            raise ValueError("source_count must be >= 0")
        self.source_count = source_count
        self._source_stats: list[tuple[np.ndarray, np.ndarray]] = []

    def _configure(self, model: Module) -> None:
        model.requires_grad_(False)
        # Keep the model in eval mode: we normalize with *our* blended
        # buffers, which we write into the running-stat slots per batch.
        model.eval()
        self._source_stats = [(layer.running_mean.copy(),
                               layer.running_var.copy())
                              for layer in bn_layers(model)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        model = self._require_model()
        n = x.shape[0]
        weight = n / (self.source_count + n)
        # Pass 1: collect the batch statistics of every BN layer's input
        # by running in train mode with momentum=1 (buffers <- batch).
        layers = bn_layers(model)
        source = self._source_stats
        model.train()
        saved_momentum = [layer.momentum for layer in layers]
        for layer in layers:
            layer.momentum = 1.0
        with no_grad():
            model(Tensor(x))
        # Blend source and batch statistics into the buffers, then run
        # the actual prediction pass in eval mode with the blend.
        for layer, (mu_s, var_s), momentum in zip(layers, source,
                                                  saved_momentum):
            mu_b = layer.running_mean.copy()
            var_b = layer.running_var.copy()
            layer.set_buffer("running_mean",
                             (1 - weight) * mu_s + weight * mu_b)
            layer.set_buffer("running_var",
                             (1 - weight) * var_s + weight * var_b)
            layer.momentum = momentum
        model.eval()
        with no_grad():
            logits = model(Tensor(x))
        self.batches_adapted += 1
        return logits.data


class BNOptSelective(AdaptationMethod):
    """Entropy-gated TENT: adapt only on confident samples.

    Parameters
    ----------
    lr:
        Adam learning rate over the BN affine parameters.
    entropy_threshold:
        Gate as a fraction of the maximum entropy ``ln(C)``; samples with
        per-sample entropy above ``entropy_threshold * ln(C)`` are
        excluded from the adaptation loss.  ``1.0`` disables the gate
        (plain BN-Opt).
    """

    name = "bn_opt_selective"
    does_backward = True
    adapts_bn_stats = True

    def __init__(self, lr: float = 1e-3, entropy_threshold: float = 0.4):
        super().__init__()
        if not 0.0 < entropy_threshold <= 1.0:
            raise ValueError("entropy_threshold must be in (0, 1]")
        self.lr = lr
        self.entropy_threshold = entropy_threshold
        self.optimizer: Optional[Adam] = None
        self.last_selected_fraction: Optional[float] = None
        self.last_entropy: Optional[float] = None

    def _configure(self, model: Module) -> None:
        model.train()
        configure_bn_only_grads(model)
        self.optimizer = Adam(list(bn_parameters(model)), lr=self.lr)

    def forward(self, x: np.ndarray) -> np.ndarray:
        model = self._require_model()
        if self.optimizer is None:
            raise RuntimeError("forward() before prepare()")
        logits = model(Tensor(x))
        logp = F.log_softmax(logits, axis=-1)
        p = logp.exp()
        per_sample = -(p * logp).sum(axis=-1)          # (N,)
        num_classes = logits.data.shape[-1]
        gate = (per_sample.data
                < self.entropy_threshold * np.log(num_classes)).astype(
                    np.float32)
        selected = float(gate.sum())
        self.last_selected_fraction = selected / len(gate)
        if selected > 0:
            loss = (per_sample * Tensor(gate)).sum() * (1.0 / selected)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            self.last_entropy = loss.item()
        self.batches_adapted += 1
        return logits.data
