"""BN-Opt: TENT — entropy minimization over BN affine parameters.

Section II-C of the paper (Wang et al. 2021): in addition to BN-Norm's
statistics re-estimation, each test batch drives a *single* backpropagation
pass that minimizes the Shannon entropy of the model's predictions with
respect to only the BN transformation parameters (gamma, beta — < 1% of the
total parameters), using Adam.  The forward pass must therefore build the
full dynamic autograd graph, which is what causes the paper's memory
blow-ups (3.12 / 5.1 GB graphs for ResNeXt) and the backward-pass time that
dominates BN-Opt's adaptation overhead.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.base import (AdaptationMethod,
                              bn_parameters,
                              configure_bn_only_grads)
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class BNOpt(AdaptationMethod):
    """TENT adaptation: BN statistics recompute + entropy-driven gamma/beta step.

    Parameters
    ----------
    lr:
        Adam learning rate for the BN affine parameters (TENT's CIFAR
        default is 1e-3).
    steps:
        Gradient steps per batch.  The paper uses a single pass
        (``steps=1``); larger values are exposed for ablations.
    update_before_predict:
        The paper (and TENT) report predictions from the same forward pass
        that computes the adaptation loss, i.e. the update benefits only
        *future* batches (``False``, default).  Setting ``True`` re-runs
        inference after the update — an ablation on the accuracy/latency
        trade-off.
    """

    name = "bn_opt"
    does_backward = True
    adapts_bn_stats = True

    def __init__(self, lr: float = 1e-3, steps: int = 1,
                 update_before_predict: bool = False):
        super().__init__()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.lr = lr
        self.steps = steps
        self.update_before_predict = update_before_predict
        self.optimizer: Adam | None = None
        self.trainable_params = 0
        self.last_entropy: float | None = None

    def _configure(self, model: Module) -> None:
        model.train()
        self.trainable_params = configure_bn_only_grads(model)
        self.optimizer = Adam(list(bn_parameters(model)), lr=self.lr)

    def forward(self, x: np.ndarray) -> np.ndarray:
        model = self._require_model()
        if self.optimizer is None:
            raise RuntimeError("forward() before prepare()")
        logits = None
        for _ in range(self.steps):
            logits = model(Tensor(x))          # train mode: stats recompute
            loss = F.entropy_loss(logits)
            self.optimizer.zero_grad()
            loss.backward()                    # the single backprop pass
            self.optimizer.step()
            self.last_entropy = loss.item()
        self.batches_adapted += 1
        if self.update_before_predict:
            from repro.tensor.tensor import no_grad
            with no_grad():
                logits = model(Tensor(x))
        assert logits is not None
        return logits.data
