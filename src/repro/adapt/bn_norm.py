"""BN-Norm: prediction-time re-estimation of BN normalization statistics.

Section II-B of the paper (Nado et al. 2020; Schneider et al. 2020): at
test time the model runs in ``train()`` mode so every BatchNorm layer
normalizes the incoming unlabeled batch with *that batch's* statistics
instead of the stale training-time running averages.  The affine
parameters (gamma, beta) and all other weights stay fixed, and no
backpropagation happens — which is why the paper finds BN-Norm to be the
lightweight option (only a forward-pass statistics recompute).
"""

from __future__ import annotations

import numpy as np

from repro.adapt.base import AdaptationMethod, bn_layers
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


class BNNorm(AdaptationMethod):
    """Recompute BN statistics from each incoming test batch.

    Parameters
    ----------
    momentum:
        Exponential-moving-average weight for the running buffers.
        ``1.0`` (the default, matching the paper's per-batch recompute)
        makes the buffers track exactly the most recent batch; smaller
        values blend the stream history (Schneider et al.'s ``N/(N+n)``
        style interpolation can be emulated this way) — exposed for the
        ablation benchmarks.
    """

    name = "bn_norm"
    does_backward = False
    adapts_bn_stats = True

    def __init__(self, momentum: float = 1.0):
        super().__init__()
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.momentum = momentum

    def _configure(self, model: Module) -> None:
        model.train()
        model.requires_grad_(False)
        for layer in bn_layers(model):
            layer.momentum = self.momentum

    def forward(self, x: np.ndarray) -> np.ndarray:
        model = self._require_model()
        with no_grad():
            logits = model(Tensor(x))
        self.batches_adapted += 1
        return logits.data
