"""Test-time unsupervised adaptation algorithms (the paper's Section II).

Three methods, all operating on unlabeled test batches:

- :class:`NoAdapt` — frozen model in eval mode (the paper's baseline).
- :class:`BNNorm` — prediction-time BN: re-estimate BN normalization
  statistics from the incoming batch (Nado et al. 2020, Schneider et al.
  2020).  No backpropagation.
- :class:`BNOpt` — TENT (Wang et al. 2021): re-estimate the statistics
  *and* optimize the BN affine parameters (gamma/beta) with a single
  entropy-minimization backprop step per batch using Adam.

All three share the :class:`AdaptationMethod` interface: ``prepare`` a
model once, then call ``forward`` per streamed batch; ``forward`` returns
logits for scoring and performs whatever adaptation the method defines —
matching the paper's measured "forward time (inference + any adaptation)".
"""

from repro.adapt.base import AdaptationMethod, bn_layers, bn_parameters, configure_bn_only_grads
from repro.adapt.bn_norm import BNNorm
from repro.adapt.bn_opt import BNOpt
from repro.adapt.diagnostics import AdaptationMonitor
from repro.adapt.extensions import BNNormSourceBlend, BNOptSelective
from repro.adapt.no_adapt import NoAdapt

#: the paper's three methods; extensions listed separately
METHOD_NAMES = ("no_adapt", "bn_norm", "bn_opt")
EXTENSION_METHOD_NAMES = ("bn_norm_blend", "bn_opt_selective")

_FACTORIES = {
    "no_adapt": NoAdapt,
    "bn_norm": BNNorm,
    "bn_opt": BNOpt,
    "bn_norm_blend": BNNormSourceBlend,
    "bn_opt_selective": BNOptSelective,
}


def build_method(name: str, **kwargs) -> AdaptationMethod:
    """Factory: build an adaptation method (paper or extension) by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown adaptation method {name!r}; choose from "
                       f"{METHOD_NAMES + EXTENSION_METHOD_NAMES}") from None
    return factory(**kwargs)


__all__ = [
    "AdaptationMethod",
    "NoAdapt",
    "BNNorm",
    "BNOpt",
    "AdaptationMonitor",
    "BNNormSourceBlend",
    "BNOptSelective",
    "bn_layers",
    "bn_parameters",
    "configure_bn_only_grads",
    "build_method",
    "METHOD_NAMES",
    "EXTENSION_METHOD_NAMES",
]
