"""Adaptation diagnostics: observe what an adapting model is doing.

In an unsupervised deployment there are no labels to tell whether
adaptation is helping, so operators need label-free health signals.
:class:`AdaptationMonitor` wraps any :class:`AdaptationMethod` and
tracks, per batch:

- **statistics drift** — mean L2 distance between each BN layer's
  current running statistics and its pristine (source) statistics: how
  far the model has walked from its training distribution;
- **prediction entropy** — the unsupervised confidence signal TENT
  minimizes;
- **prediction churn** — the fraction of repeated-input predictions that
  would change between consecutive batches (estimated on a fixed probe
  batch when provided): instability under adaptation.

These are the observability hooks the paper's deployment scenarios
(drones, remote spectroscopy, medical scanners) would need in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.adapt.base import AdaptationMethod, bn_layers
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class BatchDiagnostics:
    """Health signals for one adaptation batch."""

    batch_index: int
    mean_entropy: float
    stats_drift: float
    prediction_churn: Optional[float]   # None when no probe batch is set


class AdaptationMonitor:
    """Wrap an adaptation method with label-free health tracking.

    Use exactly like the wrapped method::

        monitor = AdaptationMonitor(BNOpt(lr=1e-3), probe=probe_images)
        monitor.prepare(model)
        logits = monitor.forward(batch)     # adapts + records diagnostics
        monitor.history[-1].stats_drift
    """

    def __init__(self, method: AdaptationMethod,
                 probe: Optional[np.ndarray] = None):
        self.method = method
        self.probe = probe
        self.history: List[BatchDiagnostics] = []
        self._source_stats: List[np.ndarray] = []
        self._last_probe_predictions: Optional[np.ndarray] = None

    # -- delegation -----------------------------------------------------
    @property
    def name(self) -> str:
        return f"monitored({self.method.name})"

    def prepare(self, model) -> "AdaptationMonitor":
        self.method.prepare(model)
        self._source_stats = collect_bn_stats(model)
        self.history.clear()
        self._last_probe_predictions = None
        return self

    def reset(self) -> None:
        self.method.reset()
        self.history.clear()
        self._last_probe_predictions = None

    # -- the instrumented step -------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        logits = self.method.forward(x)
        model = self.method.model
        assert model is not None

        entropy = float(_mean_entropy(logits))
        drift = self._stats_drift(model)
        churn = self._probe_churn(model)
        self.history.append(BatchDiagnostics(
            batch_index=len(self.history), mean_entropy=entropy,
            stats_drift=drift, prediction_churn=churn))
        return logits

    # -- signals ----------------------------------------------------------
    def _stats_drift(self, model) -> float:
        return stats_drift(model, self._source_stats)

    def _probe_churn(self, model) -> Optional[float]:
        if self.probe is None:
            return None
        was_training = model.training
        model.eval()
        with no_grad():
            predictions = model(Tensor(self.probe)).data.argmax(axis=-1)
        if was_training:
            model.train()
        churn = None
        if self._last_probe_predictions is not None:
            churn = float((predictions != self._last_probe_predictions).mean())
        self._last_probe_predictions = predictions
        return churn

    # -- summaries ---------------------------------------------------------
    def drift_trajectory(self) -> List[float]:
        return [d.stats_drift for d in self.history]

    def entropy_trajectory(self) -> List[float]:
        return [d.mean_entropy for d in self.history]

    def max_churn(self) -> float:
        values = [d.prediction_churn for d in self.history
                  if d.prediction_churn is not None]
        return max(values) if values else 0.0


def _mean_entropy(logits: np.ndarray) -> float:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - log_z
    return float(-(np.exp(logp) * logp).sum(axis=-1).mean())


# ----------------------------------------------------------------------
# Label-free health signals (shared with the robustness guard layer)
# ----------------------------------------------------------------------
def mean_prediction_entropy(logits: np.ndarray) -> float:
    """Mean per-sample Shannon entropy of softmax(logits), in nats."""
    return _mean_entropy(logits)


def collect_bn_stats(model) -> List[np.ndarray]:
    """Per-BN-layer concatenated (running_mean, running_var) vectors."""
    return [np.concatenate([layer.running_mean, layer.running_var])
            for layer in bn_layers(model)]


def stats_drift(model, source_stats: List[np.ndarray]) -> float:
    """Mean normalized L2 distance of BN running stats from ``source_stats``.

    ``source_stats`` is a :func:`collect_bn_stats` snapshot of the pristine
    model.  Scale-normalized by ``sqrt(dim)`` per layer so models of any
    width are comparable; NaN in either side propagates (a drift of NaN is
    itself a guard violation).
    """
    current = collect_bn_stats(model)
    if not current:
        return 0.0
    distances = [float(np.linalg.norm(now - src) / np.sqrt(now.size))
                 for now, src in zip(current, source_stats)]
    return float(np.mean(distances))


def has_nonfinite_bn_state(model) -> bool:
    """True when any BN running buffer or affine parameter is NaN/Inf."""
    for layer in bn_layers(model):
        for array in (layer.running_mean, layer.running_var,
                      layer.weight.data, layer.bias.data):
            if not np.isfinite(array).all():
                return True
    return False
