"""Magnitude pruning: unstructured and structured (channel) variants.

Unstructured pruning zeroes individual weights; on the paper's devices
(dense ARM/GPU kernels) it saves *no* time — only structured pruning,
which removes whole output channels and therefore MACs, does.  Both are
implemented so the ablation bench can show that distinction, and the
accuracy effect of either is measurable natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro import nn
from repro.nn.module import Module


def _prunable_layers(model: Module) -> List[Tuple[str, nn.Conv2d]]:
    return [(name, module) for name, module in model.named_modules()
            if isinstance(module, (nn.Conv2d, nn.Linear))]


def sparsity(model: Module) -> float:
    """Fraction of zero weights across conv/linear layers."""
    total = 0
    zeros = 0
    for _, module in _prunable_layers(model):
        total += module.weight.data.size
        zeros += int((module.weight.data == 0).sum())
    return zeros / total if total else 0.0


@dataclass
class PruneReport:
    """Outcome of a pruning pass."""

    target_sparsity: float
    achieved_sparsity: float
    structured: bool
    #: per-layer fraction of output channels fully zeroed (structured)
    channel_sparsity: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_channel_sparsity(self) -> float:
        if not self.channel_sparsity:
            return 0.0
        return float(np.mean(list(self.channel_sparsity.values())))

    def structured_mac_factor(self) -> float:
        """Approximate MAC multiplier after structured pruning.

        Removing a fraction ``s`` of output channels removes the same
        fraction of that layer's MACs (and of downstream input channels,
        which we conservatively ignore), so the factor is ``1 - s``.
        """
        return 1.0 - self.mean_channel_sparsity


def magnitude_prune(model: Module, target_sparsity: float) -> PruneReport:
    """Globally zero the smallest-magnitude weights (unstructured).

    A single global threshold over all conv/linear weights, matching the
    classic lottery-ticket-style global magnitude criterion.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in [0, 1)")
    layers = _prunable_layers(model)
    if not layers:
        raise ValueError("model has no prunable layers")
    magnitudes = np.concatenate([np.abs(m.weight.data).reshape(-1)
                                 for _, m in layers])
    if target_sparsity == 0.0:
        return PruneReport(0.0, sparsity(model), structured=False)
    threshold = np.quantile(magnitudes, target_sparsity)
    for _, module in layers:
        weight = module.weight.data
        weight[np.abs(weight) <= threshold] = 0.0
    return PruneReport(target_sparsity, sparsity(model), structured=False)


def structured_channel_prune(model: Module,
                             target_sparsity: float) -> PruneReport:
    """Zero whole output channels by L1 norm, per conv layer.

    Channels (entire ``weight[c]`` slices and the matching bias entries)
    with the smallest L1 norms are zeroed; at least one channel per
    layer survives.  Shapes are preserved — zeroed channels still flow
    through our dense engine — but the report's
    :meth:`PruneReport.structured_mac_factor` tells the cost model what
    a shape-shrinking deployment would save.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in [0, 1)")
    report = PruneReport(target_sparsity, 0.0, structured=True)
    for name, module in model.named_modules():
        if not isinstance(module, nn.Conv2d):
            continue
        weight = module.weight.data
        out_channels = weight.shape[0]
        to_remove = min(int(round(target_sparsity * out_channels)),
                        out_channels - 1)
        if to_remove <= 0:
            report.channel_sparsity[name] = 0.0
            continue
        norms = np.abs(weight).reshape(out_channels, -1).sum(axis=1)
        victims = np.argsort(norms)[:to_remove]
        weight[victims] = 0.0
        if module.bias is not None:
            module.bias.data[victims] = 0.0
        report.channel_sparsity[name] = to_remove / out_channels
    report.achieved_sparsity = sparsity(model)
    return report
