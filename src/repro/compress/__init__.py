"""Model compression: quantization and pruning (paper insight iv).

Section IV-G(iv): "while the above results are using unpruned and full
precision models, pruning and quantization should be explored.  However,
care must be taken that any model reduction should not compromise the
robust accuracy against corruptions."  This package supplies that
exploration:

- :mod:`repro.compress.quantize` — fake-quantization (uniform symmetric,
  per-tensor or per-channel) of weights and inputs, so the *accuracy*
  effect of low precision is measurable natively; plus cost helpers that
  project the latency/memory effect onto the device models.
- :mod:`repro.compress.prune` — magnitude pruning, unstructured (no
  speedup on the paper's devices, documented) and structured channel
  pruning (which does reduce MACs).

The ablation bench ``benchmarks/test_ablation_compression.py`` combines
these with the adaptation algorithms to answer the paper's open
question.
"""

from repro.compress.prune import (
    PruneReport,
    magnitude_prune,
    sparsity,
    structured_channel_prune,
)
from repro.compress.quantize import (
    QuantReport,
    quantize_model_weights,
    quantize_tensor,
    quantized_cost,
)

__all__ = [
    "quantize_tensor",
    "quantize_model_weights",
    "quantized_cost",
    "QuantReport",
    "magnitude_prune",
    "structured_channel_prune",
    "sparsity",
    "PruneReport",
]
