"""Fake quantization and its projected device cost.

Uniform symmetric quantization: ``q = clip(round(x / s), -Q, Q) * s``
with ``Q = 2^(bits-1) - 1`` and scale ``s = max|x| / Q`` (per tensor or
per output channel).  "Fake" means values stay float32 — exactly the
simulated-quantization technique frameworks use to evaluate accuracy —
so the quantized models run unmodified on the numpy engine, and the
accuracy impact of 8/6/4-bit weights on corruption robustness and BN
adaptation is directly measurable.

The cost projection (:func:`quantized_cost`) applies standard edge
arithmetic: int8 roughly doubles effective MAC throughput on both ARM
NEON and Volta DP4A paths, and weight memory shrinks by 32/bits; BN
statistics work stays float (both algorithms re-estimate in fp32, which
is also why adaptation keeps working after weight quantization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import nn
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary
from repro.nn.module import Module


def quantize_tensor(values: np.ndarray, bits: int,
                    channel_axis: Optional[int] = None) -> np.ndarray:
    """Fake-quantize an array to ``bits`` (symmetric uniform).

    ``channel_axis`` selects per-channel scales (one per slice along the
    axis), which preserves accuracy much better for conv weights.

    ``bits=16`` is special-cased as an IEEE float16 round trip rather
    than uniform quantization — the paper's Section I notes that
    "robustness to corruptions has not been well explored for float16 or
    lower types", and half precision is what edge frameworks actually
    deploy at 16 bits.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    if bits == 16:
        return values.astype(np.float16).astype(values.dtype)
    levels = 2 ** (bits - 1) - 1
    if channel_axis is None:
        max_abs = np.abs(values).max()
        scale = max_abs / levels if max_abs > 0 else 1.0
    else:
        reduce_axes = tuple(i for i in range(values.ndim) if i != channel_axis)
        max_abs = np.abs(values).max(axis=reduce_axes, keepdims=True)
        scale = np.where(max_abs > 0, max_abs / levels, 1.0)
    quantized = np.clip(np.round(values / scale), -levels, levels) * scale
    return quantized.astype(values.dtype)


@dataclass
class QuantReport:
    """What quantization did to a model's weights."""

    bits: int
    per_channel: bool
    layers: List[Tuple[str, float]] = field(default_factory=list)  # (name, rmse)

    @property
    def mean_rmse(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([rmse for _, rmse in self.layers]))


def quantize_model_weights(model: Module, bits: int,
                           per_channel: bool = True) -> QuantReport:
    """Fake-quantize every conv/linear weight in place.

    BN affine parameters and biases stay float (standard practice: they
    fold into the accumulators), which keeps BN-Opt's optimization
    target full-precision.  Returns a per-layer RMSE report.
    """
    report = QuantReport(bits=bits, per_channel=per_channel)
    for name, module in model.named_modules():
        if isinstance(module, (nn.Conv2d, nn.Linear)):
            original = module.weight.data.copy()
            axis = 0 if per_channel else None
            module.weight.data = quantize_tensor(original, bits,
                                                 channel_axis=axis)
            rmse = float(np.sqrt(np.mean((module.weight.data - original) ** 2)))
            report.layers.append((name, rmse))
    return report


#: throughput multiplier for integer arithmetic relative to fp32
_SPEEDUP_BY_BITS = {16: 2.0, 8: 2.0, 6: 2.0, 4: 3.0}


def quantized_cost(summary: ModelSummary, batch_size: int,
                   device: DeviceSpec, *, adapts_bn_stats: bool,
                   does_backward: bool, bits: int = 8
                   ) -> Tuple[float, float, float]:
    """Project (time s, energy J, weight MB) for a weight-quantized model.

    Conv/linear forward phases speed up by the integer-arithmetic factor;
    BN statistics work and any backward pass stay float (backward needs
    float gradients — which is precisely why quantization helps BN-Opt
    far less than No-Adapt, reproducing the asymmetry insight iv warns
    about).
    """
    if bits not in _SPEEDUP_BY_BITS and bits != 32:
        raise ValueError(f"unsupported bits {bits}; choose 4, 6, 8, 16, or 32")
    base = forward_latency(summary, batch_size, device,
                           adapts_bn_stats=adapts_bn_stats,
                           does_backward=does_backward)
    speedup = 1.0 if bits == 32 else _SPEEDUP_BY_BITS[bits]
    quantized = type(base)(
        batch_size=base.batch_size,
        conv_fw_s=base.conv_fw_s / speedup,
        bn_fw_s=base.bn_fw_s,
        bn_adapt_s=base.bn_adapt_s,
        elementwise_fw_s=base.elementwise_fw_s,
        overhead_fw_s=base.overhead_fw_s,
        conv_bw_s=base.conv_bw_s,             # backward stays fp32
        bn_bw_s=base.bn_bw_s,
        elementwise_bw_s=base.elementwise_bw_s,
        optimizer_s=base.optimizer_s,
        overhead_bw_s=base.overhead_bw_s,
    )
    weight_mb = summary.total_params * (bits / 8) / 1e6
    return (quantized.forward_time_s, energy_per_batch(quantized, device),
            weight_mb)
