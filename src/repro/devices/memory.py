"""Memory high-water-mark model, including the dynamic autograd graph.

The paper's memory findings all trace to one mechanism: "To perform
backpropagation, Pytorch creates a dynamic computational graph during
forward pass" whose size scales with batch size and with the activations
the graph retains.  The paper measured 3.12 GB (batch 100) and 5.1 GB
(batch 200) for ResNeXt, producing three OOM events:

- ResNeXt + BN-Opt at batch 100/200 on the 2 GB Ultra96-v2,
- ResNeXt + BN-Opt at batch 200 on the Xavier NX *GPU* (the 8 GB are
  shared and "loading of extra cuDNN libraries" eats the headroom),
- the Autograd profiler on ResNeXt even at batch 50 on Ultra96-v2.

The model here: graph bytes = ``batch * saved_activation_elements * 4 *
GRAPH_RETENTION`` where the retention factor accounts for tensors shared
between adjacent ops in PyTorch's graph.  ``GRAPH_RETENTION`` is
calibrated so ResNeXt at batch 100 gives 3.12 GB; every paper OOM event
then falls out and is asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary

#: fraction of traced 'saved activation' elements the autograd graph
#: actually retains (adjacent ops share tensors).  Calibrated:
#: 3.12e9 / (100 * 13.83e6 * 4) for ResNeXt-29 at batch 100.
GRAPH_RETENTION = 0.564

#: extra memory multiplier while the Autograd profiler is attached
#: (records + per-op bookkeeping); chosen so profiling ResNeXt + BN-Opt
#: at batch 50 exceeds the Ultra96's 2 GB, as the paper reports.
PROFILER_OVERHEAD = 1.15

#: transient working-set multiplier for inference (input + output of the
#: live layer, im2col scratch)
_INFERENCE_WORKING_FACTOR = 2.0


class OutOfMemoryError(RuntimeError):
    """Raised when a configuration exceeds the device memory budget."""

    def __init__(self, message: str, estimate: "MemoryEstimate"):
        super().__init__(message)
        self.estimate = estimate


@dataclass(frozen=True)
class MemoryEstimate:
    """Byte-level footprint of one (model, batch, method, device) config."""

    weights_bytes: float
    graph_bytes: float          # dynamic autograd graph (BN-Opt only)
    working_bytes: float        # transient inference working set
    optimizer_bytes: float      # Adam moments over BN affine params
    framework_bytes: float      # resident framework + accelerator libraries
    budget_bytes: float         # device budget (total - OS reservation)

    @property
    def total_bytes(self) -> float:
        return (self.weights_bytes + self.graph_bytes + self.working_bytes
                + self.optimizer_bytes + self.framework_bytes)

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.budget_bytes

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9

    @property
    def graph_gb(self) -> float:
        return self.graph_bytes / 1e9


def estimate_memory(summary: ModelSummary, batch_size: int,
                    device: DeviceSpec, *, does_backward: bool,
                    profiling: bool = False) -> MemoryEstimate:
    """Estimate the memory high-water mark for one configuration."""
    weights = summary.weight_bytes()
    working = batch_size * summary.peak_activation_elements * 4 * _INFERENCE_WORKING_FACTOR
    graph = 0.0
    optimizer = 0.0
    if does_backward:
        graph = batch_size * summary.saved_activation_elements * 4 * GRAPH_RETENTION
        if profiling:
            graph *= PROFILER_OVERHEAD
        # Adam keeps two moments per trainable (BN affine) parameter,
        # plus the gradients themselves.
        optimizer = summary.bn_params * 4 * 3
    framework = device.framework_bytes + device.accel_library_bytes
    return MemoryEstimate(
        weights_bytes=weights,
        graph_bytes=graph,
        working_bytes=working,
        optimizer_bytes=optimizer,
        framework_bytes=framework,
        budget_bytes=device.memory_budget_bytes,
    )


def check_memory(summary: ModelSummary, batch_size: int, device: DeviceSpec,
                 *, does_backward: bool, profiling: bool = False) -> MemoryEstimate:
    """Like :func:`estimate_memory` but raises :class:`OutOfMemoryError`."""
    estimate = estimate_memory(summary, batch_size, device,
                               does_backward=does_backward, profiling=profiling)
    if not estimate.fits:
        raise OutOfMemoryError(
            f"{summary.model_name} batch={batch_size} needs "
            f"{estimate.total_gb:.2f} GB (graph {estimate.graph_gb:.2f} GB) "
            f"but {device.display_name} provides "
            f"{estimate.budget_bytes / 1e9:.2f} GB",
            estimate,
        )
    return estimate
