"""Energy model and simulated wall-outlet power meter.

The paper measures per-batch energy with a Kuman wall power meter; the
reported Joules are the energy drawn above idle during the forward (+
adaptation) window.  Our model assigns each latency phase a device power
(forward compute, memory-bound statistics recompute, backward compute)
and integrates.  :class:`PowerMeter` additionally produces a sampled
power-vs-time trace like a physical meter would, which the examples plot
as ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.devices.cost_model import LatencyBreakdown
from repro.devices.spec import DeviceSpec


def energy_per_batch(breakdown: LatencyBreakdown, device: DeviceSpec) -> float:
    """Joules for one adaptation batch: sum of phase power x phase time."""
    return (breakdown.forward_phase_s * device.power_forward_w
            + breakdown.adapt_phase_s * device.power_adapt_w
            + breakdown.backward_phase_s * device.power_backward_w)


@dataclass
class PowerMeter:
    """Simulated wall power meter sampling at ``sample_hz``.

    ``record`` appends the piecewise-constant power waveform of one batch
    (forward -> adapt -> backward) with mild measurement noise, mirroring
    how the paper's per-batch powers were captured and then averaged.
    """

    device: DeviceSpec
    sample_hz: float = 10.0
    noise_w: float = 0.02
    seed: int = 0
    _samples: List[Tuple[float, float]] = field(default_factory=list)
    _clock_s: float = 0.0

    def record(self, breakdown: LatencyBreakdown) -> float:
        """Sample one batch's waveform; returns measured energy (J)."""
        rng = np.random.default_rng(self.seed + len(self._samples))
        phases = [
            (breakdown.forward_phase_s, self.device.power_forward_w),
            (breakdown.adapt_phase_s, self.device.power_adapt_w),
            (breakdown.backward_phase_s, self.device.power_backward_w),
        ]
        measured = 0.0
        for duration, power in phases:
            if duration <= 0.0:
                continue
            count = max(int(duration * self.sample_hz), 1)
            for _ in range(count):
                sample = power + rng.normal(0.0, self.noise_w)
                self._samples.append((self._clock_s, sample))
                self._clock_s += duration / count
                measured += sample * duration / count
        return measured

    @property
    def trace(self) -> List[Tuple[float, float]]:
        """(time s, power W) samples recorded so far."""
        return list(self._samples)

    def average_power_w(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean([power for _, power in self._samples]))

    def reset(self) -> None:
        self._samples.clear()
        self._clock_s = 0.0
