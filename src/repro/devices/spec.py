"""Device specification: every constant of the latency/energy/memory models.

A :class:`DeviceSpec` is the "device half" of the simulator.  The
"workload half" comes from :class:`repro.models.summary.ModelSummary`.
Constants are calibrated against the paper's reported measurements
(see :mod:`repro.devices.calibrate`); the docstrings below say which
observable each constant controls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Analytical model of one edge device (or one accelerator on it).

    Latency model (per adaptation batch of size B, model summary S):

    - conv forward: ``B * [dense/thr + grouped/(thr*grouped_eff) +
      depthwise/(thr*depthwise_eff)]`` with ``thr = dense_gmacs_per_s``.
    - BN inference forward: ``B * S.bn_elements / bn_elems_per_s``.
    - elementwise (activations/pooling): ``B * S.act_elements /
      elementwise_elems_per_s``.
    - BN statistics recompute (BN-Norm/BN-Opt only):
      ``B * S.bn_elements * bn_adapt_s_per_elem +
      S.bn_channels * bn_adapt_s_per_channel +
      S.bn_layer_count * bn_adapt_s_per_layer``.
    - backward (BN-Opt only): per-phase multiples of the forward times
      (``conv_bw_factor``, ``bn_bw_factor``, ``elementwise_bw_factor``)
      plus the optimizer update and dispatch overheads.
    """

    name: str
    display_name: str
    kind: str                      # "cpu" | "gpu"
    description: str

    # --- latency ---------------------------------------------------------
    #: effective dense-convolution throughput (GMAC/s, fitted)
    dense_gmacs_per_s: float
    #: throughput derate for grouped convolutions (ResNeXt)
    grouped_efficiency: float
    #: throughput derate for depthwise convolutions (MobileNet)
    depthwise_efficiency: float
    #: BN normalization throughput in eval/inference (elements/s)
    bn_elems_per_s: float
    #: activation / pooling / residual-add throughput (elements/s)
    elementwise_elems_per_s: float
    #: BN statistics-recompute cost, per element (s)
    bn_adapt_s_per_elem: float
    #: BN statistics-recompute cost, per channel (s) — reduce/update tails
    bn_adapt_s_per_channel: float
    #: BN statistics-recompute cost, per BN layer (s) — dispatch
    bn_adapt_s_per_layer: float
    #: backward/forward time ratio for convolutions (paper Figs. 4/7/10)
    conv_bw_factor: float
    #: backward time relative to the *adapted* BN forward time
    bn_bw_factor: float
    #: backward/forward ratio for elementwise ops
    elementwise_bw_factor: float
    #: fixed per-batch forward dispatch overhead (s)
    forward_overhead_s: float
    #: fixed per-batch backward dispatch overhead (s)
    backward_overhead_s: float
    #: optimizer update cost per trainable parameter (s)
    optimizer_s_per_param: float

    # --- power (wall-meter deltas, W) -------------------------------------
    #: power draw during forward compute
    power_forward_w: float
    #: power draw during the BN statistics-recompute phase (memory bound)
    power_adapt_w: float
    #: power draw during backward compute
    power_backward_w: float

    # --- memory ------------------------------------------------------------
    #: physical DRAM (GB)
    memory_total_gb: float
    #: OS + background services reservation (GB)
    os_reserved_gb: float
    #: resident framework footprint (PyTorch for ARM etc.), bytes
    framework_bytes: float
    #: accelerator libraries loaded on first kernel launch (cuDNN), bytes
    accel_library_bytes: float

    @property
    def memory_budget_bytes(self) -> float:
        """Bytes available to the adaptation process."""
        return (self.memory_total_gb - self.os_reserved_gb) * 1e9

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Copy with selected constants replaced (used for ablations)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return f"{self.display_name} ({self.kind}, {self.memory_total_gb:g} GB)"
