"""Device catalog: the paper's three edge devices (four compute targets).

Constants were fitted against the paper's reported anchor measurements
(Section IV); `repro.devices.calibrate` holds the anchor table and the
refitting machinery, and `tests/test_devices/test_calibration.py` asserts
that these frozen values still reproduce the anchors within tolerance.

Fitted observables include (device: anchors):

- Ultra96-v2: WRN-AM-50 forward times 3.58 / 3.95 / 13.35 s and energies
  4.47 / 4.93 / 14.35 J for No-Adapt / BN-Norm / BN-Opt; mean BN-Norm
  overhead 1.40 s; mean BN-Opt overhead 30.27 s; BN-fw adaptation ratios
  (~3.68x WRN, ~4.71x R18); conv backward ratio <= 2.51x; BN backward
  ratio <= 2.78x.
- Raspberry Pi 4: WRN-AM-50 2.04 / 2.59 / 7.97 s and 5.04 / 5.95 /
  19.12 J; mean overheads 0.86 / 24.9 s; BN-fw ratio <= 4.6x;
  RXT-AM-200 BN-Opt energy ~337 J.
- Xavier NX CPU: RXT-AM-200 BN-Opt 69.58 s; ~2.2x lower power than GPU.
- Xavier NX GPU: WRN-AM-50 0.10 / 0.315 / 0.82 s and 1.02 / 2.96 /
  7.96 J; MobileNet Table I; GPU speedups ~90.5 / 68 / 79 %; conv
  backward ratio ~2.2x; BN stat recompute *slower per element than the
  CPU's* (the paper's "forward BN performance is worse ... using GPU").
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.spec import DeviceSpec

ULTRA96 = DeviceSpec(
    name="ultra96",
    display_name="Ultra96-v2 FPGA PS (4x Cortex-A53)",
    kind="cpu",
    description=("Xilinx Zynq UltraScale+ MPSoC processing system, quad "
                 "Cortex-A53 @ 1.5 GHz, 2 GB LPDDR4, Pynq/Petalinux, "
                 "PyTorch 1.8 for ARM (multi-threaded). PL fabric unused."),
    dense_gmacs_per_s=4.86,
    grouped_efficiency=0.45,
    depthwise_efficiency=0.40,
    bn_elems_per_s=0.255e9,
    elementwise_elems_per_s=0.8e9,
    bn_adapt_s_per_elem=5.0e-9,
    bn_adapt_s_per_channel=7.2e-5,
    bn_adapt_s_per_layer=0.0,
    conv_bw_factor=2.35,
    bn_bw_factor=2.78,
    elementwise_bw_factor=1.0,
    forward_overhead_s=0.03,
    backward_overhead_s=0.02,
    optimizer_s_per_param=1.0e-7,
    power_forward_w=1.25,
    power_adapt_w=1.19,
    power_backward_w=1.00,
    memory_total_gb=2.0,
    os_reserved_gb=0.10,
    framework_bytes=150e6,
    accel_library_bytes=0.0,
)

RPI4 = DeviceSpec(
    name="rpi4",
    display_name="Raspberry Pi 4 Model B (4x Cortex-A72)",
    kind="cpu",
    description=("Quad Cortex-A72 @ 1.5 GHz, 8 GB LPDDR4, Ubuntu 21.04, "
                 "PyTorch 1.8 for ARM (multi-threaded)."),
    dense_gmacs_per_s=9.11,
    grouped_efficiency=0.45,
    depthwise_efficiency=0.40,
    bn_elems_per_s=0.18e9,
    elementwise_elems_per_s=1.4e9,
    bn_adapt_s_per_elem=2.73e-9,
    bn_adapt_s_per_channel=0.0,
    bn_adapt_s_per_layer=0.0123,
    conv_bw_factor=2.30,
    bn_bw_factor=1.58,
    elementwise_bw_factor=1.0,
    forward_overhead_s=0.02,
    backward_overhead_s=0.02,
    optimizer_s_per_param=5.0e-8,
    power_forward_w=2.47,
    power_adapt_w=1.65,
    power_backward_w=2.45,
    memory_total_gb=8.0,
    os_reserved_gb=0.40,
    framework_bytes=250e6,
    accel_library_bytes=0.0,
)

XAVIER_NX_CPU = DeviceSpec(
    name="xavier_nx_cpu",
    display_name="Jetson Xavier NX (6x Carmel CPU)",
    kind="cpu",
    description=("6-core Nvidia Carmel ARM @ 1.9 GHz, 8 GB LPDDR4 shared "
                 "with the GPU, Jetpack 4.4 / Linux4Tegra, PyTorch 1.8 "
                 "multi-threaded on the CPU cluster."),
    dense_gmacs_per_s=16.0,
    grouped_efficiency=0.45,
    depthwise_efficiency=0.40,
    bn_elems_per_s=1.8e9,
    elementwise_elems_per_s=2.8e9,
    bn_adapt_s_per_elem=1.4e-9,
    bn_adapt_s_per_channel=0.0,
    bn_adapt_s_per_layer=0.006,
    conv_bw_factor=2.50,
    bn_bw_factor=1.40,
    elementwise_bw_factor=1.0,
    forward_overhead_s=0.02,
    backward_overhead_s=0.02,
    optimizer_s_per_param=3.0e-8,
    power_forward_w=4.6,
    power_adapt_w=4.1,
    power_backward_w=4.8,
    memory_total_gb=8.0,
    os_reserved_gb=0.80,
    framework_bytes=300e6,
    accel_library_bytes=0.0,
)

XAVIER_NX_GPU = DeviceSpec(
    name="xavier_nx_gpu",
    display_name="Jetson Xavier NX (384-core Volta GPU)",
    kind="gpu",
    description=("384-core Volta @ 1.1 GHz, CUDA 10.2 + cuDNN 8.0, 8 GB "
                 "LPDDR4 shared with the CPU, PyTorch 1.8 CUDA build."),
    dense_gmacs_per_s=204.0,
    grouped_efficiency=0.50,
    depthwise_efficiency=0.25,
    bn_elems_per_s=4.0e9,
    elementwise_elems_per_s=5.0e9,
    # Per-element stat recompute is *more* expensive than on the Carmel
    # CPU (1.4e-9): batch statistics are a reduction-heavy, low-arithmetic
    # intensity kernel that Volta accelerates poorly — reproducing the
    # paper's observation that BN forward is worse on GPU for ResNeXt.
    bn_adapt_s_per_elem=6.1e-9,
    bn_adapt_s_per_channel=0.0,
    bn_adapt_s_per_layer=0.0,
    conv_bw_factor=2.20,
    bn_bw_factor=1.30,
    elementwise_bw_factor=1.0,
    forward_overhead_s=0.012,
    backward_overhead_s=0.03,
    optimizer_s_per_param=1.0e-8,
    power_forward_w=10.2,
    power_adapt_w=9.0,
    power_backward_w=10.6,
    memory_total_gb=8.0,
    os_reserved_gb=0.80,
    framework_bytes=300e6,
    accel_library_bytes=2.0e9,
)

_CATALOG: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (ULTRA96, RPI4, XAVIER_NX_CPU, XAVIER_NX_GPU)
}

DEVICE_NAMES = tuple(_CATALOG)


def device_info(name: str) -> DeviceSpec:
    """Look up a device spec by canonical name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; choose from {DEVICE_NAMES}") from None


def list_devices() -> List[DeviceSpec]:
    """All catalogued devices in canonical order."""
    return [_CATALOG[name] for name in DEVICE_NAMES]
