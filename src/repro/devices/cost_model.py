"""Latency model: per-phase forward/backward time decomposition.

Mirrors the paper's measurement methodology: the reported "forward time"
is inference *plus* any adaptation work (BN statistics recompute for
BN-Norm/BN-Opt, plus one full backpropagation + optimizer step for
BN-Opt).  The decomposition into conv/BN forward/backward phases is what
the paper's Autograd-profiler figures (4, 7, 10) show, and what
:mod:`repro.profiling` renders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase seconds for one adaptation batch.

    ``forward_time`` (the paper's reported metric) is the sum of every
    phase; the ``fw`` / ``adapt`` / ``bw`` groupings drive the per-phase
    energy model.
    """

    batch_size: int
    conv_fw_s: float
    bn_fw_s: float            # BN normalization in inference
    bn_adapt_s: float         # extra statistics-recompute work (0 for No-Adapt)
    elementwise_fw_s: float
    overhead_fw_s: float
    conv_bw_s: float
    bn_bw_s: float
    elementwise_bw_s: float
    optimizer_s: float
    overhead_bw_s: float

    # ------------------------------------------------------------------
    @property
    def forward_phase_s(self) -> float:
        """Pure-inference forward work (powered at ``power_forward_w``)."""
        return (self.conv_fw_s + self.bn_fw_s + self.elementwise_fw_s
                + self.overhead_fw_s)

    @property
    def adapt_phase_s(self) -> float:
        """Statistics-recompute work (powered at ``power_adapt_w``)."""
        return self.bn_adapt_s

    @property
    def backward_phase_s(self) -> float:
        """Backprop + optimizer work (powered at ``power_backward_w``)."""
        return (self.conv_bw_s + self.bn_bw_s + self.elementwise_bw_s
                + self.optimizer_s + self.overhead_bw_s)

    @property
    def forward_time_s(self) -> float:
        """Total per-batch 'forward time' in the paper's sense."""
        return self.forward_phase_s + self.adapt_phase_s + self.backward_phase_s

    @property
    def bn_fw_total_s(self) -> float:
        """BN forward including adaptation — the 'bn fw' bar in Figs 4/7/10."""
        return self.bn_fw_s + self.bn_adapt_s

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """Uniformly scale every phase (used by profiler overhead modeling)."""
        return LatencyBreakdown(
            batch_size=self.batch_size,
            **{name: getattr(self, name) * factor
               for name in ("conv_fw_s", "bn_fw_s", "bn_adapt_s",
                            "elementwise_fw_s", "overhead_fw_s", "conv_bw_s",
                            "bn_bw_s", "elementwise_bw_s", "optimizer_s",
                            "overhead_bw_s")},
        )


def _conv_forward_seconds(summary: ModelSummary, batch_size: int,
                          device: DeviceSpec) -> float:
    split = summary.macs_by_flavor()
    thr = device.dense_gmacs_per_s * 1e9
    per_sample = (split["dense"] / thr
                  + split["grouped"] / (thr * device.grouped_efficiency)
                  + split["depthwise"] / (thr * device.depthwise_efficiency))
    return batch_size * per_sample


def forward_latency(summary: ModelSummary, batch_size: int,
                    device: DeviceSpec, *, adapts_bn_stats: bool,
                    does_backward: bool) -> LatencyBreakdown:
    """Latency of one streamed batch for a (model, device, method) triple.

    ``adapts_bn_stats`` / ``does_backward`` are the two flags the
    :class:`~repro.adapt.base.AdaptationMethod` classes expose:
    (False, False) = No-Adapt, (True, False) = BN-Norm,
    (True, True) = BN-Opt.
    """
    if does_backward and not adapts_bn_stats:
        raise ValueError("backward without BN stat adaptation is not a "
                         "method the study defines")
    conv_fw = _conv_forward_seconds(summary, batch_size, device)
    bn_fw = batch_size * summary.bn_elements / device.bn_elems_per_s
    elementwise_fw = (batch_size * summary.act_elements
                      / device.elementwise_elems_per_s)

    bn_adapt = 0.0
    if adapts_bn_stats:
        bn_adapt = (batch_size * summary.bn_elements * device.bn_adapt_s_per_elem
                    + summary.bn_channels * device.bn_adapt_s_per_channel
                    + summary.bn_layer_count() * device.bn_adapt_s_per_layer)

    conv_bw = bn_bw = elementwise_bw = optimizer = overhead_bw = 0.0
    if does_backward:
        conv_bw = device.conv_bw_factor * conv_fw
        bn_bw = device.bn_bw_factor * (bn_fw + bn_adapt)
        elementwise_bw = device.elementwise_bw_factor * elementwise_fw
        optimizer = summary.bn_params * device.optimizer_s_per_param
        overhead_bw = device.backward_overhead_s

    return LatencyBreakdown(
        batch_size=batch_size,
        conv_fw_s=conv_fw,
        bn_fw_s=bn_fw,
        bn_adapt_s=bn_adapt,
        elementwise_fw_s=elementwise_fw,
        overhead_fw_s=device.forward_overhead_s,
        conv_bw_s=conv_bw,
        bn_bw_s=bn_bw,
        elementwise_bw_s=elementwise_bw,
        optimizer_s=optimizer,
        overhead_bw_s=overhead_bw,
    )
