"""What-if analysis: sensitivity of the cost model to device constants.

The paper's co-design conclusions are qualitative ("additional MACs ...
would make back propagation less costly").  This module makes them
quantitative: sweep any :class:`DeviceSpec` constant and measure the
elasticity of a metric — the fractional metric change per fractional
constant change — so hardware proposals can be ranked by leverage.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, List, Sequence, Tuple

from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary

#: DeviceSpec fields that are legal sweep targets (numeric model knobs)
SWEEPABLE_FIELDS = (
    "dense_gmacs_per_s", "grouped_efficiency", "depthwise_efficiency",
    "bn_elems_per_s", "elementwise_elems_per_s", "bn_adapt_s_per_elem",
    "bn_adapt_s_per_channel", "bn_adapt_s_per_layer", "conv_bw_factor",
    "bn_bw_factor", "elementwise_bw_factor", "forward_overhead_s",
    "backward_overhead_s", "optimizer_s_per_param", "power_forward_w",
    "power_adapt_w", "power_backward_w", "memory_total_gb",
)

MetricFn = Callable[[DeviceSpec], float]


def latency_metric(summary: ModelSummary, batch_size: int, *,
                   adapts_bn_stats: bool, does_backward: bool) -> MetricFn:
    """Metric: per-batch forward time for one configuration."""
    def metric(device: DeviceSpec) -> float:
        return forward_latency(summary, batch_size, device,
                               adapts_bn_stats=adapts_bn_stats,
                               does_backward=does_backward).forward_time_s
    return metric


def energy_metric(summary: ModelSummary, batch_size: int, *,
                  adapts_bn_stats: bool, does_backward: bool) -> MetricFn:
    """Metric: per-batch energy for one configuration."""
    def metric(device: DeviceSpec) -> float:
        breakdown = forward_latency(summary, batch_size, device,
                                    adapts_bn_stats=adapts_bn_stats,
                                    does_backward=does_backward)
        return energy_per_batch(breakdown, device)
    return metric


def sweep(device: DeviceSpec, field_name: str, factors: Sequence[float],
          metric: MetricFn) -> List[Tuple[float, float]]:
    """Evaluate ``metric`` with ``field_name`` scaled by each factor."""
    if field_name not in SWEEPABLE_FIELDS:
        raise KeyError(f"{field_name!r} is not sweepable; see SWEEPABLE_FIELDS")
    baseline = getattr(device, field_name)
    results = []
    for factor in factors:
        modified = device.with_overrides(**{field_name: baseline * factor})
        results.append((factor, metric(modified)))
    return results


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of a metric w.r.t. one device constant."""

    field_name: str
    elasticity: float    # d(log metric) / d(log constant), ~0 = irrelevant

    def __repr__(self) -> str:
        return f"Sensitivity({self.field_name}: {self.elasticity:+.3f})"


def sensitivities(device: DeviceSpec, metric: MetricFn,
                  field_names: Sequence[str] = SWEEPABLE_FIELDS,
                  epsilon: float = 0.05) -> List[Sensitivity]:
    """Elasticity of ``metric`` to each constant, sorted by |elasticity|.

    Central difference in log space with relative step ``epsilon``;
    constants whose baseline is zero are reported with elasticity 0.
    """
    results = []
    base_value = metric(device)
    for field_name in field_names:
        baseline = getattr(device, field_name)
        if baseline == 0:
            results.append(Sensitivity(field_name, 0.0))
            continue
        up = metric(device.with_overrides(
            **{field_name: baseline * (1 + epsilon)}))
        down = metric(device.with_overrides(
            **{field_name: baseline * (1 - epsilon)}))
        # d(log m)/d(log c) ~ (m+ - m-) / (2 eps m0)
        elasticity = (up - down) / (2 * epsilon * base_value)
        results.append(Sensitivity(field_name, elasticity))
    return sorted(results, key=lambda s: abs(s.elasticity), reverse=True)


def format_sensitivities(results: Sequence[Sensitivity],
                         top: int = 8, title: str = "") -> str:
    """Render the top sensitivities as text."""
    lines = [title or "Cost-model sensitivities (elasticity of the metric):"]
    for s in results[:top]:
        bar = "#" * int(round(abs(s.elasticity) * 20))
        lines.append(f"  {s.field_name:<26s} {s.elasticity:+7.3f} {bar}")
    return "\n".join(lines)
