"""Edge-device simulators: latency, energy, and memory models.

The paper measures three physical devices (Ultra96-v2 FPGA PS, Raspberry
Pi 4, Jetson Xavier NX CPU+GPU) with a wall-power meter.  This package
replaces them with analytical models whose *workload side* is exact (driven
by the per-layer summaries of the real model graphs,
:mod:`repro.models.summary`) and whose *device side* is calibrated to the
paper's own reported measurements (see :mod:`repro.devices.calibrate` and
EXPERIMENTS.md for the anchor table and residuals).

- :mod:`repro.devices.spec` / :mod:`repro.devices.catalog` — device
  parameter sets (``ultra96``, ``rpi4``, ``xavier_nx_cpu``,
  ``xavier_nx_gpu``).
- :mod:`repro.devices.cost_model` — per-phase latency decomposition
  (conv/BN/elementwise x forward/backward, statistics-recompute extras).
- :mod:`repro.devices.energy` — per-phase power model and the simulated
  wall-outlet power meter.
- :mod:`repro.devices.memory` — memory high-water-mark model including the
  PyTorch dynamic-graph footprint; raises :class:`OutOfMemoryError` for
  the configurations the paper found infeasible.
"""

from repro.devices.catalog import DEVICE_NAMES, device_info, list_devices
from repro.devices.cost_model import LatencyBreakdown, forward_latency
from repro.devices.energy import PowerMeter, energy_per_batch
from repro.devices.memory import MemoryEstimate, OutOfMemoryError, estimate_memory
from repro.devices.spec import DeviceSpec

__all__ = [
    "DeviceSpec",
    "DEVICE_NAMES",
    "device_info",
    "list_devices",
    "LatencyBreakdown",
    "forward_latency",
    "energy_per_batch",
    "PowerMeter",
    "MemoryEstimate",
    "OutOfMemoryError",
    "estimate_memory",
]
