"""Calibration anchors: every numeric measurement the paper reports.

The device constants in :mod:`repro.devices.catalog` were fitted against
the anchor table below (each row is a number printed in the paper's text
or Table I).  :func:`anchor_report` re-evaluates the frozen constants
against every anchor and returns the residuals — tests assert they stay
within per-anchor tolerances, and EXPERIMENTS.md embeds the report.

Anchors marked with larger tolerances are averages over heterogeneous
case sets or Table-I large-batch entries where the linear cost model is
known to underestimate (see EXPERIMENTS.md "known deviations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.devices.catalog import device_info
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import ModelSummary, summarize

#: method name -> (adapts_bn_stats, does_backward)
METHOD_FLAGS: Dict[str, Tuple[bool, bool]] = {
    "no_adapt": (False, False),
    "bn_norm": (True, False),
    "bn_opt": (True, True),
}

_PAPER_BATCHES = (50, 100, 200)


def _summaries() -> Dict[str, ModelSummary]:
    return {name: summarize(build_model(name, "full"), name=name)
            for name in MODEL_NAMES}


def predicted_time(summaries: Dict[str, ModelSummary], model: str,
                   device: str, method: str, batch_size: int) -> float:
    adapts, backward = METHOD_FLAGS[method]
    breakdown = forward_latency(summaries[model], batch_size,
                                device_info(device), adapts_bn_stats=adapts,
                                does_backward=backward)
    return breakdown.forward_time_s


def predicted_energy(summaries: Dict[str, ModelSummary], model: str,
                     device: str, method: str, batch_size: int) -> float:
    adapts, backward = METHOD_FLAGS[method]
    breakdown = forward_latency(summaries[model], batch_size,
                                device_info(device), adapts_bn_stats=adapts,
                                does_backward=backward)
    return energy_per_batch(breakdown, device_info(device))


def _mean_extra(summaries: Dict[str, ModelSummary], device: str,
                method: str, skip: Sequence[Tuple[str, int]] = ()) -> float:
    """Mean adaptation overhead over the 3x3 model/batch grid minus skips."""
    extras = []
    for model in ("wrn40_2", "resnet18", "resnext29"):
        for batch in _PAPER_BATCHES:
            if (model, batch) in skip:
                continue
            baseline = predicted_time(summaries, model, device, "no_adapt", batch)
            extras.append(predicted_time(summaries, model, device, method, batch)
                          - baseline)
    return sum(extras) / len(extras)


@dataclass(frozen=True)
class Anchor:
    """One paper-reported number and how to predict it."""

    label: str
    paper_value: float
    rel_tolerance: float
    predict: Callable[[Dict[str, ModelSummary]], float]


def _wrn50(device: str, method: str, kind: str) -> Callable:
    if kind == "time":
        return lambda s: predicted_time(s, "wrn40_2", device, method, 50)
    return lambda s: predicted_energy(s, "wrn40_2", device, method, 50)


ANCHORS: List[Anchor] = [
    # --- Ultra96-v2 (Section IV-B, Fig. 5) -------------------------------
    Anchor("ultra96 WRN-50 no_adapt time (s)", 3.58, 0.05, _wrn50("ultra96", "no_adapt", "time")),
    Anchor("ultra96 WRN-50 bn_norm time (s)", 3.95, 0.05, _wrn50("ultra96", "bn_norm", "time")),
    Anchor("ultra96 WRN-50 bn_opt time (s)", 13.35, 0.05, _wrn50("ultra96", "bn_opt", "time")),
    Anchor("ultra96 WRN-50 no_adapt energy (J)", 4.47, 0.05, _wrn50("ultra96", "no_adapt", "energy")),
    Anchor("ultra96 WRN-50 bn_norm energy (J)", 4.93, 0.05, _wrn50("ultra96", "bn_norm", "energy")),
    Anchor("ultra96 WRN-50 bn_opt energy (J)", 14.35, 0.05, _wrn50("ultra96", "bn_opt", "energy")),
    Anchor("ultra96 mean BN-Norm overhead (s)", 1.40, 0.15,
           lambda s: _mean_extra(s, "ultra96", "bn_norm")),
    Anchor("ultra96 mean BN-Opt overhead (s)", 30.27, 0.15,
           lambda s: _mean_extra(s, "ultra96", "bn_opt",
                                 skip=(("resnext29", 100), ("resnext29", 200)))),
    # --- Raspberry Pi 4 (Section IV-C, Fig. 8) ----------------------------
    Anchor("rpi4 WRN-50 no_adapt time (s)", 2.04, 0.05, _wrn50("rpi4", "no_adapt", "time")),
    Anchor("rpi4 WRN-50 bn_norm time (s)", 2.59, 0.05, _wrn50("rpi4", "bn_norm", "time")),
    Anchor("rpi4 WRN-50 bn_opt time (s)", 7.97, 0.05, _wrn50("rpi4", "bn_opt", "time")),
    Anchor("rpi4 WRN-50 no_adapt energy (J)", 5.04, 0.05, _wrn50("rpi4", "no_adapt", "energy")),
    Anchor("rpi4 WRN-50 bn_norm energy (J)", 5.95, 0.05, _wrn50("rpi4", "bn_norm", "energy")),
    Anchor("rpi4 WRN-50 bn_opt energy (J)", 19.12, 0.05, _wrn50("rpi4", "bn_opt", "energy")),
    Anchor("rpi4 mean BN-Norm overhead (s)", 0.86, 0.15,
           lambda s: _mean_extra(s, "rpi4", "bn_norm")),
    Anchor("rpi4 mean BN-Opt overhead (s)", 24.9, 0.15,
           lambda s: _mean_extra(s, "rpi4", "bn_opt")),
    Anchor("rpi4 RXT-200 bn_opt energy (A2, J)", 337.43, 0.15,
           lambda s: predicted_energy(s, "resnext29", "rpi4", "bn_opt", 200)),
    # --- Xavier NX (Section IV-D/E, Figs. 9, 11, 12) ----------------------
    Anchor("nx_gpu WRN-50 no_adapt time (s)", 0.10, 0.12, _wrn50("xavier_nx_gpu", "no_adapt", "time")),
    Anchor("nx_gpu WRN-50 bn_norm time (s)", 0.315, 0.05, _wrn50("xavier_nx_gpu", "bn_norm", "time")),
    Anchor("nx_gpu WRN-50 bn_opt time (s)", 0.82, 0.05, _wrn50("xavier_nx_gpu", "bn_opt", "time")),
    Anchor("nx_gpu WRN-50 no_adapt energy (J)", 1.02, 0.12, _wrn50("xavier_nx_gpu", "no_adapt", "energy")),
    Anchor("nx_gpu WRN-50 bn_norm energy (J)", 2.96, 0.05, _wrn50("xavier_nx_gpu", "bn_norm", "energy")),
    Anchor("nx_gpu WRN-50 bn_opt energy (J)", 7.96, 0.08, _wrn50("xavier_nx_gpu", "bn_opt", "energy")),
    Anchor("nx_cpu RXT-200 bn_opt time (A1, s)", 69.58, 0.05,
           lambda s: predicted_time(s, "resnext29", "xavier_nx_cpu", "bn_opt", 200)),
    # --- MobileNet Table I (NX GPU) ---------------------------------------
    Anchor("TableI MNv2-50 no_adapt (s)", 0.07, 0.15,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "no_adapt", 50)),
    Anchor("TableI MNv2-100 no_adapt (s)", 0.13, 0.15,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "no_adapt", 100)),
    Anchor("TableI MNv2-200 no_adapt (s)", 0.25, 0.15,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "no_adapt", 200)),
    Anchor("TableI MNv2-50 bn_norm (s)", 0.58, 0.10,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_norm", 50)),
    Anchor("TableI MNv2-100 bn_norm (s)", 1.18, 0.10,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_norm", 100)),
    Anchor("TableI MNv2-200 bn_norm (s)", 2.95, 0.30,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_norm", 200)),
    Anchor("TableI MNv2-50 bn_opt (s)", 1.63, 0.25,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_opt", 50)),
    Anchor("TableI MNv2-100 bn_opt (s)", 3.7, 0.30,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_opt", 100)),
    Anchor("TableI MNv2-200 bn_opt (s)", 8.28, 0.40,
           lambda s: predicted_time(s, "mobilenet_v2", "xavier_nx_gpu", "bn_opt", 200)),
]


@dataclass(frozen=True)
class AnchorResult:
    label: str
    paper_value: float
    predicted: float
    rel_error: float
    tolerance: float

    @property
    def within_tolerance(self) -> bool:
        return self.rel_error <= self.tolerance


def anchor_report() -> List[AnchorResult]:
    """Evaluate every anchor against the frozen device constants."""
    summaries = _summaries()
    results = []
    for anchor in ANCHORS:
        predicted = anchor.predict(summaries)
        rel = abs(predicted - anchor.paper_value) / abs(anchor.paper_value)
        results.append(AnchorResult(label=anchor.label,
                                    paper_value=anchor.paper_value,
                                    predicted=predicted, rel_error=rel,
                                    tolerance=anchor.rel_tolerance))
    return results


def format_anchor_report(results: List[AnchorResult] | None = None) -> str:
    """Render the anchor residuals as a markdown table."""
    if results is None:
        results = anchor_report()
    lines = [
        "| anchor | paper | model | rel. err | tol | ok |",
        "|---|---|---|---|---|---|",
    ]
    for r in results:
        lines.append(f"| {r.label} | {r.paper_value:g} | {r.predicted:.3f} "
                     f"| {100 * r.rel_error:.1f}% | {100 * r.tolerance:.0f}% "
                     f"| {'yes' if r.within_tolerance else 'NO'} |")
    return "\n".join(lines)
