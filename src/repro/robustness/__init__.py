"""Robustness layer: fault injection, guarded adaptation, degradation.

The paper's deployment scenarios (drones, remote sensors, medical
scanners) adapt **without labels**, so nothing tells the operator when a
bad batch has poisoned the BN statistics every later frame depends on.
This package makes the streaming story deployable rather than
best-case-only:

- :mod:`repro.robustness.faults` — seeded injection of the faults edge
  pipelines actually produce (NaN/Inf pixels, constant batches,
  wrong-range inputs, truncated batches, duplicated frames);
- :mod:`repro.robustness.guard` — :class:`GuardedAdaptation`: per-batch
  BN snapshots, label-free health checks, bit-identical rollback and a
  ``bn_opt -> bn_norm -> no_adapt`` degradation ladder with cooldown;
- :mod:`repro.robustness.harness` — :func:`run_guarded_stream`, the
  native end-to-end runner producing a guard-annotated
  :class:`~repro.core.streaming.StreamScorecard`.
"""

from repro.robustness.faults import (
    FAULT_NAMES,
    POISONING_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    apply_fault,
    known_fault_names,
    parse_fault_specs,
    register_fault_names,
)
from repro.robustness.guard import (
    LADDER,
    GuardConfig,
    GuardedAdaptation,
    GuardEvent,
)
from repro.robustness.harness import run_guarded_stream

__all__ = [
    "FAULT_NAMES",
    "POISONING_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "apply_fault",
    "known_fault_names",
    "parse_fault_specs",
    "register_fault_names",
    "LADDER",
    "GuardConfig",
    "GuardedAdaptation",
    "GuardEvent",
    "run_guarded_stream",
]
