"""Fault injection for batch streams: the failure modes edge sensors produce.

A deployed adaptation pipeline does not get to choose its inputs: dead
sensors emit constant frames, DMA glitches produce NaN/Inf pixels, a
mis-configured camera driver delivers un-normalized uint8 ranges,
link drops truncate batches, and frame-grabber stalls duplicate the
last frame across a whole batch.  This module injects those faults into
any ``(images, labels)`` batch iterator on a *seeded schedule*, so
robustness experiments are reproducible batch-for-batch.

Fault taxonomy (``FAULT_NAMES``):

- ``nan`` — a random fraction of pixels replaced by NaN;
- ``inf`` — a random fraction of pixels replaced by +/-Inf;
- ``constant`` — the whole batch collapses to one constant value
  (zero input variance, the BN worst case);
- ``wrong_range`` — pixels rescaled to [0, 255] as if normalization
  was skipped upstream;
- ``truncated`` — the batch is cut to a fraction of its frames
  (labels cut to match);
- ``duplicated`` — every frame replaced by the batch's first frame.

``nan``/``inf``/``constant``/``wrong_range`` are *poisoning* faults: an
unguarded BN-adaptive method folds them into its running statistics and
corrupts every subsequent prediction.  ``truncated``/``duplicated`` are
benign for correctness but stress batch-size assumptions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

#: every fault type, in taxonomy order
FAULT_NAMES = ("nan", "inf", "constant", "wrong_range",
               "truncated", "duplicated")

#: faults that corrupt BN running statistics of an unguarded method
POISONING_FAULTS = frozenset({"nan", "inf", "constant", "wrong_range"})

# additional taxonomies registered by other layers (e.g. the serve
# chaos proxy's network faults) so they share the FaultSpec grammar and
# the seeded FaultSchedule without this module knowing their semantics
_EXTRA_FAULTS_LOCK = threading.Lock()
_EXTRA_FAULT_NAMES: set = set()


def register_fault_names(names: Iterable[str]) -> None:
    """Extend the spec grammar with another layer's fault taxonomy.

    The names become parseable/constructible in :class:`FaultSpec`
    (``"disconnect:0.1"`` works once the chaos proxy registers its
    network faults) but gain no batch-level *application* semantics:
    :func:`apply_fault` still only knows the batch taxonomy above.
    """
    with _EXTRA_FAULTS_LOCK:
        _EXTRA_FAULT_NAMES.update(names)


def known_fault_names() -> Tuple[str, ...]:
    """Every currently-registered fault name (batch taxonomy first)."""
    with _EXTRA_FAULTS_LOCK:
        extra = sorted(_EXTRA_FAULT_NAMES - set(FAULT_NAMES))
    return FAULT_NAMES + tuple(extra)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: which batch, which fault."""

    batch_index: int
    fault: str


@dataclass(frozen=True)
class FaultSpec:
    """Schedule for one fault type.

    Either probabilistic (``rate`` per batch, drawn from the injector's
    seeded generator) or explicit (``at`` batch indices).  Parsed from
    compact CLI syntax by :meth:`parse`:

    - ``"nan:0.2"``   — NaN fault with probability 0.2 per batch;
    - ``"constant@3"`` — constant fault exactly at batch 3;
    - ``"inf@2+5"``    — Inf fault at batches 2 and 5.
    """

    fault: str
    rate: float = 0.0
    at: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.fault not in known_fault_names():
            raise ValueError(f"unknown fault {self.fault!r}; "
                             f"choose from {known_fault_names()}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        text = text.strip()
        if "@" in text:
            name, _, indices = text.partition("@")
            try:
                at = tuple(int(i) for i in indices.split("+"))
            except ValueError:
                raise ValueError(f"bad fault spec {text!r}: indices after "
                                 "'@' must be integers (join with '+')")
            return cls(fault=name, at=at)
        if ":" in text:
            name, _, rate = text.partition(":")
            return cls(fault=name, rate=float(rate))
        return cls(fault=text, rate=1.0)


def parse_fault_specs(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a comma-separated fault-spec string (CLI ``--faults``)."""
    parts = [p for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError("empty fault specification")
    return tuple(FaultSpec.parse(p) for p in parts)


class FaultSchedule:
    """Seeded, deterministic assignment of faults to batch indices.

    At most one fault fires per batch; explicit ``at`` indices win over
    probabilistic rates, and earlier specs win over later ones.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._decided: Dict[int, str] = {}
        self._next_index = 0

    def fault_for(self, batch_index: int) -> str:
        """The fault scheduled for ``batch_index`` ("" = none).

        Decisions are drawn in batch order and memoized, so the schedule
        is reproducible regardless of how far the stream runs.
        """
        while self._next_index <= batch_index:
            self._decided[self._next_index] = self._decide(self._next_index)
            self._next_index += 1
        return self._decided[batch_index]

    def _decide(self, index: int) -> str:
        for spec in self.specs:
            if index in spec.at:
                return spec.fault
        for spec in self.specs:
            # one draw per (spec, batch) keeps the schedule stable even
            # when explicit-index specs are mixed in
            draw = self._rng.random()
            if spec.rate > 0.0 and draw < spec.rate:
                return spec.fault
        return ""

    def plan(self, num_batches: int) -> Dict[int, str]:
        """Mapping of batch index -> fault name for a finite stream."""
        plan = {}
        for index in range(num_batches):
            fault = self.fault_for(index)
            if fault:
                plan[index] = fault
        return plan


# ----------------------------------------------------------------------
# Fault application
# ----------------------------------------------------------------------
def _apply_nan(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    out = images.copy()
    mask = rng.random(out.shape) < 0.1
    out[mask] = np.nan
    return out


def _apply_inf(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    out = images.copy()
    mask = rng.random(out.shape) < 0.05
    out[mask] = np.inf
    out[rng.random(out.shape) < 0.05] = -np.inf
    return out


def _apply_constant(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    value = np.float32(rng.uniform(0.0, 1.0))
    return np.full_like(images, value)


def _apply_wrong_range(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    return (images * 255.0).astype(images.dtype)


def _apply_duplicated(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    return np.broadcast_to(images[:1], images.shape).copy()


_PIXEL_FAULTS = {
    "nan": _apply_nan,
    "inf": _apply_inf,
    "constant": _apply_constant,
    "wrong_range": _apply_wrong_range,
    "duplicated": _apply_duplicated,
}


def apply_fault(images: np.ndarray, labels: np.ndarray, fault: str,
                rng: np.random.Generator
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Apply one named fault to a batch; labels follow frame selection."""
    if fault == "truncated":
        keep = max(1, len(images) // 4)
        return images[:keep].copy(), labels[:keep].copy()
    if fault in _PIXEL_FAULTS:
        return _PIXEL_FAULTS[fault](images, rng), labels.copy()
    raise ValueError(f"unknown fault {fault!r}; choose from {FAULT_NAMES}")


class FaultInjector:
    """Wrap a batch iterator, injecting faults on a seeded schedule.

    ::

        injector = FaultInjector(parse_fault_specs("nan:0.2"), seed=7)
        for images, labels in injector.inject(stream.batches(50)):
            ...
        injector.events      # -> [FaultEvent(batch_index=3, fault="nan"), ...]
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.schedule = FaultSchedule(specs, seed=seed)
        self.events: List[FaultEvent] = []
        self.batches_seen = 0

    @property
    def faults_injected(self) -> int:
        return len(self.events)

    def inject(self, batches: Iterable[Tuple[np.ndarray, np.ndarray]]
               ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for images, labels in batches:
            index = self.batches_seen
            self.batches_seen += 1
            fault = self.schedule.fault_for(index)
            if fault:
                # per-batch child generator: the realization of one fault
                # never shifts another batch's noise
                rng = np.random.default_rng(
                    np.random.SeedSequence((self.schedule.seed, index)))
                images, labels = apply_fault(images, labels, fault, rng)
                self.events.append(FaultEvent(batch_index=index, fault=fault))
            yield images, labels
