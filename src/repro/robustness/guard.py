"""Guarded adaptation: BN-state rollback plus a degradation ladder.

TENT-style entropy minimization is known to collapse under bad batches
(EATA, Niu et al. 2022), and BN-Norm folds whatever it is fed — NaN
pixels included — into the running statistics that every later frame is
normalized with.  In an unsupervised deployment there is no label to
flag the poisoning; :class:`GuardedAdaptation` supplies the missing
safety net with three mechanisms:

1. **Snapshot / rollback** — before each batch the BN state (running
   statistics, gamma/beta, batch counters) is snapshotted; if the
   post-step health checks fail, the snapshot is restored
   *bit-identically*.
2. **Label-free health checks** (from :mod:`repro.adapt.diagnostics`):
   non-finite logits, non-finite BN parameters/buffers, prediction
   entropy collapse, and BN statistics drift blow-up.
3. **Degradation ladder** — after a rollback the same batch is retried
   one rung down ``bn_opt -> bn_norm -> no_adapt``; a configurable
   cooldown of consecutive healthy batches must pass at the degraded
   rung before the guard re-escalates one rung.  If even the bottom
   rung produces non-finite logits (the input itself is garbage), the
   batch is answered with uniform logits and counted as
   ``fallback_frames``.

The wrapper exposes the same ``prepare``/``forward``/``reset`` protocol
as any :class:`~repro.adapt.base.AdaptationMethod`, so it drops into the
study runner and streaming harness unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.adapt import build_method
from repro.adapt.base import AdaptationMethod, bn_layers
from repro.adapt.diagnostics import (
    collect_bn_stats,
    has_nonfinite_bn_state,
    mean_prediction_entropy,
    stats_drift,
)

#: the degradation ladder, strongest adaptation first
LADDER = ("bn_opt", "bn_norm", "no_adapt")


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds and pacing of the guard.

    Parameters
    ----------
    entropy_floor:
        Entropy-collapse threshold as a fraction of the maximum entropy
        ``ln(C)``: mean prediction entropy below ``entropy_floor * ln(C)``
        on an *adapting* rung is treated as collapse (TENT's failure
        mode: confidently wrong on everything).
    drift_limit:
        BN statistics drift (mean normalized L2 from the prepare-time
        stats, :func:`repro.adapt.diagnostics.stats_drift`) above this is
        a blow-up.  NaN drift always violates.
    cooldown:
        Consecutive healthy batches required at a degraded rung before
        re-escalating one rung toward the initial method.
    """

    entropy_floor: float = 0.01
    drift_limit: float = 50.0
    cooldown: int = 3

    def __post_init__(self):
        if not 0.0 <= self.entropy_floor < 1.0:
            raise ValueError("entropy_floor must be in [0, 1)")
        if self.drift_limit <= 0:
            raise ValueError("drift_limit must be positive")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")


@dataclass(frozen=True)
class GuardEvent:
    """One guard action on one batch."""

    batch_index: int
    action: str        # "rollback" | "degrade" | "escalate" | "fallback"
    level: str         # method name active *after* the action
    reason: str = ""


#: snapshot entry per BN layer: (mean, var, gamma, beta, batches_tracked)
_BNSnapshot = List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]]


class GuardedAdaptation:
    """Wrap an adaptation method with rollback and graceful degradation.

    Use exactly like the wrapped method::

        guard = GuardedAdaptation(BNOpt(lr=1e-3))
        guard.prepare(model)
        logits = guard.forward(batch)     # always finite
        guard.rollbacks, guard.degraded_batches, guard.fallback_frames
    """

    def __init__(self, method: AdaptationMethod,
                 config: Optional[GuardConfig] = None):
        self.method = method
        self.config = config or GuardConfig()
        self.model = None
        self._ladder: List[AdaptationMethod] = []
        self._active = -1   # rung whose _configure currently owns the model
        self._level = 0
        self._healthy_streak = 0
        self._source_stats: List[np.ndarray] = []
        self.events: List[GuardEvent] = []
        self.batches_seen = 0
        # guard counters (surfaced in scorecards and study records)
        self.rollbacks = 0
        self.degraded_batches = 0
        self.fallback_frames = 0

    # -- protocol ----------------------------------------------------------
    @property
    def name(self) -> str:
        return f"guarded({self.method.name})"

    @property
    def does_backward(self) -> bool:
        return self.method.does_backward

    @property
    def adapts_bn_stats(self) -> bool:
        return self.method.adapts_bn_stats

    @property
    def level_name(self) -> str:
        """Name of the currently active ladder rung."""
        return self._ladder[self._level].name if self._ladder else self.method.name

    @property
    def batches_adapted(self) -> int:
        return sum(m.batches_adapted for m in self._ladder)

    def prepare(self, model) -> "GuardedAdaptation":
        self.model = model
        self.method.prepare(model)
        self._ladder = [self.method] + [
            build_method(name) for name in self._fallback_names()]
        self._active = 0
        self._level = 0
        self._healthy_streak = 0
        self._source_stats = collect_bn_stats(model)
        self.events.clear()
        self.batches_seen = 0
        self.rollbacks = 0
        self.degraded_batches = 0
        self.fallback_frames = 0
        return self

    def reset(self) -> None:
        """Restore the pristine pre-adaptation state and re-arm the guard."""
        if self.model is None:
            raise RuntimeError("reset() before prepare()")
        self.method.reset()
        self.prepare(self.model)

    def runtime_state(self) -> dict:
        """Mid-stream guard state for session checkpoints.

        Captures the ladder position, cooldown progress, counters, and
        every rung's :meth:`~repro.adapt.base.AdaptationMethod.runtime_state`
        (only the *active* rung's optimizer moments matter — inactive
        rungs are rebuilt on activation — but per-rung ``batches_adapted``
        keeps :attr:`batches_adapted` exact).  ``events`` are diagnostic
        and deliberately not checkpointed.
        """
        if not self._ladder:
            raise RuntimeError("runtime_state() before prepare()")
        return {
            "level": self._level,
            "healthy_streak": self._healthy_streak,
            "batches_seen": self.batches_seen,
            "rollbacks": self.rollbacks,
            "degraded_batches": self.degraded_batches,
            "fallback_frames": self.fallback_frames,
            "ladder": [rung.runtime_state() for rung in self._ladder],
        }

    def load_runtime_state(self, state: dict) -> None:
        """Restore :meth:`runtime_state` onto a freshly prepared guard.

        The model must already hold the checkpointed (adapted) state;
        the active rung is re-bound so its train/eval + grad modes and
        optimizer own the model exactly as at checkpoint time.
        """
        if not self._ladder:
            raise RuntimeError("load_runtime_state() before prepare()")
        if len(state["ladder"]) != len(self._ladder):
            raise ValueError(
                f"checkpoint has {len(state['ladder'])} ladder rungs; "
                f"this guard has {len(self._ladder)}")
        self._level = int(state["level"])
        self._healthy_streak = int(state["healthy_streak"])
        self.batches_seen = int(state["batches_seen"])
        self.rollbacks = int(state["rollbacks"])
        self.degraded_batches = int(state["degraded_batches"])
        self.fallback_frames = int(state["fallback_frames"])
        # force a bind: the active rung's optimizer must be rebuilt over
        # the restored model before its moments are loaded into it
        self._active = -1
        self._activate(self._level)
        for rung, rung_state in zip(self._ladder, state["ladder"]):
            rung.load_runtime_state(rung_state)

    def _fallback_names(self) -> List[str]:
        """Ladder rungs strictly below the wrapped method."""
        if self.method.name in LADDER:
            start = LADDER.index(self.method.name) + 1
        elif self.method.does_backward:
            start = 1          # backward methods sit at the bn_opt tier
        elif self.method.adapts_bn_stats:
            start = 2          # stats-only methods sit at the bn_norm tier
        else:
            start = len(LADDER)
        return list(LADDER[start:])

    # -- the guarded step --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.model is None or not self._ladder:
            raise RuntimeError("forward() before prepare()")
        index = self.batches_seen
        self.batches_seen += 1
        snapshot = self._snapshot_bn()
        while True:
            method = self._activate(self._level)
            logits = method.forward(x)
            violation = self._violation(logits, adapting=method.adapts_bn_stats
                                        or method.does_backward)
            if violation is None:
                self._after_healthy(index)
                return logits
            self._restore_bn(snapshot)
            # rebuild optimizer/mode state of the failed rung so its
            # (potentially NaN-contaminated) Adam moments cannot leak
            # into a later re-escalation
            method.bind(self.model)
            self._active = self._level
            self.rollbacks += 1
            self.events.append(GuardEvent(
                batch_index=index, action="rollback",
                level=method.name, reason=violation))
            if self._level + 1 < len(self._ladder):
                self._level += 1
                self._healthy_streak = 0
                self.events.append(GuardEvent(
                    batch_index=index, action="degrade",
                    level=self.level_name, reason=violation))
                continue
            # bottom of the ladder: answer with uniform logits so the
            # stream keeps flowing with a finite (chance-level) result
            self.degraded_batches += 1
            self.fallback_frames += len(x)
            self._healthy_streak = 0
            self.events.append(GuardEvent(
                batch_index=index, action="fallback",
                level=self.level_name, reason=violation))
            return np.zeros_like(logits)

    def _after_healthy(self, index: int) -> None:
        if self._level == 0:
            return
        self.degraded_batches += 1
        self._healthy_streak += 1
        if self._healthy_streak >= self.config.cooldown:
            self._level -= 1
            self._healthy_streak = 0
            self.events.append(GuardEvent(
                batch_index=index, action="escalate",
                level=self.level_name,
                reason=f"{self.config.cooldown} healthy batches"))

    def _activate(self, level: int) -> AdaptationMethod:
        """Make ``level``'s method own the model's train/eval + grad modes."""
        method = self._ladder[level]
        if self._active != level:
            method.bind(self.model)
            self._active = level
        return method

    # -- health checks -----------------------------------------------------
    def _violation(self, logits: np.ndarray, adapting: bool) -> Optional[str]:
        if not np.isfinite(logits).all():
            return "nonfinite_logits"
        if has_nonfinite_bn_state(self.model):
            return "nonfinite_bn_state"
        if adapting:
            num_classes = logits.shape[-1]
            entropy = mean_prediction_entropy(logits)
            if entropy < self.config.entropy_floor * np.log(num_classes):
                return "entropy_collapse"
            drift = stats_drift(self.model, self._source_stats)
            # NaN drift must violate: express as "not provably healthy"
            if not drift <= self.config.drift_limit:
                return "stats_drift_blowup"
        return None

    # -- BN snapshot / restore ---------------------------------------------
    def _snapshot_bn(self) -> _BNSnapshot:
        return [(layer.running_mean.copy(), layer.running_var.copy(),
                 layer.weight.data.copy(), layer.bias.data.copy(),
                 layer.batches_tracked)
                for layer in bn_layers(self.model)]

    def _restore_bn(self, snapshot: _BNSnapshot) -> None:
        for layer, (mean, var, gamma, beta, tracked) in zip(
                bn_layers(self.model), snapshot):
            layer.set_buffer("running_mean", mean.copy())
            layer.set_buffer("running_var", var.copy())
            layer.weight.data = gamma.copy()
            layer.bias.data = beta.copy()
            layer.batches_tracked = tracked

    def __repr__(self) -> str:
        return f"GuardedAdaptation({self.method!r})"
