"""Native guarded streaming: real execution, faults, guard, one scorecard.

:func:`run_guarded_stream` is the robustness layer's end-to-end entry
point: it plays a real batch stream through a real adaptation method on
the numpy engine — optionally injecting faults and optionally guarding —
and reports the same :class:`~repro.core.streaming.StreamScorecard` the
analytic simulator produces, with *measured* effective error and wall
time and the guard counters filled in.  This is the demonstration that
an unguarded NaN batch silently poisons every subsequent frame while the
guarded run rolls back, degrades, and recovers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.adapt.base import AdaptationMethod
from repro.core.streaming import StreamScorecard
from repro.robustness.faults import FaultInjector, FaultSpec, parse_fault_specs
from repro.robustness.guard import GuardConfig

Batches = Iterable[Tuple[np.ndarray, np.ndarray]]


def run_guarded_stream(model, method: Union[str, AdaptationMethod],
                       batches: Batches, *,
                       guard: Union[bool, GuardConfig] = True,
                       faults: Union[None, str, Sequence[FaultSpec]] = None,
                       seed: int = 0,
                       fps: Optional[float] = None,
                       scenario=None) -> StreamScorecard:
    """Execute a (possibly faulted, possibly guarded) stream for real.

    Parameters
    ----------
    model:
        The model to adapt (mutated in place, exactly as in deployment).
    method:
        An :class:`AdaptationMethod` instance, a method name, or an
        already-built :class:`GuardedAdaptation` (used as-is).
    batches:
        Iterator of ``(images, labels)``; labels are used for scoring
        only — the adaptation never sees them.
    guard:
        ``True`` (default thresholds), a :class:`GuardConfig`, or
        ``False`` to run unprotected (the silent-poisoning baseline).
    faults:
        Fault specs — a CLI-style string (``"nan:0.2,constant@3"``), a
        sequence of :class:`FaultSpec`, or ``None`` for a clean stream.
    fps:
        Optional frame arrival rate; when given, a batch whose measured
        service time exceeds the batch period counts as late.
    scenario:
        Optional scenario attached to the stream — a compact spec
        string, a :class:`~repro.scenarios.spec.ScenarioSpec`, or a
        :class:`~repro.scenarios.schedule.ScenarioSchedule` (typically
        the one that generated ``batches``).  The schedule's per-batch
        ``adapt`` flag is honored (``budgeted`` freezing) and the
        scorecard is stamped with the compact spec form.  A string or
        spec here only drives adapt gating/stamping; to *generate*
        scenario-shaped batches, use a
        :class:`~repro.scenarios.stream.ScenarioStream` (or the
        scenario harness, which also segments the outcome).

    Returns the scorecard with measured ``effective_error_pct``,
    per-batch host wall time, and the guard/fault counters.

    This is a thin driver over
    :class:`~repro.serve.session.AdaptationSession` (``restore`` policy
    ``"on_error"``): a clean stream leaves the model adapted —
    deployment semantics — while an exception mid-stream restores the
    pristine source state before propagating.
    """
    # imported here, not at module level: the serve layer imports
    # repro.robustness.guard, whose package __init__ imports this
    # module — a top-level import would complete the cycle
    from repro.serve.session import AdaptationSession

    schedule = None
    if scenario is not None:
        # lazy for the same cycle reason; as_schedule accepts compact
        # strings and specs, an existing schedule is used as-is
        from repro.scenarios.schedule import ScenarioSchedule, as_schedule
        schedule = scenario if isinstance(scenario, ScenarioSchedule) \
            else as_schedule(scenario, seed=seed)

    injector = None
    if faults is not None:
        specs = parse_fault_specs(faults) if isinstance(faults, str) \
            else tuple(faults)
        injector = FaultInjector(specs, seed=seed)
        batches = injector.inject(batches)

    session = AdaptationSession(model, method, guard=guard, fps=fps,
                                restore="on_error")
    if schedule is not None:
        session.scenario = schedule.label
    with session:
        for index, (images, labels) in enumerate(batches):
            adapt = schedule.plan_for(index).adapt if schedule else True
            session.process_batch(images, labels, adapt=adapt)
        session.faults_injected = injector.faults_injected if injector else 0
    return session.scorecard()
