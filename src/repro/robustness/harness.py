"""Native guarded streaming: real execution, faults, guard, one scorecard.

:func:`run_guarded_stream` is the robustness layer's end-to-end entry
point: it plays a real batch stream through a real adaptation method on
the numpy engine — optionally injecting faults and optionally guarding —
and reports the same :class:`~repro.core.streaming.StreamScorecard` the
analytic simulator produces, with *measured* effective error and wall
time and the guard counters filled in.  This is the demonstration that
an unguarded NaN batch silently poisons every subsequent frame while the
guarded run rolls back, degrades, and recovers.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.adapt import build_method
from repro.adapt.base import AdaptationMethod
from repro.core.streaming import StreamScorecard
from repro.robustness.faults import FaultInjector, FaultSpec, parse_fault_specs
from repro.robustness.guard import GuardConfig, GuardedAdaptation

Batches = Iterable[Tuple[np.ndarray, np.ndarray]]


def run_guarded_stream(model, method: Union[str, AdaptationMethod],
                       batches: Batches, *,
                       guard: Union[bool, GuardConfig] = True,
                       faults: Union[None, str, Sequence[FaultSpec]] = None,
                       seed: int = 0,
                       fps: Optional[float] = None) -> StreamScorecard:
    """Execute a (possibly faulted, possibly guarded) stream for real.

    Parameters
    ----------
    model:
        The model to adapt (mutated in place, exactly as in deployment).
    method:
        An :class:`AdaptationMethod` instance, a method name, or an
        already-built :class:`GuardedAdaptation` (used as-is).
    batches:
        Iterator of ``(images, labels)``; labels are used for scoring
        only — the adaptation never sees them.
    guard:
        ``True`` (default thresholds), a :class:`GuardConfig`, or
        ``False`` to run unprotected (the silent-poisoning baseline).
    faults:
        Fault specs — a CLI-style string (``"nan:0.2,constant@3"``), a
        sequence of :class:`FaultSpec`, or ``None`` for a clean stream.
    fps:
        Optional frame arrival rate; when given, a batch whose measured
        service time exceeds the batch period counts as late.

    Returns the scorecard with measured ``effective_error_pct``,
    per-batch host wall time, and the guard/fault counters.
    """
    if isinstance(method, str):
        method = build_method(method)
    if isinstance(method, GuardedAdaptation):
        runner = method
    elif guard:
        config = guard if isinstance(guard, GuardConfig) else None
        runner = GuardedAdaptation(method, config)
    else:
        runner = method
    runner.prepare(model)

    injector = None
    if faults is not None:
        specs = parse_fault_specs(faults) if isinstance(faults, str) \
            else tuple(faults)
        injector = FaultInjector(specs, seed=seed)
        batches = injector.inject(batches)

    frames = 0
    correct = 0
    num_batches = 0
    batches_late = 0
    wall = 0.0
    for images, labels in batches:
        start = time.perf_counter()
        logits = runner.forward(images)
        elapsed = time.perf_counter() - start
        wall += elapsed
        num_batches += 1
        frames += len(labels)
        predictions = np.nan_to_num(logits).argmax(axis=-1)
        correct += int((predictions == labels).sum())
        if fps is not None and elapsed > len(labels) / fps:
            batches_late += 1

    error = 100.0 * (1.0 - correct / frames) if frames else 0.0
    guarded = isinstance(runner, GuardedAdaptation)
    return StreamScorecard(
        frames_total=frames,
        frames_processed=frames,
        frames_dropped=0,
        batches_late=batches_late,
        batches_total=num_batches,
        mean_frame_latency_s=wall / frames if frames else 0.0,
        effective_error_pct=error,
        energy_j=0.0,
        wall_time_s=wall,
        faults_injected=injector.faults_injected if injector else 0,
        rollbacks=runner.rollbacks if guarded else 0,
        degraded_batches=runner.degraded_batches if guarded else 0,
        fallback_frames=runner.fallback_frames if guarded else 0,
    )
