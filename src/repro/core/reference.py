"""Paper-reported reference numbers (accuracy grid and headline claims).

Figure 2 of the paper shows 27 prediction-error bars (3 models x 3
algorithms x 3 batch sizes) but the text states only a subset numerically.
``FIG2_ERROR_PCT`` below is a *reconstruction*: a full grid chosen to
satisfy simultaneously every number and aggregate the paper states:

- WRN-AM-50: 18.26 / 15.21 / 12.37 % for No-Adapt / BN-Norm / BN-Opt
  (quoted in Sections IV-B/C/D for every device);
- RXT-AM-200 + BN-Opt = 10.15 % (the overall best, Fig. 12);
- the BN-Opt errors span 10.15-12.97 % (Section IV-F);
- mean improvement over No-Adapt: 4.02 points (BN-Norm) and 6.67 points
  (BN-Opt), hence 2.65 points of BN-Opt over BN-Norm (Section IV-A);
- No-Adapt error is batch-size independent (it never adapts);
- the 50->100 error reduction exceeds the 100->200 reduction for both
  adaptation methods and every model ("diminishing returns");
- model ordering after adaptation: ResNeXt (most BN parameters) best,
  ResNet-18 worst.

`tests/test_core/test_reference.py` re-derives each aggregate from the
grid and asserts it matches the paper's statement.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: batch sizes used throughout the paper's online adaptation experiments
BATCH_SIZES = (50, 100, 200)

#: No-Adapt prediction error (%) per model — constant in batch size.
NO_ADAPT_ERROR_PCT: Dict[str, float] = {
    "resnext29": 17.55,
    "wrn40_2": 18.26,
    "resnet18": 19.40,
}

#: BN-Norm prediction error (%) per model at batch sizes 50/100/200.
BN_NORM_ERROR_PCT: Dict[str, Tuple[float, float, float]] = {
    "resnext29": (14.05, 13.50, 13.00),
    "wrn40_2": (15.21, 14.60, 14.35),
    "resnet18": (15.40, 14.80, 14.55),
}

#: BN-Opt prediction error (%) per model at batch sizes 50/100/200.
BN_OPT_ERROR_PCT: Dict[str, Tuple[float, float, float]] = {
    "resnext29": (11.30, 10.65, 10.15),
    "wrn40_2": (12.37, 11.85, 11.60),
    "resnet18": (12.97, 12.50, 12.20),
}

#: MobileNet-V2 (Section IV-F): trained without robust methods.
MOBILENET_NO_ADAPT_ERROR_PCT = 81.2
MOBILENET_BN_OPT_200_ERROR_PCT = 28.1
#: reconstructed (not stated in the paper) for completeness of the grid
MOBILENET_BN_NORM_ERROR_PCT: Tuple[float, float, float] = (40.5, 38.0, 36.2)
MOBILENET_BN_OPT_ERROR_PCT: Tuple[float, float, float] = (33.0, 30.0, 28.1)


def reference_error_pct(model: str, method: str, batch_size: int) -> float:
    """Paper-grid prediction error (%) for one configuration."""
    index = BATCH_SIZES.index(batch_size)
    if model == "mobilenet_v2":
        if method == "no_adapt":
            return MOBILENET_NO_ADAPT_ERROR_PCT
        if method == "bn_norm":
            return MOBILENET_BN_NORM_ERROR_PCT[index]
        if method == "bn_opt":
            return MOBILENET_BN_OPT_ERROR_PCT[index]
        raise KeyError(f"unknown method {method!r}")
    if method == "no_adapt":
        return NO_ADAPT_ERROR_PCT[model]
    if method == "bn_norm":
        return BN_NORM_ERROR_PCT[model][index]
    if method == "bn_opt":
        return BN_OPT_ERROR_PCT[model][index]
    raise KeyError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# Headline claims asserted by the benchmark suite
# ----------------------------------------------------------------------
#: Section IV-A: mean error reduction vs No-Adapt across the 9 cases.
CLAIM_BN_NORM_MEAN_IMPROVEMENT = 4.02
CLAIM_BN_OPT_MEAN_IMPROVEMENT = 6.67
CLAIM_BN_OPT_OVER_BN_NORM = 2.65

#: Section IV-E: A3 (WRN-50 + BN-Norm + NX GPU) vs A1/A2 (RXT-200 + BN-Opt).
CLAIM_A3_SPEEDUP_OVER_A1 = 220.0
CLAIM_A3_ENERGY_RATIO_OVER_A2 = 114.0
#: Section IV-E: BN-Norm vs BN-Opt on NX GPU for WRN-50.
CLAIM_NX_BN_NORM_LATENCY_REDUCTION_PCT = 61.6
CLAIM_NX_BN_NORM_ENERGY_REDUCTION_PCT = 62.8
#: Abstract / Section IV-E: the A3 adaptation overhead itself.
CLAIM_A3_ADAPT_OVERHEAD_S = 0.213
#: Section IV-D: mean GPU-over-CPU speedups on Xavier NX (%).
CLAIM_GPU_SPEEDUP_NO_ADAPT_PCT = 90.5
CLAIM_GPU_SPEEDUP_BN_NORM_PCT = 68.13
CLAIM_GPU_SPEEDUP_BN_OPT_PCT = 79.21
#: Section IV-B: mean adaptation overheads on Ultra96-v2 (s).
CLAIM_ULTRA96_BN_NORM_OVERHEAD_S = 1.40
CLAIM_ULTRA96_BN_OPT_OVERHEAD_S = 30.27
#: Section IV-C: mean adaptation overheads on Raspberry Pi (s).
CLAIM_RPI_BN_NORM_OVERHEAD_S = 0.86
CLAIM_RPI_BN_OPT_OVERHEAD_S = 24.9
#: Section IV-B: ResNeXt dynamic-graph sizes (GB) at batch 100 / 200.
CLAIM_RXT_GRAPH_GB_100 = 3.12
CLAIM_RXT_GRAPH_GB_200 = 5.1
