"""The measurement-study harness — the paper's primary contribution.

This package orchestrates everything the substrates provide into the
paper's experiments:

- :mod:`repro.core.config` — the study grid (models x adaptation methods
  x batch sizes x devices) and case naming ("WRN-AM-50" etc.).
- :mod:`repro.core.records` — measurement records and result containers.
- :mod:`repro.core.runner` — the two execution modes: ``simulated``
  (full-size model graphs through the device cost models; all
  latency/energy/memory figures) and ``native`` (tiny-profile models
  actually executed on the numpy engine; accuracy figures).
- :mod:`repro.core.objectives` — the weighted multi-objective
  ``w1*time + w2*energy + w3*error`` with the paper's four weight cases
  and three normalization schemes.
- :mod:`repro.core.pareto` — Pareto-front utilities over the three costs.
- :mod:`repro.core.reference` — the paper's reported numbers (Fig. 2
  accuracy grid reconstructed to satisfy every stated value and
  aggregate; see the module docstring).
- :mod:`repro.core.report` — text renderers for each figure/table.
"""

from repro.core.config import (
    PAPER_BATCH_SIZES,
    STUDY_METHODS,
    STUDY_MODELS,
    Case,
    StudyConfig,
    case_label,
)
from repro.core.objectives import (
    WEIGHT_CASES,
    WeightCase,
    normalize_records,
    score_records,
    select_best,
)
from repro.core.pareto import pareto_front
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.runner import run_native_study, run_simulated_study

__all__ = [
    "Case",
    "StudyConfig",
    "case_label",
    "STUDY_MODELS",
    "STUDY_METHODS",
    "PAPER_BATCH_SIZES",
    "MeasurementRecord",
    "StudyResult",
    "run_simulated_study",
    "run_native_study",
    "WEIGHT_CASES",
    "WeightCase",
    "normalize_records",
    "score_records",
    "select_best",
    "pareto_front",
]
