"""ASCII scatter plots for the trade-off figures.

The paper's Figures 5/8/11/12 are scatter plots over (forward time,
energy, error).  Terminals are our output device, so this module renders
2-D ASCII scatters with optional log axes, point labels, and a marker
legend — used by the report renderers and the codesign example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.records import MeasurementRecord

_MARKERS = "ox+*#@%&"


@dataclass
class ScatterSeries:
    """One labeled point set for :func:`ascii_scatter`."""

    label: str
    points: List[Tuple[float, float]]


def _transform(value: float, log: bool) -> float:
    return math.log10(value) if log else value


def ascii_scatter(series: Sequence[ScatterSeries], width: int = 64,
                  height: int = 20, x_label: str = "x", y_label: str = "y",
                  log_x: bool = False, log_y: bool = False,
                  title: str = "") -> str:
    """Render labeled point sets on a character grid.

    Values must be positive when the corresponding axis is logarithmic.
    Overlapping points from different series show the later series'
    marker.
    """
    points = [(s_index, x, y) for s_index, s in enumerate(series)
              for x, y in s.points]
    if not points:
        raise ValueError("nothing to plot")
    xs = [_transform(x, log_x) for _, x, _ in points]
    ys = [_transform(y, log_y) for _, _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (s_index, x, y) in points:
        col = int((_transform(x, log_x) - x_min) / x_span * (width - 1))
        row = int((_transform(y, log_y) - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = _MARKERS[s_index % len(_MARKERS)]

    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** y_max if log_y else y_max):.3g}"
    bottom = f"{(10 ** y_min if log_y else y_min):.3g}"
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines.append(f"{top:>{margin}} +" + "-" * width + "+")
    for i, row_chars in enumerate(grid):
        prefix = y_label if i == height // 2 else ""
        lines.append(f"{prefix:>{margin}} |" + "".join(row_chars) + "|")
    lines.append(f"{bottom:>{margin}} +" + "-" * width + "+")
    left = f"{(10 ** x_min if log_x else x_min):.3g}"
    right = f"{(10 ** x_max if log_x else x_max):.3g}"
    axis = f"{left}  {x_label}  {right}"
    lines.append(" " * (margin + 2) + axis)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} = {s.label}"
                        for i, s in enumerate(series))
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def scatter_records(records: Sequence[MeasurementRecord],
                    group_by: Callable[[MeasurementRecord], str],
                    x: Callable[[MeasurementRecord], float] = None,
                    y: Callable[[MeasurementRecord], float] = None,
                    **kwargs) -> str:
    """Scatter study records, grouped into series by ``group_by``.

    Defaults to the paper's primary projection: forward time (log x)
    versus prediction error.  OOM records are skipped.
    """
    x = x or (lambda r: r.forward_time_s)
    y = y or (lambda r: r.error_pct)
    groups: dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        if record.oom:
            continue
        groups.setdefault(group_by(record), []).append((x(record), y(record)))
    series = [ScatterSeries(label=label, points=points)
              for label, points in groups.items()]
    kwargs.setdefault("log_x", True)
    kwargs.setdefault("x_label", "forward time (s)")
    kwargs.setdefault("y_label", "error %")
    return ascii_scatter(series, **kwargs)
