"""Real-time streaming simulation: accuracy meets latency on one clock.

The paper measures accuracy and latency separately and warns that "the
extra adaptation time ... can be a bottleneck for tight deadlines"
(213 ms at the A3 point).  This module closes the loop: it plays a
corrupted stream against a device in simulated real time —

- frames arrive at a fixed rate and are grouped into adaptation batches;
- the device processes one batch at a time, taking the cost model's
  forward time (inference + adaptation) per batch;
- a batch whose processing finishes after the *next* batch has fully
  arrived causes backlog; backlog beyond ``queue_capacity`` batches
  forces drops (frames answered by the stale model without processing);

and reports an online scorecard: effective accuracy (dropped frames are
scored with the pre-adaptation model's expected error), deadline-miss
rate, mean latency per frame, and total energy.

Accuracy inputs can come from either path: the reference grid (simulated
studies) or measured per-batch accuracies (native runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.reference import reference_error_pct
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.memory import estimate_memory
from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary

#: method name -> (adapts_bn_stats, does_backward)
_METHOD_FLAGS = {
    "no_adapt": (False, False),
    "bn_norm": (True, False),
    "bn_opt": (True, True),
}


@dataclass(frozen=True)
class StreamScorecard:
    """Outcome of one real-time streaming simulation."""

    frames_total: int
    frames_processed: int
    frames_dropped: int
    batches_late: int          # batches finished after their deadline
    batches_total: int
    mean_frame_latency_s: float   # arrival -> result, averaged
    effective_error_pct: float    # processed at adapted error, drops at baseline
    energy_j: float
    wall_time_s: float

    @property
    def drop_rate(self) -> float:
        return self.frames_dropped / self.frames_total if self.frames_total else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.batches_late / self.batches_total if self.batches_total else 0.0

    def describe(self) -> str:
        return (f"{self.frames_processed}/{self.frames_total} frames "
                f"processed ({self.drop_rate:.0%} dropped), "
                f"{self.deadline_miss_rate:.0%} batches late, "
                f"latency {self.mean_frame_latency_s * 1e3:.0f} ms/frame, "
                f"effective error {self.effective_error_pct:.2f}%, "
                f"{self.energy_j:.1f} J")


@dataclass
class RealTimeStream:
    """Configuration of a real-time run.

    Parameters
    ----------
    fps:
        Frame arrival rate of the sensor.
    num_frames:
        Total frames in the stream.
    batch_size:
        Adaptation batch size (frames per processing step).
    queue_capacity:
        Maximum *batches* of backlog the device buffers before dropping.
    """

    fps: float
    num_frames: int
    batch_size: int
    queue_capacity: int = 2

    def __post_init__(self):
        if self.fps <= 0 or self.num_frames <= 0 or self.batch_size <= 0:
            raise ValueError("fps, num_frames, batch_size must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


def simulate_realtime(summary: ModelSummary, device: DeviceSpec,
                      method: str, stream: RealTimeStream,
                      adapted_error_pct: Optional[float] = None,
                      baseline_error_pct: Optional[float] = None
                      ) -> StreamScorecard:
    """Play ``stream`` through (model, device, method) in simulated time.

    ``adapted_error_pct`` / ``baseline_error_pct`` default to the
    reference grid values for the model (by summary name) and method.
    Raises :class:`MemoryError` via the memory model if the
    configuration cannot run at all.
    """
    if method not in _METHOD_FLAGS:
        raise KeyError(f"unknown method {method!r}")
    adapts, backward = _METHOD_FLAGS[method]
    memory = estimate_memory(summary, stream.batch_size, device,
                             does_backward=backward)
    if not memory.fits:
        raise MemoryError(
            f"{summary.model_name}/{method} at batch {stream.batch_size} "
            f"needs {memory.total_gb:.2f} GB on {device.display_name}")

    if adapted_error_pct is None:
        adapted_error_pct = reference_error_pct(summary.model_name, method,
                                                _nearest_paper_batch(stream.batch_size))
    if baseline_error_pct is None:
        baseline_error_pct = reference_error_pct(summary.model_name,
                                                 "no_adapt", 50)

    latency = forward_latency(summary, stream.batch_size, device,
                              adapts_bn_stats=adapts, does_backward=backward)
    service_time = latency.forward_time_s
    batch_energy = energy_per_batch(latency, device)
    batch_period = stream.batch_size / stream.fps

    num_batches = stream.num_frames // stream.batch_size
    device_free_at = 0.0
    frames_processed = 0
    frames_dropped = 0
    batches_late = 0
    total_latency = 0.0
    energy = 0.0
    finish = 0.0

    for index in range(num_batches):
        arrival_complete = (index + 1) * batch_period
        start = max(arrival_complete, device_free_at)
        backlog_batches = (start - arrival_complete) / batch_period
        if backlog_batches > stream.queue_capacity:
            # queue overflow: answer this batch with the stale model
            frames_dropped += stream.batch_size
            # dropped frames are "served" instantly at arrival
            finish = max(finish, arrival_complete)
            continue
        finish = start + service_time
        device_free_at = finish
        frames_processed += stream.batch_size
        energy += batch_energy
        # deadline: results should be ready before the *next* batch has
        # fully arrived (one-period deadline)
        if finish > arrival_complete + batch_period:
            batches_late += 1
        # frame latency: mean over the batch from each frame's arrival;
        # frames arrive uniformly across the period
        mean_arrival = arrival_complete - batch_period / 2
        total_latency += (finish - mean_arrival) * stream.batch_size

    frames_total = num_batches * stream.batch_size
    processed_error = adapted_error_pct * frames_processed
    dropped_error = baseline_error_pct * frames_dropped
    effective_error = ((processed_error + dropped_error) / frames_total
                       if frames_total else 0.0)
    mean_latency = (total_latency / frames_processed
                    if frames_processed else 0.0)
    return StreamScorecard(
        frames_total=frames_total,
        frames_processed=frames_processed,
        frames_dropped=frames_dropped,
        batches_late=batches_late,
        batches_total=num_batches,
        mean_frame_latency_s=mean_latency,
        effective_error_pct=effective_error,
        energy_j=energy,
        wall_time_s=finish,
    )


def _nearest_paper_batch(batch_size: int) -> int:
    """Snap an arbitrary batch size to the paper's 50/100/200 grid."""
    return min((50, 100, 200), key=lambda b: abs(b - batch_size))


def max_sustainable_fps(summary: ModelSummary, device: DeviceSpec,
                        method: str, batch_size: int) -> float:
    """Highest frame rate the device sustains without growing backlog.

    The device keeps up iff the per-batch service time does not exceed
    the batch arrival period: ``fps <= batch_size / service_time``.
    """
    adapts, backward = _METHOD_FLAGS[method]
    latency = forward_latency(summary, batch_size, device,
                              adapts_bn_stats=adapts, does_backward=backward)
    return batch_size / latency.forward_time_s
