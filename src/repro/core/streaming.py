"""Real-time streaming simulation: accuracy meets latency on one clock.

The paper measures accuracy and latency separately and warns that "the
extra adaptation time ... can be a bottleneck for tight deadlines"
(213 ms at the A3 point).  This module closes the loop: it plays a
corrupted stream against a device in simulated real time —

- frames arrive at a fixed rate and are grouped into adaptation batches;
- the device processes one batch at a time, taking the cost model's
  forward time (inference + adaptation) per batch;
- a batch whose processing finishes after the *next* batch has fully
  arrived causes backlog; backlog beyond ``queue_capacity`` batches
  forces drops (frames answered by the stale model without processing);

and reports an online scorecard: effective accuracy (dropped frames are
scored with the pre-adaptation model's expected error), deadline-miss
rate, mean latency per frame, and total energy.

Accuracy inputs can come from either path: the reference grid (simulated
studies) or measured per-batch accuracies (native runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.reference import reference_error_pct
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.memory import estimate_memory
from repro.devices.spec import DeviceSpec
from repro.models.summary import ModelSummary

#: method name -> (adapts_bn_stats, does_backward)
_METHOD_FLAGS = {
    "no_adapt": (False, False),
    "bn_norm": (True, False),
    "bn_opt": (True, True),
}

#: faults that corrupt BN running statistics — mirrors
#: repro.robustness.faults.POISONING_FAULTS, kept literal here so core
#: never imports robustness (tests cross-check the two stay equal)
_POISONING_FAULT_NAMES = frozenset({"nan", "inf", "constant", "wrong_range"})

#: rollbacks a guarded poisoning batch costs = ladder rungs tried before
#: the uniform fallback answers it (bn_opt -> bn_norm -> no_adapt)
_LADDER_DEPTH = {"no_adapt": 1, "bn_norm": 2, "bn_opt": 3}


@dataclass(frozen=True)
class StreamScorecard:
    """Outcome of one real-time streaming simulation."""

    frames_total: int
    frames_processed: int
    frames_dropped: int
    batches_late: int          # batches finished after their deadline
    batches_total: int
    mean_frame_latency_s: float   # arrival -> result, averaged
    effective_error_pct: float    # processed at adapted error, drops at baseline
    energy_j: float
    wall_time_s: float
    # guard/fault accounting (repro.robustness); all zero for clean
    # unguarded runs so pre-robustness callers are unaffected
    faults_injected: int = 0
    rollbacks: int = 0            # BN-snapshot restores by the guard
    degraded_batches: int = 0     # batches served below the requested method
    fallback_frames: int = 0      # frames answered by the bottom-rung fallback
    #: serve-daemon tenant this card scores ("" = single-stream run)
    tenant: str = ""
    #: compact scenario spec the stream followed ("" = plain i.i.d.
    #: single-corruption stream); see :mod:`repro.scenarios`
    scenario: str = ""

    @property
    def drop_rate(self) -> float:
        return self.frames_dropped / self.frames_total if self.frames_total else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.batches_late / self.batches_total if self.batches_total else 0.0

    def describe(self) -> str:
        text = (f"[{self.tenant}] " if self.tenant else "")
        if self.scenario:
            text += f"<{self.scenario}> "
        text += (f"{self.frames_processed}/{self.frames_total} frames "
                f"processed ({self.drop_rate:.0%} dropped), "
                f"{self.deadline_miss_rate:.0%} batches late, "
                f"latency {self.mean_frame_latency_s * 1e3:.0f} ms/frame, "
                f"effective error {self.effective_error_pct:.2f}%, "
                f"{self.energy_j:.1f} J")
        if self.faults_injected or self.rollbacks or self.degraded_batches:
            text += (f" | guard: {self.faults_injected} faults, "
                     f"{self.rollbacks} rollbacks, "
                     f"{self.degraded_batches} degraded batches, "
                     f"{self.fallback_frames} fallback frames")
        return text


@dataclass
class RealTimeStream:
    """Configuration of a real-time run.

    Parameters
    ----------
    fps:
        Frame arrival rate of the sensor.
    num_frames:
        Total frames in the stream (0 = an empty stream, which yields an
        all-zero scorecard rather than an error — streams that end before
        the first batch are a legitimate edge deployment outcome).
    batch_size:
        Adaptation batch size (frames per processing step).
    queue_capacity:
        Maximum *batches* of backlog the device buffers before dropping.
        ``0`` means no buffering at all: any batch arriving while the
        device is still busy is dropped.
    """

    fps: float
    num_frames: int
    batch_size: int
    queue_capacity: int = 2

    def __post_init__(self):
        if self.fps <= 0 or self.batch_size <= 0:
            raise ValueError("fps and batch_size must be positive")
        if self.num_frames < 0:
            raise ValueError("num_frames must be >= 0")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")


def simulate_realtime(summary: ModelSummary, device: DeviceSpec,
                      method: str, stream: RealTimeStream,
                      adapted_error_pct: Optional[float] = None,
                      baseline_error_pct: Optional[float] = None,
                      fault_batches: Optional[Mapping[int, str]] = None,
                      guard: bool = False,
                      poisoned_error_pct: float = 90.0,
                      scenario=None,
                      scenario_seed: int = 0
                      ) -> StreamScorecard:
    """Play ``stream`` through (model, device, method) in simulated time.

    ``adapted_error_pct`` / ``baseline_error_pct`` default to the
    reference grid values for the model (by summary name) and method.
    Raises :class:`MemoryError` via the memory model if the
    configuration cannot run at all.

    ``fault_batches`` maps batch indices to fault names (as produced by
    :meth:`repro.robustness.faults.FaultSchedule.plan`), modeling the
    native robustness layer analytically:

    - *unguarded*: a poisoning fault (NaN/Inf/constant/wrong-range
      pixels) corrupts the BN running statistics, so the faulted batch
      **and every subsequent processed batch** are scored at
      ``poisoned_error_pct`` (chance level for 10 classes by default) —
      the silent-failure baseline the robustness layer exists to fix;
    - ``guard=True``: the faulted batch triggers rollbacks down the
      degradation ladder (doubled service time and energy for the
      retries), its frames are answered by the uniform-logits fallback
      at ``poisoned_error_pct`` — a garbage batch stays unanswerable —
      but the stream *recovers*: subsequent clean batches score at the
      adapted error again, and the scorecard's guard counters record
      the cost.

    ``scenario`` attaches a scenario schedule (a compact spec string, a
    :class:`~repro.scenarios.spec.ScenarioSpec`, or a
    :class:`~repro.scenarios.schedule.ScenarioSchedule`; ``scenario_seed``
    seeds string/spec forms).  Analytically only the *budgeted* axis has
    a cost/accuracy consequence: batches whose plan freezes adaptation
    are served at inference-only latency and energy and scored at the
    baseline (un-adapted) error — the reference grid carries no
    per-corruption or per-severity errors, so corruption switching and
    severity ramps change the scorecard's ``scenario`` stamp but not its
    analytic numbers (the *native* scenario harness measures those).
    """
    if method not in _METHOD_FLAGS:
        raise KeyError(f"unknown method {method!r}")
    adapts, backward = _METHOD_FLAGS[method]
    memory = estimate_memory(summary, stream.batch_size, device,
                             does_backward=backward)
    if not memory.fits:
        raise MemoryError(
            f"{summary.model_name}/{method} at batch {stream.batch_size} "
            f"needs {memory.total_gb:.2f} GB on {device.display_name}")

    if adapted_error_pct is None:
        adapted_error_pct = reference_error_pct(summary.model_name, method,
                                                _nearest_paper_batch(stream.batch_size))
    if baseline_error_pct is None:
        baseline_error_pct = reference_error_pct(summary.model_name,
                                                 "no_adapt", 50)

    latency = forward_latency(summary, stream.batch_size, device,
                              adapts_bn_stats=adapts, does_backward=backward)
    service_time = latency.forward_time_s
    batch_energy = energy_per_batch(latency, device)
    batch_period = stream.batch_size / stream.fps

    schedule = None
    frozen_service = service_time
    frozen_energy = batch_energy
    if scenario is not None:
        # imported lazily: the scenario layer builds on this module
        from repro.scenarios.schedule import ScenarioSchedule, as_schedule
        schedule = scenario if isinstance(scenario, ScenarioSchedule) \
            else as_schedule(scenario, seed=scenario_seed)
        frozen = forward_latency(summary, stream.batch_size, device,
                                 adapts_bn_stats=False, does_backward=False)
        frozen_service = frozen.forward_time_s
        frozen_energy = energy_per_batch(frozen, device)

    fault_batches = dict(fault_batches or {})
    poisoning = _POISONING_FAULT_NAMES if fault_batches else frozenset()

    num_batches = stream.num_frames // stream.batch_size
    device_free_at = 0.0
    frames_processed = 0
    frames_dropped = 0
    batches_late = 0
    total_latency = 0.0
    energy = 0.0
    finish = 0.0
    error_sum = 0.0            # summed per-frame error over all frames
    faults_injected = 0
    rollbacks = 0
    degraded_batches = 0
    fallback_frames = 0
    poisoned = False           # unguarded BN stats corrupted permanently

    for index in range(num_batches):
        fault = fault_batches.get(index, "")
        if fault:
            faults_injected += 1
        frozen = (schedule is not None
                  and not schedule.plan_for(index).adapt)
        arrival_complete = (index + 1) * batch_period
        start = max(arrival_complete, device_free_at)
        backlog_batches = (start - arrival_complete) / batch_period
        if backlog_batches > stream.queue_capacity:
            # queue overflow: answer this batch with the stale model
            frames_dropped += stream.batch_size
            error_sum += (poisoned_error_pct if poisoned
                          else baseline_error_pct) * stream.batch_size
            # dropped frames are "served" instantly at arrival
            finish = max(finish, arrival_complete)
            continue
        batch_service = frozen_service if frozen else service_time
        batch_cost = frozen_energy if frozen else batch_energy
        if fault in poisoning:
            if guard:
                # rollback/retry down the ladder; frames answered by the
                # uniform fallback, stream state protected
                rollbacks += _LADDER_DEPTH[method]
                degraded_batches += 1
                fallback_frames += stream.batch_size
                batch_service = 2 * batch_service
                batch_cost = 2 * batch_cost
                error_sum += poisoned_error_pct * stream.batch_size
            else:
                # silent poisoning: only an *adapting* batch folds the
                # garbage into BN stats; a frozen batch is garbage-in
                # garbage-out for its own frames only
                poisoned = poisoned or (adapts and not frozen)
                error_sum += poisoned_error_pct * stream.batch_size
        else:
            if poisoned:
                batch_error = poisoned_error_pct
            elif frozen:
                # frozen window: served by inference only; analytically
                # scored at the un-adapted baseline error
                batch_error = baseline_error_pct
            else:
                batch_error = adapted_error_pct
            error_sum += batch_error * stream.batch_size
        finish = start + batch_service
        device_free_at = finish
        frames_processed += stream.batch_size
        energy += batch_cost
        # deadline: results should be ready before the *next* batch has
        # fully arrived (one-period deadline)
        if finish > arrival_complete + batch_period:
            batches_late += 1
        # frame latency: mean over the batch from each frame's arrival;
        # frames arrive uniformly across the period
        mean_arrival = arrival_complete - batch_period / 2
        total_latency += (finish - mean_arrival) * stream.batch_size

    frames_total = num_batches * stream.batch_size
    effective_error = error_sum / frames_total if frames_total else 0.0
    mean_latency = (total_latency / frames_processed
                    if frames_processed else 0.0)
    return StreamScorecard(
        frames_total=frames_total,
        frames_processed=frames_processed,
        frames_dropped=frames_dropped,
        batches_late=batches_late,
        batches_total=num_batches,
        mean_frame_latency_s=mean_latency,
        effective_error_pct=effective_error,
        energy_j=energy,
        wall_time_s=finish,
        faults_injected=faults_injected,
        rollbacks=rollbacks,
        degraded_batches=degraded_batches,
        fallback_frames=fallback_frames,
        scenario=schedule.label if schedule is not None else "",
    )


def _nearest_paper_batch(batch_size: int) -> int:
    """Snap an arbitrary batch size to the paper's 50/100/200 grid."""
    return min((50, 100, 200), key=lambda b: abs(b - batch_size))


def max_sustainable_fps(summary: ModelSummary, device: DeviceSpec,
                        method: str, batch_size: int) -> float:
    """Highest frame rate the device sustains without growing backlog.

    The device keeps up iff the per-batch service time does not exceed
    the batch arrival period: ``fps <= batch_size / service_time``.
    """
    adapts, backward = _METHOD_FLAGS[method]
    latency = forward_latency(summary, batch_size, device,
                              adapts_bn_stats=adapts, does_backward=backward)
    return batch_size / latency.forward_time_s
