"""Corruption-robustness metrics from the CIFAR-10-C literature.

The paper reports plain mean error over the 15 corruptions; the wider
benchmark literature (Hendrycks & Dietterich 2019) normalizes per
corruption against a baseline model, giving the *mean Corruption Error*:

    CE_c   = error(model, corruption c) / error(baseline, corruption c)
    mCE    = mean over corruptions of CE_c

and the *relative* variant that first subtracts clean error from both.
These helpers close the gap so results from this reproduction can be
compared against robustness papers directly.
"""

from __future__ import annotations

from typing import Mapping


def corruption_errors(per_corruption: Mapping[str, float]) -> float:
    """Plain mean error over corruptions (the paper's Fig. 2 metric)."""
    if not per_corruption:
        raise ValueError("no corruption errors given")
    return sum(per_corruption.values()) / len(per_corruption)


def mce(model_errors: Mapping[str, float],
        baseline_errors: Mapping[str, float]) -> float:
    """Mean Corruption Error of a model against a baseline (in %, 100 =
    exactly as fragile as the baseline, lower is better)."""
    _check_aligned(model_errors, baseline_errors)
    ratios = []
    for corruption, model_error in model_errors.items():
        baseline = baseline_errors[corruption]
        if baseline <= 0:
            raise ValueError(f"baseline error for {corruption!r} must be "
                             "positive")
        ratios.append(model_error / baseline)
    return 100.0 * sum(ratios) / len(ratios)


def relative_mce(model_errors: Mapping[str, float], model_clean: float,
                 baseline_errors: Mapping[str, float],
                 baseline_clean: float) -> float:
    """Relative mCE: degradation above clean error, normalized likewise."""
    _check_aligned(model_errors, baseline_errors)
    ratios = []
    for corruption, model_error in model_errors.items():
        baseline_gap = baseline_errors[corruption] - baseline_clean
        if baseline_gap <= 0:
            raise ValueError(
                f"baseline shows no degradation for {corruption!r}")
        ratios.append((model_error - model_clean) / baseline_gap)
    return 100.0 * sum(ratios) / len(ratios)


def _check_aligned(a: Mapping[str, float], b: Mapping[str, float]) -> None:
    if not a:
        raise ValueError("no corruption errors given")
    if set(a) != set(b):
        missing = sorted(set(a) ^ set(b))
        raise ValueError(f"corruption sets differ: {missing}")
