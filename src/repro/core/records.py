"""Measurement records and the study-result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.config import Case, case_label


@dataclass(frozen=True)
class MeasurementRecord:
    """One measured/simulated grid point (the paper's three objectives).

    ``oom=True`` records mark configurations that exceed device memory;
    their cost fields are meaningless and they are excluded from
    objective scoring, exactly as the paper drops them from its figures.
    """

    model: str
    method: str
    batch_size: int
    device: str
    error_pct: float
    forward_time_s: float
    energy_j: float
    memory_gb: float = 0.0
    oom: bool = False
    # phase decomposition (seconds), for the breakdown figures
    adapt_overhead_s: float = 0.0
    #: corruption type for per-corruption native records ("" = aggregate)
    corruption: str = ""
    #: execution backend that produced a native record ("" = simulated)
    backend: str = ""
    # robustness-layer accounting (repro.robustness): how many faults the
    # stream injected and what the guard did about them; all zero for
    # clean/unguarded runs
    faults_injected: int = 0
    rollbacks: int = 0
    degraded_batches: int = 0
    fallback_frames: int = 0
    #: whether GuardedAdaptation wrapped the method for this record
    guarded: bool = False
    #: serve-daemon tenant that produced this record ("" = batch study);
    #: lets per-tenant scorecards flow into the same result files the
    #: sweep runners write
    tenant: str = ""
    #: compact scenario spec the producing stream followed ("" = plain
    #: i.i.d. single-corruption stream); see :mod:`repro.scenarios`
    scenario: str = ""
    #: shift-segment ordinal for per-segment scenario records (-1 =
    #: whole-stream record); segment records carry the segment's
    #: corruption in ``corruption`` and its slice metrics in the
    #: error/guard fields
    segment: int = -1
    # resilient-execution accounting (repro.resilience): "ok" records are
    # real measurements; "failed"/"timeout" records are placeholders the
    # executor emits for cells that exhausted their retries (their cost
    # fields are NaN, like OOM records)
    status: str = "ok"
    #: executor attempts the producing cell took (1 = first try)
    attempts: int = 1

    @property
    def case(self) -> Case:
        return Case(self.model, self.method, self.batch_size, self.device)

    @property
    def label(self) -> str:
        return case_label(self.model, self.batch_size, self.method, self.device)

    @property
    def objectives(self) -> tuple:
        """(time s, energy J, error %) — the study's three costs."""
        return (self.forward_time_s, self.energy_j, self.error_pct)


@dataclass
class StudyResult:
    """A collection of grid-point records with filtering and rendering."""

    records: List[MeasurementRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def add(self, record: MeasurementRecord) -> None:
        self.records.append(record)

    def filter(self, *, model: Optional[str] = None, method: Optional[str] = None,
               batch_size: Optional[int] = None, device: Optional[str] = None,
               corruption: Optional[str] = None,
               include_oom: bool = True) -> "StudyResult":
        """Sub-select records by any combination of grid coordinates."""
        selected = []
        for r in self.records:
            if model is not None and r.model != model:
                continue
            if method is not None and r.method != method:
                continue
            if batch_size is not None and r.batch_size != batch_size:
                continue
            if device is not None and r.device != device:
                continue
            if corruption is not None and r.corruption != corruption:
                continue
            if not include_oom and r.oom:
                continue
            selected.append(r)
        return StudyResult(selected)

    def feasible(self) -> "StudyResult":
        """Only the records that did not run out of memory."""
        return StudyResult([r for r in self.records if not r.oom])

    def ok(self) -> "StudyResult":
        """Only the records whose producing cell actually completed."""
        return StudyResult([r for r in self.records if r.status == "ok"])

    def one(self, model: str, method: str, batch_size: int,
            device: Optional[str] = None,
            corruption: str = "") -> MeasurementRecord:
        """The unique record at a grid point (raises if absent/ambiguous).

        ``corruption`` defaults to the aggregate record; pass a corruption
        name to select a per-corruption native record.
        """
        matches = self.filter(model=model, method=method,
                              batch_size=batch_size, device=device,
                              corruption=corruption).records
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one record for ({model}, {method}, "
                f"{batch_size}, {device}); found {len(matches)}")
        return matches[0]

    def mean(self, getter: Callable[[MeasurementRecord], float]) -> float:
        values = [getter(r) for r in self.records]
        if not values:
            raise ValueError("mean() over an empty result set")
        return sum(values) / len(values)

    def to_table(self, title: str = "") -> str:
        """Aligned text table of all records."""
        lines = []
        if title:
            lines.append(title)
        header = (f"{'case':<38s} {'error %':>8s} {'time s':>9s} "
                  f"{'energy J':>9s} {'mem GB':>7s} {'status':>7s}")
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.records:
            status = "OOM" if r.oom else r.status
            broken = r.oom or r.status != "ok"
            time_str = "-" if broken else f"{r.forward_time_s:9.3f}"
            energy_str = "-" if broken else f"{r.energy_j:9.2f}"
            lines.append(f"{r.label:<38s} {r.error_pct:8.2f} {time_str:>9s} "
                         f"{energy_str:>9s} {r.memory_gb:7.2f} {status:>7s}")
        return "\n".join(lines)
