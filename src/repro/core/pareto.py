"""Pareto-front utilities over the study's three costs.

The paper's Figures 5, 8, 11, 12 are scatter plots of (forward time,
energy, error); the interesting design points are the non-dominated ones.
These helpers compute fronts and dominance relations for the report
renderers and the ablation benches.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.records import MeasurementRecord


def dominates(a: MeasurementRecord, b: MeasurementRecord) -> bool:
    """True if ``a`` is no worse than ``b`` on all three costs and strictly
    better on at least one (lower is better everywhere)."""
    ao, bo = a.objectives, b.objectives
    return all(x <= y for x, y in zip(ao, bo)) and any(x < y for x, y in zip(ao, bo))


def pareto_front(records: Sequence[MeasurementRecord]) -> List[MeasurementRecord]:
    """Non-dominated subset, preserving input order.

    OOM records (NaN costs) are excluded — they are infeasible, not
    merely dominated.
    """
    feasible = [r for r in records if not r.oom]
    front = []
    for candidate in feasible:
        if not any(dominates(other, candidate) for other in feasible
                   if other is not candidate):
            front.append(candidate)
    return front
