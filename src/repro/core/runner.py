"""Study runners: simulated (device cost models) and native (real execution).

``run_simulated_study`` sweeps the full paper grid: for every (model,
method, batch, device) it combines the reference accuracy grid with the
device latency/energy/memory models, marking OOM configurations exactly
where the paper found them.  This powers every latency/energy figure
(Figs. 3, 5, 6, 8, 9, 11, 12 and Table I).

``run_native_study`` actually executes the adaptation algorithms on our
numpy engine with tiny-profile robust models over corrupted SynthCIFAR
streams, producing measured (not reference) prediction errors — the
reproduction of Fig. 2's *phenomenon* rather than its absolute numbers.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.adapt import build_method
from repro.core.config import StudyConfig
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.reference import reference_error_pct
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.devices.calibrate import METHOD_FLAGS
from repro.devices.catalog import device_info
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.memory import estimate_memory
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import ModelSummary, summarize
from repro.train.trainer import pretrain_robust


_GRID_SUMMARY_CACHE: Dict[str, ModelSummary] = {}


def _grid_summaries(models: Sequence[str]) -> Dict[str, ModelSummary]:
    """Full-size summaries, built once per model name and reused — the
    grid sweep itself is cheap; instantiating full models is not."""
    for name in models:
        if name not in _GRID_SUMMARY_CACHE:
            _GRID_SUMMARY_CACHE[name] = summarize(build_model(name, "full"),
                                                  name=name)
    return {name: _GRID_SUMMARY_CACHE[name] for name in models}


def run_simulated_study(config: Optional[StudyConfig] = None) -> StudyResult:
    """Sweep the full grid through the device models (fast, deterministic)."""
    config = config or StudyConfig()
    summaries = _grid_summaries(config.models)
    result = StudyResult()
    for case in config.cases():
        summary = summaries[case.model]
        device = device_info(case.device)
        adapts, backward = METHOD_FLAGS[case.method]
        memory = estimate_memory(summary, case.batch_size, device,
                                 does_backward=backward)
        error = reference_error_pct(case.model, case.method, case.batch_size)
        if not memory.fits:
            result.add(MeasurementRecord(
                model=case.model, method=case.method,
                batch_size=case.batch_size, device=case.device,
                error_pct=error, forward_time_s=float("nan"),
                energy_j=float("nan"), memory_gb=memory.total_gb, oom=True))
            continue
        latency = forward_latency(summary, case.batch_size, device,
                                  adapts_bn_stats=adapts, does_backward=backward)
        baseline = forward_latency(summary, case.batch_size, device,
                                   adapts_bn_stats=False, does_backward=False)
        result.add(MeasurementRecord(
            model=case.model, method=case.method, batch_size=case.batch_size,
            device=case.device, error_pct=error,
            forward_time_s=latency.forward_time_s,
            energy_j=energy_per_batch(latency, device),
            memory_gb=memory.total_gb, oom=False,
            adapt_overhead_s=latency.forward_time_s - baseline.forward_time_s))
    return result


def run_native_study(config: Optional[StudyConfig] = None,
                     models: Optional[Dict[str, object]] = None,
                     per_corruption: bool = False) -> StudyResult:
    """Execute the adaptation grid for real on tiny-profile models.

    ``models`` may supply already-trained models keyed by name (else they
    are pre-trained via :func:`repro.train.pretrain_robust`, which caches
    to disk).  The returned records carry *measured* prediction errors
    over the corrupted streams and host wall-clock forward times; device
    and energy fields are not populated (device costs are the simulated
    runner's job).

    With ``per_corruption=True`` one extra record per corruption type is
    emitted alongside each aggregate record (its ``corruption`` field set),
    enabling mCE-style analysis via :mod:`repro.core.metrics`.
    """
    config = config or StudyConfig()
    result = StudyResult()
    test = make_synth_cifar(config.stream_samples, size=config.image_size,
                            seed=config.seed + 12345)
    streams = [CorruptionStream.from_dataset(test, corruption,
                                             severity=config.severity,
                                             seed=config.seed)
               for corruption in config.corruptions]
    for model_name in config.models:
        if models is not None and model_name in models:
            model = models[model_name]
        else:
            model = pretrain_robust(model_name, image_size=config.image_size,
                                    train_samples=config.train_samples,
                                    epochs=config.train_epochs, seed=config.seed)
        for method_name in config.methods:
            for batch_size in config.batch_sizes:
                kwargs = dict(config.method_kwargs.get(method_name, {}))
                if method_name == "bn_opt":
                    kwargs.setdefault("lr", config.bn_opt_lr)
                method = build_method(method_name, **kwargs)
                errors = []
                wall = 0.0
                batches = 0
                for stream in streams:
                    method.prepare(model)
                    correct = 0
                    total = 0
                    for images, labels in stream.batches(batch_size):
                        start = time.perf_counter()
                        logits = method.forward(images)
                        wall += time.perf_counter() - start
                        batches += 1
                        correct += int((logits.argmax(axis=-1) == labels).sum())
                        total += len(labels)
                    method.reset()
                    error = 100.0 * (1.0 - correct / total)
                    errors.append(error)
                    if per_corruption:
                        result.add(MeasurementRecord(
                            model=model_name, method=method_name,
                            batch_size=batch_size, device="host",
                            error_pct=error, forward_time_s=float("nan"),
                            energy_j=float("nan"),
                            corruption=stream.corruption))
                result.add(MeasurementRecord(
                    model=model_name, method=method_name,
                    batch_size=batch_size, device="host",
                    error_pct=float(np.mean(errors)),
                    forward_time_s=wall / max(batches, 1),
                    energy_j=float("nan")))
    return result
