"""Study runners: simulated (device cost models) and native (real execution).

``run_simulated_study`` sweeps the full paper grid: for every (model,
method, batch, device) it combines the reference accuracy grid with the
device latency/energy/memory models, marking OOM configurations exactly
where the paper found them.  This powers every latency/energy figure
(Figs. 3, 5, 6, 8, 9, 11, 12 and Table I).

``run_native_study`` actually executes the adaptation algorithms on our
numpy engine with tiny-profile robust models over corrupted SynthCIFAR
streams, producing measured (not reference) prediction errors — the
reproduction of Fig. 2's *phenomenon* rather than its absolute numbers.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.adapt import build_method
from repro.core.config import StudyConfig
from repro.engine import create_backend, use_backend
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.reference import reference_error_pct
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.devices.calibrate import METHOD_FLAGS
from repro.devices.catalog import device_info
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.memory import estimate_memory
from repro.models.registry import build_model
from repro.models.summary import ModelSummary, summarize
from repro.resilience.executor import CellSpec, ResilientExecutor
from repro.resilience.journal import RunJournal
from repro.robustness.faults import FaultInjector, parse_fault_specs
from repro.robustness.guard import GuardedAdaptation
from repro.serve.session import AdaptationSession
from repro.train.trainer import pretrain_robust


class _SummaryCache:
    """Thread-safe memo of full-model summaries keyed by model name.

    Building a full model to summarize it is the expensive part of a
    simulated sweep, so results are kept for the process lifetime; the
    lock makes concurrent sweeps (e.g. the threaded benchmark harness)
    build each summary exactly once.  ``clear()`` is the invalidation
    hook tests use to exercise cold-cache behaviour.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, ModelSummary] = {}
        self._lock = threading.Lock()

    def get_or_build(self, name: str,
                     builder: Callable[[str], ModelSummary]) -> ModelSummary:
        with self._lock:
            cached = self._entries.get(name)
        if cached is not None:
            return cached
        built = builder(name)
        with self._lock:
            # A concurrent builder may have won the race; keep its entry
            # so every caller sees one canonical summary per name.
            return self._entries.setdefault(name, built)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_GRID_SUMMARY_CACHE = _SummaryCache()


def _grid_summaries(models: Sequence[str]) -> Dict[str, ModelSummary]:
    """Full-size summaries, built once per model name and reused — the
    grid sweep itself is cheap; instantiating full models is not."""
    return {name: _GRID_SUMMARY_CACHE.get_or_build(
                name, lambda n: summarize(build_model(n, "full"), name=n))
            for name in models}


def run_simulated_study(config: Optional[StudyConfig] = None) -> StudyResult:
    """Sweep the full grid through the device models (fast, deterministic)."""
    config = config or StudyConfig()
    summaries = _grid_summaries(config.models)
    result = StudyResult()
    for case in config.cases():
        summary = summaries[case.model]
        device = device_info(case.device)
        adapts, backward = METHOD_FLAGS[case.method]
        memory = estimate_memory(summary, case.batch_size, device,
                                 does_backward=backward)
        error = reference_error_pct(case.model, case.method, case.batch_size)
        if not memory.fits:
            result.add(MeasurementRecord(
                model=case.model, method=case.method,
                batch_size=case.batch_size, device=case.device,
                error_pct=error, forward_time_s=float("nan"),
                energy_j=float("nan"), memory_gb=memory.total_gb, oom=True))
            continue
        latency = forward_latency(summary, case.batch_size, device,
                                  adapts_bn_stats=adapts, does_backward=backward)
        baseline = forward_latency(summary, case.batch_size, device,
                                   adapts_bn_stats=False, does_backward=False)
        result.add(MeasurementRecord(
            model=case.model, method=case.method, batch_size=case.batch_size,
            device=case.device, error_pct=error,
            forward_time_s=latency.forward_time_s,
            energy_j=energy_per_batch(latency, device),
            memory_gb=memory.total_gb, oom=False,
            adapt_overhead_s=latency.forward_time_s - baseline.forward_time_s))
    return result


def run_native_study(config: Optional[StudyConfig] = None,
                     models: Optional[Dict[str, object]] = None,
                     per_corruption: bool = False,
                     backend=None) -> StudyResult:
    """Execute the adaptation grid for real on tiny-profile models.

    ``models`` may supply already-trained models keyed by name (else they
    are pre-trained via :func:`repro.train.pretrain_robust`, which caches
    to disk).  The returned records carry *measured* prediction errors
    over the corrupted streams and host wall-clock forward times; device
    and energy fields are not populated (device costs are the simulated
    runner's job).

    With ``per_corruption=True`` one extra record per corruption type is
    emitted alongside each aggregate record (its ``corruption`` field set),
    enabling mCE-style analysis via :mod:`repro.core.metrics`.

    Execution runs on the backend named by ``config.backend`` (with
    ``config.threads`` workers for the threaded backend); every record's
    ``backend`` field says which engine produced it.  For serial runs a
    pre-built ``backend`` instance may be passed instead: it is used
    as-is and left open, so the caller can inspect it afterwards — how
    the CLI surfaces :class:`~repro.analysis.sanitize.SanitizerBackend`
    findings after a ``--backend sanitize`` study.

    ``config.faults`` injects faults into every stream on a seeded
    schedule, and ``config.guard`` wraps each method in
    :class:`~repro.robustness.guard.GuardedAdaptation`; the records'
    guard counters (``faults_injected``/``rollbacks``/
    ``degraded_batches``/``fallback_frames``) report what happened.

    The grid is driven cell by cell (one cell per (model, method,
    batch size) over the full corruption set) through a
    :class:`~repro.resilience.executor.ResilientExecutor`: a raising
    cell becomes a ``status="failed"`` record and the sweep continues,
    ``config.max_retries``/``config.cell_timeout`` bound retries and
    per-cell wall time, and ``config.journal``/``config.resume`` make
    the run durable and resumable — a resumed run replays completed
    cells from the journal bit-identically instead of re-executing
    them.

    With ``config.workers > 0`` the same cells are scheduled across
    that many worker *processes* by a
    :class:`~repro.parallel.ParallelExecutor` instead: each spawned
    worker re-enters the configured backend, rebuilds its streams, and
    shares pre-trained checkpoints through the file-locked disk cache,
    while the parent remains the single journal writer and merges
    records in canonical grid order — every field of the merged result
    except wall-clock timing is bit-identical to the serial run's.
    """
    config = config or StudyConfig()
    if config.workers:
        if backend is not None:
            raise ValueError("an explicit backend instance cannot be "
                             "shipped to worker processes; leave "
                             "backend=None when config.workers > 0")
        return _run_native_study_parallel(config, models, per_corruption)
    # A caller-supplied backend instance (e.g. a SanitizerBackend whose
    # findings the caller wants to inspect afterwards) is used as-is
    # and stays open; an engine-built one is owned and closed here.
    owns_backend = backend is None
    if backend is None:
        backend = create_backend(config.backend, threads=config.threads)
    try:
        with use_backend(backend):
            return _run_native_study(config, backend, models,
                                     per_corruption)
    finally:
        if owns_backend:
            backend.close()


def _config_fingerprint(config: StudyConfig, backend_name: str,
                        per_corruption: bool) -> str:
    """Stable digest of everything that shapes a native run's records.

    Stamped into the run journal's ``run_start`` entry; a resume under a
    different fingerprint is refused rather than silently merging
    incomparable measurements.  Wall-clock-only knobs (threads, journal
    placement, retry policy) are deliberately excluded.
    """
    payload = {
        "models": list(config.models), "methods": list(config.methods),
        "batch_sizes": list(config.batch_sizes),
        "corruptions": list(config.corruptions),
        "severity": config.severity, "image_size": config.image_size,
        "stream_samples": config.stream_samples,
        "train_samples": config.train_samples,
        "train_epochs": config.train_epochs,
        "bn_opt_lr": config.bn_opt_lr,
        "method_kwargs": config.method_kwargs,
        "faults": config.faults, "guard": config.guard,
        "scenario": config.scenario,
        "seed": config.seed, "backend": backend_name,
        "per_corruption": per_corruption,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _build_streams(config: StudyConfig) -> List:
    """The evaluation streams, seeded from the config.

    Depends only on config fields inside the resume fingerprint, so a
    serial parent and every parallel worker rebuild identical streams.
    With ``config.scenario`` set, the corruption grid is replaced by a
    single scenario-scheduled stream
    (:class:`~repro.scenarios.stream.ScenarioStream`).
    """
    test = make_synth_cifar(config.stream_samples, size=config.image_size,
                            seed=config.seed + 12345)
    if config.scenario:
        # imported lazily: core stays importable without the scenario
        # layer, which itself builds on core.streaming
        from repro.scenarios.stream import ScenarioStream
        return [ScenarioStream.from_dataset(test, config.scenario,
                                            seed=config.seed)]
    return [CorruptionStream.from_dataset(test, corruption,
                                          severity=config.severity,
                                          seed=config.seed)
            for corruption in config.corruptions]


def _grid_specs(config: StudyConfig, backend_name: str) -> List[CellSpec]:
    """Cell specs for the native grid, in canonical grid order."""
    return [CellSpec(key=f"{model_name}/{method_name}/{batch_size}",
                     model=model_name, method=method_name,
                     batch_size=batch_size, device="host",
                     backend=backend_name, guarded=config.guard)
            for model_name in config.models
            for method_name in config.methods
            for batch_size in config.batch_sizes]


def _run_native_study(config: StudyConfig, backend,
                      models: Optional[Dict[str, object]],
                      per_corruption: bool) -> StudyResult:
    streams = _build_streams(config)
    fault_specs = (parse_fault_specs(config.faults)
                   if config.faults else None)

    # Models are resolved lazily (a fully-resumed run never trains) and
    # cached so every cell of a model shares one instance, exactly as
    # the pre-cell monolithic loop did.
    model_cache: Dict[str, object] = dict(models) if models else {}

    def get_model(name: str):
        if name not in model_cache:
            model_cache[name] = pretrain_robust(
                name, image_size=config.image_size,
                train_samples=config.train_samples,
                epochs=config.train_epochs, seed=config.seed)
        return model_cache[name]

    def make_cell(spec: CellSpec):
        def run_cell() -> List[MeasurementRecord]:
            # re-enter the backend: the watchdog may run this closure on
            # a fresh thread, and use_backend() is thread-local
            with use_backend(backend):
                return _run_native_cell(config, get_model(spec.model), spec,
                                        streams, fault_specs, per_corruption)
        return run_cell

    cells = [(spec, make_cell(spec))
             for spec in _grid_specs(config, backend.name)]

    journal = (RunJournal(config.journal, resume=config.resume)
               if config.journal else None)
    executor = ResilientExecutor(
        journal, resume=config.resume, max_retries=config.max_retries,
        cell_timeout=config.cell_timeout, seed=config.seed,
        fingerprint=_config_fingerprint(config, backend.name,
                                        per_corruption))
    try:
        return executor.run(cells)
    finally:
        if journal is not None:
            journal.close()


# ----------------------------------------------------------------------
# Process-parallel native execution (:mod:`repro.parallel`)
# ----------------------------------------------------------------------

#: per-worker-process context, keyed by config fingerprint: the spawned
#: interpreter builds its backend/streams/models once and reuses them
#: for every cell it pulls (one config per worker in practice; a new
#: fingerprint evicts the old context).  Workers are single-threaded
#: today, but mutation stays behind the lock so a future threaded
#: worker loop cannot corrupt the context mid-build (REP005).
_WORKER_CONTEXT: Dict[str, dict] = {}
_WORKER_CONTEXT_LOCK = threading.Lock()


def _native_cell_worker(payload: dict, spec: CellSpec
                        ) -> List[MeasurementRecord]:
    """Module-level cell runner for parallel workers (spawn-picklable).

    ``payload`` ships once per worker: the :class:`StudyConfig`, the
    run fingerprint, ``per_corruption``, and optionally pre-built
    models (pickled whole).  Models not shipped are resolved through
    :func:`repro.train.pretrain_robust`, whose disk cache is file-locked
    so concurrent workers train each checkpoint exactly once.
    """
    config: StudyConfig = payload["config"]
    context = _WORKER_CONTEXT.get(payload["fingerprint"])
    if context is None:
        context = {
            "backend": create_backend(config.backend,
                                      threads=config.threads),
            "streams": _build_streams(config),
            "fault_specs": (parse_fault_specs(config.faults)
                            if config.faults else None),
            "models": dict(payload.get("models") or {}),
        }
        with _WORKER_CONTEXT_LOCK:
            _WORKER_CONTEXT.clear()
            _WORKER_CONTEXT[payload["fingerprint"]] = context
    model = context["models"].get(spec.model)
    if model is None:
        model = pretrain_robust(
            spec.model, image_size=config.image_size,
            train_samples=config.train_samples,
            epochs=config.train_epochs, seed=config.seed)
        context["models"][spec.model] = model
    # re-enter the backend: use_backend() is thread-local and this is a
    # fresh spawned interpreter
    with use_backend(context["backend"]):
        return _run_native_cell(config, model, spec, context["streams"],
                                context["fault_specs"],
                                payload["per_corruption"])


def _run_native_study_parallel(config: StudyConfig,
                               models: Optional[Dict[str, object]],
                               per_corruption: bool) -> StudyResult:
    """Drive the native grid across ``config.workers`` processes."""
    from repro.parallel import ParallelExecutor

    probe = create_backend(config.backend, threads=1)
    backend_name = probe.name
    probe.close()
    fingerprint = _config_fingerprint(config, backend_name, per_corruption)
    cells = [(spec, _native_cell_worker)
             for spec in _grid_specs(config, backend_name)]
    payload = {"config": config, "fingerprint": fingerprint,
               "per_corruption": per_corruption, "models": models}
    journal = (RunJournal(config.journal, resume=config.resume)
               if config.journal else None)
    executor = ParallelExecutor(
        journal, workers=config.workers, resume=config.resume,
        max_retries=config.max_retries, cell_timeout=config.cell_timeout,
        seed=config.seed, fingerprint=fingerprint)
    try:
        return executor.run(cells, payload=payload)
    finally:
        if journal is not None:
            journal.close()


def _run_native_cell(config: StudyConfig, model, spec: CellSpec,
                     streams: Sequence[CorruptionStream],
                     fault_specs, per_corruption: bool
                     ) -> List[MeasurementRecord]:
    """Execute one isolated grid cell over the full corruption set.

    Each corruption stream is driven through an
    :class:`~repro.serve.session.AdaptationSession` with the
    ``"always"``-restore policy: the session harvests the guard
    counters and then resets the method whether the stream finished or
    raised, so a failed cell cannot leak adapted BN state into the
    cells that share this model instance — and every stream of the
    cell starts from the same pristine state (episodic evaluation).
    """
    kwargs = dict(config.method_kwargs.get(spec.method, {}))
    if spec.method == "bn_opt":
        kwargs.setdefault("lr", config.bn_opt_lr)
    method = build_method(spec.method, **kwargs)
    if config.guard:
        method = GuardedAdaptation(method)
    if config.scenario:
        return _run_scenario_cell(config, model, spec, streams[0],
                                  fault_specs, per_corruption, method)
    records: List[MeasurementRecord] = []
    errors = []
    wall = 0.0
    batches = 0
    counters = np.zeros(4, dtype=int)   # faults, rollbacks,
    #                                     degraded, fallback
    for stream_index, stream in enumerate(streams):
        batch_iter = stream.batches(spec.batch_size)
        injector = None
        if fault_specs is not None:
            injector = FaultInjector(
                fault_specs,
                seed=config.seed + 7919 * stream_index)
            batch_iter = injector.inject(batch_iter)
        with AdaptationSession(model, method,
                               restore="always") as session:
            for images, labels in batch_iter:
                session.process_batch(images, labels)
            session.faults_injected = (injector.faults_injected
                                       if injector else 0)
        wall += session.wall_time_s
        batches += session.batches_total
        stream_counters = np.array([
            session.faults_injected, session.rollbacks,
            session.degraded_batches, session.fallback_frames])
        counters += stream_counters
        # a stream shorter than the batch size yields zero samples;
        # report NaN for it rather than dividing by zero
        error = (100.0 * (1.0 - session.frames_correct
                          / session.frames_processed)
                 if session.frames_processed else float("nan"))
        errors.append(error)
        if per_corruption:
            records.append(MeasurementRecord(
                model=spec.model, method=spec.method,
                batch_size=spec.batch_size, device=spec.device,
                error_pct=error, forward_time_s=float("nan"),
                energy_j=float("nan"),
                corruption=stream.corruption,
                backend=spec.backend,
                faults_injected=int(stream_counters[0]),
                rollbacks=int(stream_counters[1]),
                degraded_batches=int(stream_counters[2]),
                fallback_frames=int(stream_counters[3]),
                guarded=config.guard))
    scored = [e for e in errors if not math.isnan(e)]
    records.append(MeasurementRecord(
        model=spec.model, method=spec.method,
        batch_size=spec.batch_size, device=spec.device,
        error_pct=float(np.mean(scored)) if scored else float("nan"),
        forward_time_s=wall / max(batches, 1),
        energy_j=float("nan"), backend=spec.backend,
        faults_injected=int(counters[0]),
        rollbacks=int(counters[1]),
        degraded_batches=int(counters[2]),
        fallback_frames=int(counters[3]),
        guarded=config.guard))
    return records


def _run_scenario_cell(config: StudyConfig, model, spec: CellSpec,
                       stream, fault_specs, per_corruption: bool,
                       method) -> List[MeasurementRecord]:
    """One grid cell over a scenario stream instead of the corruption set.

    The single stream is driven through the scenario harness with the
    same episodic ``"always"``-restore contract as the corruption-grid
    path; ``per_corruption=True`` emits one record per *shift segment*
    (its ``corruption`` field carrying the segment's corruption and
    ``segment`` its ordinal) instead of one per corruption type.
    """
    from repro.scenarios.harness import run_scenario_stream

    outcome = run_scenario_stream(
        model, method, stream, batch_size=spec.batch_size,
        guard=False,  # a guarded method is already wrapped above
        faults=fault_specs, seed=config.seed, restore="always")
    card = outcome.scorecard
    records: List[MeasurementRecord] = []
    if per_corruption:
        for segment in outcome.segments:
            records.append(MeasurementRecord(
                model=spec.model, method=spec.method,
                batch_size=spec.batch_size, device=spec.device,
                error_pct=(segment.error_pct if segment.frames
                           else float("nan")),
                forward_time_s=float("nan"), energy_j=float("nan"),
                corruption=segment.corruption, backend=spec.backend,
                rollbacks=segment.rollbacks,
                degraded_batches=segment.degraded_batches,
                fallback_frames=segment.fallback_frames,
                guarded=config.guard, scenario=outcome.scenario,
                segment=segment.ordinal))
    records.append(MeasurementRecord(
        model=spec.model, method=spec.method,
        batch_size=spec.batch_size, device=spec.device,
        error_pct=(card.effective_error_pct if card.frames_processed
                   else float("nan")),
        forward_time_s=card.wall_time_s / max(card.batches_total, 1),
        energy_j=float("nan"), backend=spec.backend,
        faults_injected=card.faults_injected,
        rollbacks=card.rollbacks,
        degraded_batches=card.degraded_batches,
        fallback_frames=card.fallback_frames,
        guarded=config.guard, scenario=outcome.scenario))
    return records
