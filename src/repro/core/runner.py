"""Study runners: simulated (device cost models) and native (real execution).

``run_simulated_study`` sweeps the full paper grid: for every (model,
method, batch, device) it combines the reference accuracy grid with the
device latency/energy/memory models, marking OOM configurations exactly
where the paper found them.  This powers every latency/energy figure
(Figs. 3, 5, 6, 8, 9, 11, 12 and Table I).

``run_native_study`` actually executes the adaptation algorithms on our
numpy engine with tiny-profile robust models over corrupted SynthCIFAR
streams, producing measured (not reference) prediction errors — the
reproduction of Fig. 2's *phenomenon* rather than its absolute numbers.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.adapt import build_method
from repro.core.config import StudyConfig
from repro.engine import create_backend, use_backend
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.reference import reference_error_pct
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.devices.calibrate import METHOD_FLAGS
from repro.devices.catalog import device_info
from repro.devices.cost_model import forward_latency
from repro.devices.energy import energy_per_batch
from repro.devices.memory import estimate_memory
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import ModelSummary, summarize
from repro.robustness.faults import FaultInjector, parse_fault_specs
from repro.robustness.guard import GuardedAdaptation
from repro.train.trainer import pretrain_robust


class _SummaryCache:
    """Thread-safe memo of full-model summaries keyed by model name.

    Building a full model to summarize it is the expensive part of a
    simulated sweep, so results are kept for the process lifetime; the
    lock makes concurrent sweeps (e.g. the threaded benchmark harness)
    build each summary exactly once.  ``clear()`` is the invalidation
    hook tests use to exercise cold-cache behaviour.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, ModelSummary] = {}
        self._lock = threading.Lock()

    def get_or_build(self, name: str,
                     builder: Callable[[str], ModelSummary]) -> ModelSummary:
        with self._lock:
            cached = self._entries.get(name)
        if cached is not None:
            return cached
        built = builder(name)
        with self._lock:
            # A concurrent builder may have won the race; keep its entry
            # so every caller sees one canonical summary per name.
            return self._entries.setdefault(name, built)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_GRID_SUMMARY_CACHE = _SummaryCache()


def _grid_summaries(models: Sequence[str]) -> Dict[str, ModelSummary]:
    """Full-size summaries, built once per model name and reused — the
    grid sweep itself is cheap; instantiating full models is not."""
    return {name: _GRID_SUMMARY_CACHE.get_or_build(
                name, lambda n: summarize(build_model(n, "full"), name=n))
            for name in models}


def run_simulated_study(config: Optional[StudyConfig] = None) -> StudyResult:
    """Sweep the full grid through the device models (fast, deterministic)."""
    config = config or StudyConfig()
    summaries = _grid_summaries(config.models)
    result = StudyResult()
    for case in config.cases():
        summary = summaries[case.model]
        device = device_info(case.device)
        adapts, backward = METHOD_FLAGS[case.method]
        memory = estimate_memory(summary, case.batch_size, device,
                                 does_backward=backward)
        error = reference_error_pct(case.model, case.method, case.batch_size)
        if not memory.fits:
            result.add(MeasurementRecord(
                model=case.model, method=case.method,
                batch_size=case.batch_size, device=case.device,
                error_pct=error, forward_time_s=float("nan"),
                energy_j=float("nan"), memory_gb=memory.total_gb, oom=True))
            continue
        latency = forward_latency(summary, case.batch_size, device,
                                  adapts_bn_stats=adapts, does_backward=backward)
        baseline = forward_latency(summary, case.batch_size, device,
                                   adapts_bn_stats=False, does_backward=False)
        result.add(MeasurementRecord(
            model=case.model, method=case.method, batch_size=case.batch_size,
            device=case.device, error_pct=error,
            forward_time_s=latency.forward_time_s,
            energy_j=energy_per_batch(latency, device),
            memory_gb=memory.total_gb, oom=False,
            adapt_overhead_s=latency.forward_time_s - baseline.forward_time_s))
    return result


def run_native_study(config: Optional[StudyConfig] = None,
                     models: Optional[Dict[str, object]] = None,
                     per_corruption: bool = False) -> StudyResult:
    """Execute the adaptation grid for real on tiny-profile models.

    ``models`` may supply already-trained models keyed by name (else they
    are pre-trained via :func:`repro.train.pretrain_robust`, which caches
    to disk).  The returned records carry *measured* prediction errors
    over the corrupted streams and host wall-clock forward times; device
    and energy fields are not populated (device costs are the simulated
    runner's job).

    With ``per_corruption=True`` one extra record per corruption type is
    emitted alongside each aggregate record (its ``corruption`` field set),
    enabling mCE-style analysis via :mod:`repro.core.metrics`.

    Execution runs on the backend named by ``config.backend`` (with
    ``config.threads`` workers for the threaded backend); every record's
    ``backend`` field says which engine produced it.

    ``config.faults`` injects faults into every stream on a seeded
    schedule, and ``config.guard`` wraps each method in
    :class:`~repro.robustness.guard.GuardedAdaptation`; the records'
    guard counters (``faults_injected``/``rollbacks``/
    ``degraded_batches``/``fallback_frames``) report what happened.
    """
    config = config or StudyConfig()
    backend = create_backend(config.backend, threads=config.threads)
    try:
        with use_backend(backend):
            return _run_native_study(config, backend.name, models,
                                     per_corruption)
    finally:
        backend.close()


def _run_native_study(config: StudyConfig, backend_name: str,
                      models: Optional[Dict[str, object]],
                      per_corruption: bool) -> StudyResult:
    result = StudyResult()
    test = make_synth_cifar(config.stream_samples, size=config.image_size,
                            seed=config.seed + 12345)
    streams = [CorruptionStream.from_dataset(test, corruption,
                                             severity=config.severity,
                                             seed=config.seed)
               for corruption in config.corruptions]
    fault_specs = (parse_fault_specs(config.faults)
                   if config.faults else None)
    for model_name in config.models:
        if models is not None and model_name in models:
            model = models[model_name]
        else:
            model = pretrain_robust(model_name, image_size=config.image_size,
                                    train_samples=config.train_samples,
                                    epochs=config.train_epochs, seed=config.seed)
        for method_name in config.methods:
            for batch_size in config.batch_sizes:
                kwargs = dict(config.method_kwargs.get(method_name, {}))
                if method_name == "bn_opt":
                    kwargs.setdefault("lr", config.bn_opt_lr)
                method = build_method(method_name, **kwargs)
                if config.guard:
                    method = GuardedAdaptation(method)
                errors = []
                wall = 0.0
                batches = 0
                counters = np.zeros(4, dtype=int)   # faults, rollbacks,
                #                                     degraded, fallback
                for stream_index, stream in enumerate(streams):
                    method.prepare(model)
                    batch_iter = stream.batches(batch_size)
                    injector = None
                    if fault_specs is not None:
                        injector = FaultInjector(
                            fault_specs,
                            seed=config.seed + 7919 * stream_index)
                        batch_iter = injector.inject(batch_iter)
                    correct = 0
                    total = 0
                    for images, labels in batch_iter:
                        start = time.perf_counter()
                        logits = method.forward(images)
                        wall += time.perf_counter() - start
                        batches += 1
                        predictions = np.nan_to_num(logits).argmax(axis=-1)
                        correct += int((predictions == labels).sum())
                        total += len(labels)
                    stream_counters = np.array([
                        injector.faults_injected if injector else 0,
                        getattr(method, "rollbacks", 0),
                        getattr(method, "degraded_batches", 0),
                        getattr(method, "fallback_frames", 0)])
                    counters += stream_counters
                    # harvest before reset(): the guard re-arms its
                    # counters when it re-prepares
                    method.reset()
                    error = 100.0 * (1.0 - correct / total)
                    errors.append(error)
                    if per_corruption:
                        result.add(MeasurementRecord(
                            model=model_name, method=method_name,
                            batch_size=batch_size, device="host",
                            error_pct=error, forward_time_s=float("nan"),
                            energy_j=float("nan"),
                            corruption=stream.corruption,
                            backend=backend_name,
                            faults_injected=int(stream_counters[0]),
                            rollbacks=int(stream_counters[1]),
                            degraded_batches=int(stream_counters[2]),
                            fallback_frames=int(stream_counters[3]),
                            guarded=config.guard))
                result.add(MeasurementRecord(
                    model=model_name, method=method_name,
                    batch_size=batch_size, device="host",
                    error_pct=float(np.mean(errors)),
                    forward_time_s=wall / max(batches, 1),
                    energy_j=float("nan"), backend=backend_name,
                    faults_injected=int(counters[0]),
                    rollbacks=int(counters[1]),
                    degraded_batches=int(counters[2]),
                    fallback_frames=int(counters[3]),
                    guarded=config.guard))
    return result
