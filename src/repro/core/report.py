"""Figure/table renderers: each paper figure as a text report.

Every function returns a string; the benchmark modules print these so
``pytest benchmarks/ -s`` regenerates the paper's tables and figures as
text.  ASCII bar charts are used where the paper uses bar figures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import PAPER_BATCH_SIZES, STUDY_METHODS, STUDY_MODELS, case_label
from repro.core.objectives import format_selection_table
from repro.core.pareto import pareto_front
from repro.core.records import StudyResult
from repro.core.reference import reference_error_pct

_BAR_WIDTH = 42


def _bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0:
        return ""
    filled = int(round(width * value / maximum))
    return "#" * max(filled, 1 if value > 0 else 0)


def render_error_grid(errors: Optional[Dict] = None, title: str = "Fig. 2: "
                      "average prediction error on the corrupted stream (%)"
                      ) -> str:
    """Fig. 2-style grid: models x methods x batch sizes.

    ``errors`` maps (model, method, batch) -> error %; defaults to the
    paper reference grid.
    """
    def get(model: str, method: str, batch: int) -> float:
        if errors is not None:
            return errors[(model, method, batch)]
        return reference_error_pct(model, method, batch)

    lines = [title]
    header = f"{'model':<12s} {'batch':>6s} " + "".join(
        f"{m:>10s}" for m in STUDY_METHODS)
    lines.append(header)
    lines.append("-" * len(header))
    for model in STUDY_MODELS:
        for batch in PAPER_BATCH_SIZES:
            row = f"{model:<12s} {batch:>6d} "
            row += "".join(f"{get(model, method, batch):>10.2f}"
                           for method in STUDY_METHODS)
            lines.append(row)
    return "\n".join(lines)


def render_forward_times(result: StudyResult, device: str,
                         title: str = "") -> str:
    """Figs. 3/6/9-style report: per-case forward times with bars."""
    subset = result.filter(device=device)
    feasible_times = [r.forward_time_s for r in subset.records if not r.oom]
    maximum = max(feasible_times) if feasible_times else 1.0
    lines = [title or f"Forward times (inference + adaptation) on {device}"]
    for r in subset.records:
        label = case_label(r.model, r.batch_size, r.method)
        if r.oom:
            lines.append(f"{label:<34s}      OOM")
        else:
            lines.append(f"{label:<34s} {r.forward_time_s:8.3f}s "
                         f"{_bar(r.forward_time_s, maximum)}")
    return "\n".join(lines)


def render_tradeoffs(result: StudyResult, device: str | None = None,
                     title: str = "") -> str:
    """Figs. 5/8/11/12-style report: all points + Pareto front + selections."""
    from repro.core.plots import scatter_records

    subset = result.filter(device=device) if device else result
    lines = [title or f"Performance-energy-accuracy trade-offs "
             f"({device or 'all devices'})"]
    lines.append(subset.to_table())
    lines.append("")
    lines.append(scatter_records(subset.records,
                                 group_by=lambda r: r.method,
                                 width=56, height=14))
    front = pareto_front(subset.records)
    lines.append("")
    lines.append("Pareto-optimal points:")
    for r in front:
        lines.append(f"  {r.label:<40s} ({r.forward_time_s:.3f}s, "
                     f"{r.energy_j:.2f}J, {r.error_pct:.2f}%)")
    lines.append("")
    lines.append(format_selection_table(subset,
                 title="Optimal configuration per weight case:"))
    return "\n".join(lines)


def render_overall(result: StudyResult) -> str:
    """Fig. 12-style report: all devices pooled + the A1/A2/A3 points."""
    feasible = result.feasible()
    best_error = min(r.error_pct for r in feasible.records)
    accuracy_champions = [r for r in feasible.records
                          if abs(r.error_pct - best_error) < 1e-9]
    a1 = min(accuracy_champions, key=lambda r: r.forward_time_s)
    a2 = min(accuracy_champions, key=lambda r: r.energy_j)
    lines = ["Fig. 12: overall results (all devices)"]
    lines.append(feasible.to_table())
    lines.append("")
    lines.append(f"A1 (lowest runtime at best error {best_error:.2f}%): "
                 f"{a1.label} — {a1.forward_time_s:.2f}s")
    lines.append(f"A2 (lowest energy at best error {best_error:.2f}%): "
                 f"{a2.label} — {a2.energy_j:.2f}J")
    lines.append("")
    lines.append(format_selection_table(feasible,
                 title="A3 candidates (weighted objective over all devices):"))
    return "\n".join(lines)


def render_mobilenet_table(result: StudyResult, device: str = "xavier_nx_gpu"
                           ) -> str:
    """Table I: MobileNet forward times on the NX GPU."""
    lines = [f"Table I: MobileNet-V2 forward time on {device} (s)"]
    header = f"{'batch':>6s} {'BN-Opt':>9s} {'BN-Norm':>9s} {'No-Adapt':>9s}"
    lines.append(header)
    lines.append("-" * len(header))
    for batch in PAPER_BATCH_SIZES:
        row = f"{batch:>6d} "
        for method in ("bn_opt", "bn_norm", "no_adapt"):
            record = result.one("mobilenet_v2", method, batch, device)
            row += f"{record.forward_time_s:9.2f}"
        lines.append(row)
    return "\n".join(lines)
