"""Study-grid configuration and case naming."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.data.corruptions import CORRUPTION_NAMES
from repro.devices.catalog import DEVICE_NAMES
from repro.models.registry import PAPER_LABELS

#: the paper's study grid axes
STUDY_MODELS = ("resnext29", "wrn40_2", "resnet18")
STUDY_METHODS = ("no_adapt", "bn_norm", "bn_opt")
PAPER_BATCH_SIZES = (50, 100, 200)

_METHOD_LABELS = {"no_adapt": "No-Adapt", "bn_norm": "BN-Norm", "bn_opt": "BN-Opt"}


@dataclass(frozen=True)
class Case:
    """One point of the study grid."""

    model: str
    method: str
    batch_size: int
    device: str

    @property
    def label(self) -> str:
        return case_label(self.model, self.batch_size, self.method, self.device)


def case_label(model: str, batch_size: int, method: str | None = None,
               device: str | None = None) -> str:
    """Paper-style case name, e.g. ``"WRN-AM-50 + BN-Norm @ xavier_nx_gpu"``."""
    label = f"{PAPER_LABELS.get(model, model)}-{batch_size}"
    if method is not None:
        label += f" + {_METHOD_LABELS.get(method, method)}"
    if device is not None:
        label += f" @ {device}"
    return label


@dataclass
class StudyConfig:
    """Axes and parameters of a measurement study run.

    The defaults replicate the paper's grid; the native accuracy runner
    additionally uses the data-related fields (which the simulated runner
    ignores since its accuracies come from the reference grid).
    """

    models: Sequence[str] = STUDY_MODELS
    methods: Sequence[str] = STUDY_METHODS
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES
    devices: Sequence[str] = DEVICE_NAMES
    severity: int = 5
    corruptions: Sequence[str] = tuple(CORRUPTION_NAMES)
    # native-execution parameters (tiny profiles)
    image_size: int = 16
    stream_samples: int = 600
    train_samples: int = 4000
    train_epochs: int = 10
    bn_opt_lr: float = 5e-3
    #: extra constructor kwargs per method name for the native runner
    #: (e.g. {"bn_norm_blend": {"source_count": 8}})
    method_kwargs: dict = field(default_factory=dict)
    #: execution backend for native runs ("numpy" or "threaded"); see
    #: :mod:`repro.engine`.  Ignored by the simulated runner.
    backend: str = "numpy"
    #: worker threads for the threaded backend (0 = one per CPU core)
    threads: int = 0
    #: fault-injection spec for native streams ("" = clean), e.g.
    #: "nan:0.1,constant@3"; see :mod:`repro.robustness.faults`
    faults: str = ""
    #: scenario spec for native streams ("" = the per-corruption grid),
    #: e.g. "markov:p=0.1@3"; see :mod:`repro.scenarios`.  With a
    #: scenario set, the ``corruptions`` axis is replaced by one
    #: scenario stream per (model, method, batch) cell and records are
    #: emitted per shift segment.
    scenario: str = ""
    #: wrap each native method in GuardedAdaptation
    #: (:mod:`repro.robustness.guard`)
    guard: bool = False
    # resilient-execution parameters (:mod:`repro.resilience`); the
    # native runner drives its grid cell-by-cell through a
    # ResilientExecutor configured from these
    #: JSONL run-journal path for native runs ("" = no journal)
    journal: str = ""
    #: skip cells the journal already records as ok (requires ``journal``)
    resume: bool = False
    #: extra attempts per failing native cell (0 = fail once, move on)
    max_retries: int = 0
    #: soft per-cell watchdog deadline in seconds (0 = no deadline)
    cell_timeout: float = 0.0
    #: worker *processes* for the native grid (:mod:`repro.parallel`);
    #: 0 = serial in-process execution via the ResilientExecutor.  A
    #: wall-clock-only knob: it never changes the measured records, so
    #: (like ``threads``) it is excluded from the resume fingerprint —
    #: a journal written serially can be resumed with workers and vice
    #: versa.
    workers: int = 0
    seed: int = 0

    def cases(self) -> List[Case]:
        """Enumerate the full grid in canonical order."""
        return [Case(model, method, batch, device)
                for device in self.devices
                for model in self.models
                for method in self.methods
                for batch in self.batch_sizes]
