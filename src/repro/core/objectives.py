"""Weighted multi-objective selection (Section III-F of the paper).

The paper combines its three costs into ``w1*time + w2*energy +
w3*pred_error`` (weights summing to 1) and selects optimal configurations
for four weight cases.  The paper's text applies the weights to *raw*
values (seconds, Joules, percent) — which reproduces its Ultra96 and
Xavier selections — but its Raspberry-Pi "performance priority" pick is
only consistent with per-metric normalization.  We therefore implement
three schemes and report selections under each (EXPERIMENTS.md records
which scheme matches which paper claim):

- ``raw``    — weights applied to raw values (the formula as written);
- ``max``    — each metric divided by its maximum over the candidate set;
- ``minmax`` — each metric scaled to [0, 1] over the candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.records import MeasurementRecord, StudyResult

NORMALIZATION_SCHEMES = ("raw", "max", "minmax")


@dataclass(frozen=True)
class WeightCase:
    """One of the paper's four weighting scenarios."""

    name: str
    w_time: float
    w_energy: float
    w_error: float

    @property
    def weights(self) -> Tuple[float, float, float]:
        return (self.w_time, self.w_energy, self.w_error)


#: Section III-F: the four cases covering "a wide variety of scenarios".
WEIGHT_CASES: Dict[str, WeightCase] = {
    "equal": WeightCase("equal", 1 / 3, 1 / 3, 1 / 3),
    "performance": WeightCase("performance", 0.8, 0.1, 0.1),
    "accuracy": WeightCase("accuracy", 0.1, 0.1, 0.8),
    "energy": WeightCase("energy", 0.1, 0.8, 0.1),
}


def normalize_records(records: Sequence[MeasurementRecord],
                      scheme: str) -> np.ndarray:
    """(N, 3) array of per-record (time, energy, error) under ``scheme``."""
    if scheme not in NORMALIZATION_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from "
                         f"{NORMALIZATION_SCHEMES}")
    values = np.array([[r.forward_time_s, r.energy_j, r.error_pct]
                       for r in records], dtype=np.float64)
    if np.isnan(values).any():
        raise ValueError("normalize_records() requires feasible (non-OOM) "
                         "records; call .feasible() first")
    if scheme == "raw":
        return values
    maxima = values.max(axis=0)
    if scheme == "max":
        return values / np.where(maxima > 0, maxima, 1.0)
    minima = values.min(axis=0)
    span = np.where(maxima > minima, maxima - minima, 1.0)
    return (values - minima) / span


def score_records(records: Sequence[MeasurementRecord], case: WeightCase,
                  scheme: str = "raw") -> List[float]:
    """Weighted-objective score per record (lower is better)."""
    normalized = normalize_records(records, scheme)
    weights = np.array(case.weights)
    return list(normalized @ weights)


def select_best(result: StudyResult, case: WeightCase,
                scheme: str = "raw") -> MeasurementRecord:
    """Argmin of the weighted objective over the feasible records."""
    feasible = result.feasible().records
    if not feasible:
        raise ValueError("no feasible records to select from")
    scores = score_records(feasible, case, scheme)
    return feasible[int(np.argmin(scores))]


def selection_table(result: StudyResult,
                    schemes: Sequence[str] = ("raw", "minmax")
                    ) -> List[Tuple[str, str, MeasurementRecord]]:
    """Best record for every (weight case, scheme) combination."""
    rows = []
    for case_name, case in WEIGHT_CASES.items():
        for scheme in schemes:
            rows.append((case_name, scheme, select_best(result, case, scheme)))
    return rows


def format_selection_table(result: StudyResult,
                           schemes: Sequence[str] = ("raw", "minmax"),
                           title: str = "") -> str:
    """Render the per-case optimal configurations as text."""
    lines = []
    if title:
        lines.append(title)
    header = (f"{'weights':<13s} {'scheme':<8s} {'selected case':<38s} "
              f"{'time s':>8s} {'energy J':>9s} {'error %':>8s}")
    lines.append(header)
    lines.append("-" * len(header))
    for case_name, scheme, record in selection_table(result, schemes):
        lines.append(f"{case_name:<13s} {scheme:<8s} {record.label:<38s} "
                     f"{record.forward_time_s:8.3f} {record.energy_j:9.2f} "
                     f"{record.error_pct:8.2f}")
    return "\n".join(lines)
