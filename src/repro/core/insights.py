"""Programmatic verification of the paper's Section IV-G insights.

The paper distils six architecture-algorithm insights from its study.
This module re-derives each one from the simulated grid and the model
summaries, returning a structured report — the reproduction's capstone:
if the substrates are right, every insight should fall out of the data.

Insights (paraphrased):

1. Fewer BN parameters => more edge-amenable adaptation, even if peak
   post-adaptation accuracy is lower (WRN beats RXT on the combined
   objective everywhere).
2. BN-Norm is the edge-suited algorithm: far cheaper than BN-Opt at a
   small accuracy cost; BN-Opt's backward pass is the bottleneck.
3. Embedded GPUs accelerate both algorithms, but the remaining
   adaptation overhead (213 ms at A3) can still break real-time budgets.
4. (Pruning/quantization — future work in the paper; out of scope here.)
5. Memory high-water mark decides feasibility: the autograd graph, not
   the weights, is what OOMs.
6. Online adaptation cannot replace robust offline training (MobileNet's
   28.1 % floor vs the robust models' 10-13 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.records import StudyResult
from repro.core.reference import reference_error_pct
from repro.devices.catalog import device_info
from repro.devices.memory import estimate_memory
from repro.models.summary import ModelSummary


@dataclass(frozen=True)
class Insight:
    """One verified (or refuted) paper insight."""

    number: int
    claim: str
    holds: bool
    evidence: str


def derive_insights(study: StudyResult,
                    summaries: Dict[str, ModelSummary]) -> List[Insight]:
    """Check each Section IV-G insight against the simulated grid."""
    insights: List[Insight] = []

    # -- 1: small-BN models win the combined objective despite worse
    #       peak accuracy ------------------------------------------------
    winners = set()
    for device in ("ultra96", "rpi4", "xavier_nx_gpu"):
        best = select_best(study.filter(device=device),
                           WEIGHT_CASES["equal"], "raw")
        winners.add(best.model)
    best_accuracy_model = min(
        ("wrn40_2", "resnet18", "resnext29"),
        key=lambda m: reference_error_pct(m, "bn_opt", 200))
    holds1 = winners == {"wrn40_2"} and best_accuracy_model == "resnext29"
    insights.append(Insight(
        1, "fewest BN parameters (WRN) wins the combined objective on "
           "every device, although ResNeXt has the best peak accuracy",
        holds1,
        f"equal-weight winners: {sorted(winners)}; best peak accuracy: "
        f"{best_accuracy_model}"))

    # -- 2: BN-Norm cheap, BN-Opt backward-bound -------------------------
    ratios = []
    backward_shares = []
    for device in ("ultra96", "rpi4", "xavier_nx_gpu"):
        norm = study.one("wrn40_2", "bn_norm", 50, device)
        opt = study.one("wrn40_2", "bn_opt", 50, device)
        ratios.append(opt.forward_time_s / norm.forward_time_s)
        backward_shares.append(
            (opt.forward_time_s - norm.forward_time_s) / opt.forward_time_s)
    accuracy_cost = (reference_error_pct("wrn40_2", "bn_norm", 50)
                     - reference_error_pct("wrn40_2", "bn_opt", 50))
    holds2 = min(ratios) > 2.0 and min(backward_shares) > 0.5 \
        and accuracy_cost < 3.5
    insights.append(Insight(
        2, "BN-Norm is 2-4x cheaper than BN-Opt (whose backward pass "
           "dominates) at <3.5 points of accuracy",
        holds2,
        f"BN-Opt/BN-Norm time ratios {[f'{r:.1f}x' for r in ratios]}; "
        f"backward share {[f'{s:.0%}' for s in backward_shares]}; "
        f"accuracy cost {accuracy_cost:.2f} pts"))

    # -- 3: GPU accelerates, overhead still real-time relevant -----------
    gpu_norm = study.one("wrn40_2", "bn_norm", 50, "xavier_nx_gpu")
    gpu_base = study.one("wrn40_2", "no_adapt", 50, "xavier_nx_gpu")
    cpu_norm = study.one("wrn40_2", "bn_norm", 50, "xavier_nx_cpu")
    overhead_ms = 1e3 * (gpu_norm.forward_time_s - gpu_base.forward_time_s)
    holds3 = (gpu_norm.forward_time_s < cpu_norm.forward_time_s
              and 150 < overhead_ms < 300)
    insights.append(Insight(
        3, "the embedded GPU accelerates adaptation yet leaves a ~213 ms "
           "overhead that threatens tight deadlines",
        holds3,
        f"GPU BN-Norm {gpu_norm.forward_time_s:.3f}s vs CPU "
        f"{cpu_norm.forward_time_s:.3f}s; adaptation overhead "
        f"{overhead_ms:.0f} ms"))

    # -- 5: the graph, not the weights, causes OOM -----------------------
    rxt = summaries["resnext29"]
    r18 = summaries["resnet18"]
    fpga = device_info("ultra96")
    rxt_estimate = estimate_memory(rxt, 100, fpga, does_backward=True)
    r18_estimate = estimate_memory(r18, 100, fpga, does_backward=True)
    holds5 = (rxt.weight_bytes() < r18.weight_bytes()
              and not rxt_estimate.fits and r18_estimate.fits
              and rxt_estimate.graph_bytes > 10 * rxt.weight_bytes())
    insights.append(Insight(
        5, "memory feasibility is decided by the dynamic autograd graph, "
           "not model size (RXT's 27 MB weights OOM where R18's 45 MB run)",
        holds5,
        f"RXT graph {rxt_estimate.graph_gb:.2f} GB vs weights "
        f"{rxt.weight_bytes() / 1e6:.0f} MB; R18 fits: {r18_estimate.fits}"))

    # -- 6: offline robust training is irreplaceable ---------------------
    mobilenet_floor = reference_error_pct("mobilenet_v2", "bn_opt", 200)
    robust_worst = max(reference_error_pct(m, "bn_opt", 200)
                       for m in ("wrn40_2", "resnet18", "resnext29"))
    holds6 = mobilenet_floor > 2 * robust_worst
    insights.append(Insight(
        6, "adaptation alone cannot replace robust offline training "
           "(non-robust MobileNet's adapted error stays >2x the robust "
           "models')",
        holds6,
        f"MobileNet adapted floor {mobilenet_floor:.1f}% vs worst robust "
        f"model {robust_worst:.1f}%"))

    return insights


def format_insights(insights: List[Insight]) -> str:
    """Render the insight report as text."""
    lines = ["Section IV-G insights, re-derived from the reproduction:"]
    for insight in insights:
        status = "HOLDS " if insight.holds else "FAILS "
        lines.append(f"  [{status}] ({insight.number}) {insight.claim}")
        lines.append(f"            evidence: {insight.evidence}")
    return "\n".join(lines)
