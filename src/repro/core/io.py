"""Serialization of study results: JSON round-trip and CSV export.

Study grids are cheap to regenerate here, but a downstream user running
the *native* experiments (minutes of training + streaming) needs to
persist results; these helpers give them a stable on-disk format.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Union

from repro.core.records import MeasurementRecord, StudyResult
from repro.resilience.atomic import atomic_write_text

_FIELDS = ["model", "method", "batch_size", "device", "error_pct",
           "forward_time_s", "energy_j", "memory_gb", "oom",
           "adapt_overhead_s", "corruption", "backend",
           "faults_injected", "rollbacks", "degraded_batches",
           "fallback_frames", "guarded", "tenant", "status", "attempts",
           "scenario", "segment"]

# The guard-counter fields (pre-robustness documents), the
# status/attempts fields (pre-resilience documents), the tenant field
# (pre-serve documents) and the scenario/segment fields (pre-scenario
# documents) are absent from older version-1 files; _record_from_dict
# leaves them to the dataclass defaults, so old files still load.

_FORMAT_VERSION = 1

#: float fields that may legitimately be NaN (JSON has no NaN, so they
#: are encoded as null / empty CSV cells): OOM cost fields, plus the
#: error of a failed/zero-sample cell
_NULLABLE_FLOATS = ("error_pct", "forward_time_s", "energy_j")


def _record_to_dict(record: MeasurementRecord) -> dict:
    row = {name: getattr(record, name) for name in _FIELDS}
    for key in _NULLABLE_FLOATS:
        if isinstance(row[key], float) and math.isnan(row[key]):
            row[key] = None
    return row


def _record_from_dict(row: dict) -> MeasurementRecord:
    data = dict(row)
    for key in _NULLABLE_FLOATS:
        if data.get(key, "") is None:
            data[key] = float("nan")
    unknown = set(data) - set(_FIELDS)
    if unknown:
        raise ValueError(f"unknown record fields: {sorted(unknown)}")
    return MeasurementRecord(**data)


def record_to_dict(record: MeasurementRecord) -> dict:
    """One record as a JSON-safe dict (NaN-able floats become ``None``).

    This is the per-record unit of the study-result format; the run
    journal (:mod:`repro.resilience.journal`) embeds these dicts in its
    ``cell_ok`` entries so a resume can replay them bit-identically.
    """
    return _record_to_dict(record)


def record_from_dict(row: dict) -> MeasurementRecord:
    """Inverse of :func:`record_to_dict` (strict about unknown fields)."""
    return _record_from_dict(row)


def _coerce_csv_row(row: dict) -> dict:
    """Parse the string values of one CSV row back to record types."""
    data = dict(row)
    for key in ("batch_size", "faults_injected", "rollbacks",
                "degraded_batches", "fallback_frames", "attempts",
                "segment"):
        if key in data and data[key] != "":
            data[key] = int(data[key])
    for key in ("memory_gb", "adapt_overhead_s"):
        if key in data and data[key] != "":
            data[key] = float(data[key])
    for key in _NULLABLE_FLOATS:
        data[key] = None if data.get(key) in ("", None) else float(data[key])
    for key in ("oom", "guarded"):
        if key in data:
            data[key] = data[key] in ("True", "true", "1", True)
    return data


def dumps(result: StudyResult) -> str:
    """Serialize a study result to a JSON string."""
    payload = {
        "format": "repro.study_result",
        "version": _FORMAT_VERSION,
        "records": [_record_to_dict(r) for r in result.records],
    }
    return json.dumps(payload, indent=2)


def canonical_dumps(result: StudyResult, *,
                    strip_timing: bool = False) -> str:
    """:func:`dumps` as a canonical comparison form.

    JSON encoding makes NaN fields comparable (NaN != NaN, but both
    encode to ``null``).  With ``strip_timing=True`` the fields that
    legitimately vary between separate *executions* of the same config —
    wall-clock ``forward_time_s`` and retry ``attempts`` — are zeroed
    out, which is the equality contract between a parallel sweep and
    its serial twin (everything measured is bit-identical; only wall
    time is not).  Replays of one journal need no stripping: they are
    byte-equal under plain :func:`dumps`.
    """
    if not strip_timing:
        return dumps(result)
    from dataclasses import replace
    return dumps(StudyResult([replace(r, forward_time_s=0.0, attempts=1)
                              for r in result.records]))


def loads(text: str) -> StudyResult:
    """Parse a study result from :func:`dumps` output (strict)."""
    payload = json.loads(text)
    if payload.get("format") != "repro.study_result":
        raise ValueError("not a repro study-result document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    records = payload.get("records")
    if not isinstance(records, list):
        raise ValueError(
            f"malformed study-result document: 'records' must be a list, "
            f"got {type(records).__name__}")
    return StudyResult([_record_from_dict(row) for row in records])


def save_json(result: StudyResult, path: Union[str, Path]) -> None:
    """Write a study result to a JSON file (atomically: tmp + rename)."""
    atomic_write_text(path, dumps(result))


def load_json(path: Union[str, Path]) -> StudyResult:
    """Read a study result from a JSON file."""
    return loads(Path(path).read_text())


def to_csv(result: StudyResult) -> str:
    """Render a study result as CSV (OOM costs left empty)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for record in result.records:
        row = _record_to_dict(record)
        for key in _NULLABLE_FLOATS:
            if row[key] is None:
                row[key] = ""
        writer.writerow(row)
    return buffer.getvalue()


def save_csv(result: StudyResult, path: Union[str, Path]) -> None:
    """Write a study result to a CSV file (atomically: tmp + rename)."""
    atomic_write_text(path, to_csv(result))


def from_csv(text: str) -> StudyResult:
    """Parse a study result from :func:`to_csv` output (full round-trip)."""
    reader = csv.DictReader(io.StringIO(text))
    return StudyResult([_record_from_dict(_coerce_csv_row(row))
                        for row in reader])


def load_csv(path: Union[str, Path]) -> StudyResult:
    """Read a study result from a CSV file."""
    return from_csv(Path(path).read_text())
