"""Serialization of study results: JSON round-trip and CSV export.

Study grids are cheap to regenerate here, but a downstream user running
the *native* experiments (minutes of training + streaming) needs to
persist results; these helpers give them a stable on-disk format.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import List, Union

from repro.core.records import MeasurementRecord, StudyResult

_FIELDS = ["model", "method", "batch_size", "device", "error_pct",
           "forward_time_s", "energy_j", "memory_gb", "oom",
           "adapt_overhead_s", "corruption", "backend",
           "faults_injected", "rollbacks", "degraded_batches",
           "fallback_frames", "guarded"]

# The guard-counter fields are absent from pre-robustness version-1
# documents; _record_from_dict leaves them to the dataclass defaults, so
# old files still load.

_FORMAT_VERSION = 1


def _record_to_dict(record: MeasurementRecord) -> dict:
    row = {name: getattr(record, name) for name in _FIELDS}
    # JSON has no NaN; encode OOM cost fields as None
    for key in ("forward_time_s", "energy_j"):
        if isinstance(row[key], float) and math.isnan(row[key]):
            row[key] = None
    return row


def _record_from_dict(row: dict) -> MeasurementRecord:
    data = dict(row)
    for key in ("forward_time_s", "energy_j"):
        if data.get(key) is None:
            data[key] = float("nan")
    unknown = set(data) - set(_FIELDS)
    if unknown:
        raise ValueError(f"unknown record fields: {sorted(unknown)}")
    return MeasurementRecord(**data)


def _coerce_csv_row(row: dict) -> dict:
    """Parse the string values of one CSV row back to record types."""
    data = dict(row)
    for key in ("batch_size", "faults_injected", "rollbacks",
                "degraded_batches", "fallback_frames"):
        if key in data and data[key] != "":
            data[key] = int(data[key])
    for key in ("error_pct", "memory_gb", "adapt_overhead_s"):
        if key in data and data[key] != "":
            data[key] = float(data[key])
    for key in ("forward_time_s", "energy_j"):
        data[key] = None if data.get(key) in ("", None) else float(data[key])
    for key in ("oom", "guarded"):
        if key in data:
            data[key] = data[key] in ("True", "true", "1", True)
    return data


def dumps(result: StudyResult) -> str:
    """Serialize a study result to a JSON string."""
    payload = {
        "format": "repro.study_result",
        "version": _FORMAT_VERSION,
        "records": [_record_to_dict(r) for r in result.records],
    }
    return json.dumps(payload, indent=2)


def loads(text: str) -> StudyResult:
    """Parse a study result from :func:`dumps` output (strict)."""
    payload = json.loads(text)
    if payload.get("format") != "repro.study_result":
        raise ValueError("not a repro study-result document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    return StudyResult([_record_from_dict(row) for row in payload["records"]])


def save_json(result: StudyResult, path: Union[str, Path]) -> None:
    """Write a study result to a JSON file."""
    Path(path).write_text(dumps(result))


def load_json(path: Union[str, Path]) -> StudyResult:
    """Read a study result from a JSON file."""
    return loads(Path(path).read_text())


def to_csv(result: StudyResult) -> str:
    """Render a study result as CSV (OOM costs left empty)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for record in result.records:
        row = _record_to_dict(record)
        for key in ("forward_time_s", "energy_j"):
            if row[key] is None:
                row[key] = ""
        writer.writerow(row)
    return buffer.getvalue()


def save_csv(result: StudyResult, path: Union[str, Path]) -> None:
    """Write a study result to a CSV file."""
    Path(path).write_text(to_csv(result))


def from_csv(text: str) -> StudyResult:
    """Parse a study result from :func:`to_csv` output (full round-trip)."""
    reader = csv.DictReader(io.StringIO(text))
    return StudyResult([_record_from_dict(_coerce_csv_row(row))
                        for row in reader])


def load_csv(path: Union[str, Path]) -> StudyResult:
    """Read a study result from a CSV file."""
    return from_csv(Path(path).read_text())
