"""The reproduction scorecard: one command to audit the whole claim set.

Aggregates every machine-checkable statement the paper makes into a
single pass/fail report:

- the 33 calibration anchors (times, energies, averages, Table I);
- the 3 OOM events plus the profiler-OOM footnote;
- the 12 weighted-objective selections (4 weight cases x 3 devices)
  and the overall A1/A2/A3 points;
- the Fig. 2 aggregate accuracy claims;
- the 5 Section IV-G insights.

Run via ``python -m repro scorecard``.  The examples and the native
benches cover what this cannot (actually executing the algorithms);
this is the fast, deterministic half of the audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.config import StudyConfig
from repro.core.insights import derive_insights
from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.records import StudyResult
from repro.core.reference import (
    BN_NORM_ERROR_PCT,
    BN_OPT_ERROR_PCT,
    CLAIM_BN_NORM_MEAN_IMPROVEMENT,
    CLAIM_BN_OPT_MEAN_IMPROVEMENT,
    NO_ADAPT_ERROR_PCT,
)
from repro.core.runner import run_simulated_study
from repro.devices.calibrate import anchor_report
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import summarize


@dataclass(frozen=True)
class Check:
    """One audited claim."""

    category: str
    name: str
    passed: bool
    detail: str = ""


def _check_anchors() -> List[Check]:
    return [Check("anchor", r.label, r.within_tolerance,
                  f"paper {r.paper_value:g} vs model {r.predicted:.3f} "
                  f"({r.rel_error:.1%})")
            for r in anchor_report()]


def _check_oom_events(study: StudyResult) -> List[Check]:
    expected = {
        "RXT-AM-100 + BN-Opt @ ultra96",
        "RXT-AM-200 + BN-Opt @ ultra96",
        "RXT-AM-200 + BN-Opt @ xavier_nx_gpu",
    }
    observed = {r.label for r in study if r.oom}
    return [Check("memory", "the paper's three OOM events",
                  observed == expected,
                  f"observed {sorted(observed)}")]


_EXPECTED_SELECTIONS = {
    # (device, weight case, scheme) -> (model, method)
    ("ultra96", "equal", "raw"): ("wrn40_2", "bn_norm"),
    ("ultra96", "accuracy", "raw"): ("wrn40_2", "bn_opt"),
    ("ultra96", "performance", "raw"): ("wrn40_2", "no_adapt"),
    ("ultra96", "energy", "raw"): ("wrn40_2", "no_adapt"),
    ("rpi4", "equal", "raw"): ("wrn40_2", "bn_norm"),
    ("rpi4", "accuracy", "raw"): ("wrn40_2", "bn_opt"),
    ("rpi4", "performance", "minmax"): ("wrn40_2", "bn_norm"),
    ("rpi4", "energy", "raw"): ("wrn40_2", "no_adapt"),
}


def _check_selections(study: StudyResult) -> List[Check]:
    checks = []
    for (device, case, scheme), (model, method) in _EXPECTED_SELECTIONS.items():
        best = select_best(study.filter(device=device), WEIGHT_CASES[case],
                           scheme)
        ok = (best.model, best.method, best.batch_size) == (model, method, 50)
        checks.append(Check("selection", f"{device}/{case} ({scheme})", ok,
                            best.label))
    # NX pools CPU+GPU points
    nx = StudyResult(study.filter(device="xavier_nx_cpu").records
                     + study.filter(device="xavier_nx_gpu").records)
    for case, method in (("equal", "bn_norm"), ("accuracy", "bn_opt"),
                         ("performance", "no_adapt"), ("energy", "no_adapt")):
        best = select_best(nx, WEIGHT_CASES[case], "raw")
        ok = (best.device == "xavier_nx_gpu"
              and (best.model, best.method, best.batch_size)
              == ("wrn40_2", method, 50))
        checks.append(Check("selection", f"xavier_nx/{case} (raw)", ok,
                            best.label))
    # the overall A1/A2/A3 points
    feasible = study.feasible()
    best_error = min(r.error_pct for r in feasible.records)
    champions = [r for r in feasible.records if r.error_pct == best_error]
    a1 = min(champions, key=lambda r: r.forward_time_s)
    a2 = min(champions, key=lambda r: r.energy_j)
    a3 = select_best(study, WEIGHT_CASES["equal"], "raw")
    checks.append(Check("selection", "A1 point",
                        a1.label == "RXT-AM-200 + BN-Opt @ xavier_nx_cpu",
                        a1.label))
    checks.append(Check("selection", "A2 point",
                        a2.label == "RXT-AM-200 + BN-Opt @ rpi4", a2.label))
    checks.append(Check("selection", "A3 point",
                        a3.label == "WRN-AM-50 + BN-Norm @ xavier_nx_gpu",
                        a3.label))
    return checks


def _check_accuracy_grid() -> List[Check]:
    models = ("resnext29", "wrn40_2", "resnet18")
    no_adapt = np.mean([NO_ADAPT_ERROR_PCT[m] for m in models
                        for _ in range(3)])
    bn_norm = np.mean([BN_NORM_ERROR_PCT[m][i] for m in models
                       for i in range(3)])
    bn_opt = np.mean([BN_OPT_ERROR_PCT[m][i] for m in models
                      for i in range(3)])
    return [
        Check("accuracy", "mean BN-Norm improvement = 4.02",
              abs((no_adapt - bn_norm) - CLAIM_BN_NORM_MEAN_IMPROVEMENT) < 0.05,
              f"{no_adapt - bn_norm:.3f}"),
        Check("accuracy", "mean BN-Opt improvement = 6.67",
              abs((no_adapt - bn_opt) - CLAIM_BN_OPT_MEAN_IMPROVEMENT) < 0.05,
              f"{no_adapt - bn_opt:.3f}"),
        Check("accuracy", "best configuration is RXT-AM-200 + BN-Opt",
              min(BN_OPT_ERROR_PCT, key=lambda m: BN_OPT_ERROR_PCT[m][2])
              == "resnext29", ""),
    ]


def _check_insights(study: StudyResult) -> List[Check]:
    summaries = {name: summarize(build_model(name, "full"), name=name)
                 for name in MODEL_NAMES}
    return [Check("insight", f"IV-G({i.number}) {i.claim[:60]}...",
                  i.holds, i.evidence)
            for i in derive_insights(study, summaries)]


def run_scorecard() -> List[Check]:
    """Run every deterministic claim check."""
    study = run_simulated_study(StudyConfig())
    checks: List[Check] = []
    checks.extend(_check_anchors())
    checks.extend(_check_oom_events(study))
    checks.extend(_check_selections(study))
    checks.extend(_check_accuracy_grid())
    checks.extend(_check_insights(study))
    return checks


def format_scorecard(checks: List[Check]) -> str:
    """Render the audit with per-category tallies."""
    lines = ["Reproduction scorecard"]
    lines.append("=" * 60)
    categories = []
    for check in checks:
        if check.category not in categories:
            categories.append(check.category)
    for category in categories:
        subset = [c for c in checks if c.category == category]
        passed = sum(c.passed for c in subset)
        lines.append(f"\n[{category}] {passed}/{len(subset)} checks pass")
        for check in subset:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name}")
            if not check.passed and check.detail:
                lines.append(f"         {check.detail}")
    total = sum(c.passed for c in checks)
    lines.append("\n" + "=" * 60)
    lines.append(f"TOTAL: {total}/{len(checks)} claims reproduced")
    return "\n".join(lines)
