"""Corruption gallery: visual artifacts for documentation and debugging.

Renders SynthCIFAR images and their corrupted variants as portable
graymaps (PGM, universally viewable, dependency-free) and as terminal
"ASCII art" previews, so the corruption suite can be eyeballed without a
plotting stack.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.data.corruptions import CORRUPTION_NAMES, apply_corruption
from repro.resilience.atomic import atomic_write_bytes

_ASCII_RAMP = " .:-=+*#%@"


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """CHW RGB [0,1] -> HxW luminance [0,1] (Rec. 601 weights)."""
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got {image.shape}")
    weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
    return np.tensordot(weights, image, axes=(0, 0))


def save_pgm(image: np.ndarray, path: Union[str, Path]) -> None:
    """Write a CHW RGB or HxW gray image as binary PGM (P5)."""
    gray = to_grayscale(image) if image.ndim == 3 else image
    pixels = np.clip(gray * 255.0, 0, 255).astype(np.uint8)
    height, width = pixels.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    atomic_write_bytes(path, header + pixels.tobytes())


def load_pgm(path: Union[str, Path]) -> np.ndarray:
    """Read a binary PGM written by :func:`save_pgm` back to [0,1]."""
    blob = Path(path).read_bytes()
    if not blob.startswith(b"P5"):
        raise ValueError("not a binary PGM file")
    parts = blob.split(b"\n", 3)
    width, height = map(int, parts[1].split())
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=width * height)
    return (pixels.reshape(height, width) / 255.0).astype(np.float32)


def ascii_preview(image: np.ndarray, width: int = 32) -> str:
    """Terminal rendering of an image as luminance ASCII art."""
    gray = to_grayscale(image) if image.ndim == 3 else image
    h, w = gray.shape
    step = max(w // width, 1)
    sampled = gray[::step, ::step]
    indices = np.clip((sampled * (len(_ASCII_RAMP) - 1)).astype(int),
                      0, len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)


def write_gallery(image: np.ndarray, out_dir: Union[str, Path],
                  corruptions: Optional[Sequence[str]] = None,
                  severity: int = 5, seed: int = 0) -> list[Path]:
    """Write ``clean.pgm`` plus one PGM per corruption; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(corruptions) if corruptions is not None else list(CORRUPTION_NAMES)
    paths = []
    clean_path = out / "clean.pgm"
    save_pgm(image, clean_path)
    paths.append(clean_path)
    for name in names:
        corrupted = apply_corruption(image, name, severity=severity, seed=seed)
        path = out / f"{name}_s{severity}.pgm"
        save_pgm(corrupted, path)
        paths.append(path)
    return paths
