"""Data substrate: synthetic CIFAR-10, CIFAR-10-C corruptions, AugMix, streams.

The paper tests on CIFAR-10-C: the CIFAR-10 test set passed through 15
common corruptions at 5 severity levels.  Neither dataset can be downloaded
here, so this package provides:

- :mod:`repro.data.synthetic` — a procedural class-conditional image
  generator ("SynthCIFAR"): 10 classes with distinct spatial structure,
  32x32x3 float images in [0, 1].
- :mod:`repro.data.corruptions` — from-scratch implementations of all 15
  CIFAR-10-C corruption types x 5 severities (noise, blur, weather,
  digital; including a real DCT-quantization JPEG codec).
- :mod:`repro.data.augment` — AugMix-style data augmentation used for
  robust offline pre-training.
- :mod:`repro.data.stream` — the streaming evaluation protocol of the
  paper: 10000 unlabeled samples per corruption, consumed in adaptation
  batches of 50 / 100 / 200.
"""

from repro.data.corruptions import (
    CORRUPTION_NAMES,
    SEVERITIES,
    apply_corruption,
    corrupt_batch,
)
from repro.data.synthetic import SynthCIFAR, make_synth_cifar
from repro.data.stream import CorruptionStream, iter_batches
from repro.data.augment import augmix

__all__ = [
    "SynthCIFAR",
    "make_synth_cifar",
    "CORRUPTION_NAMES",
    "SEVERITIES",
    "apply_corruption",
    "corrupt_batch",
    "CorruptionStream",
    "iter_batches",
    "augmix",
]
