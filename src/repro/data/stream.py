"""Streaming evaluation protocol (Section III-C of the paper).

The paper streams 10000 unlabeled CIFAR-10-C samples per corruption type
and lets the adaptation algorithms consume them in batches of recently-seen
images (50 / 100 / 200).  :class:`CorruptionStream` reproduces that
protocol over SynthCIFAR data: a clean test split is corrupted once
(deterministically) and then served batch-by-batch; labels ride along for
*scoring only* — the adaptation algorithms never see them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.data.corruptions import CORRUPTION_NAMES, corrupt_batch
from repro.data.synthetic import SynthCIFAR

PAPER_BATCH_SIZES = (50, 100, 200)


def iter_batches(images: np.ndarray, labels: np.ndarray,
                 batch_size: int, drop_last: bool = True
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield consecutive (images, labels) batches in stream order."""
    total = len(labels)
    limit = (total // batch_size) * batch_size if drop_last else total
    for start in range(0, limit, batch_size):
        stop = min(start + batch_size, total)
        yield images[start:stop], labels[start:stop]


def weighted_batch_indices(labels: np.ndarray, class_weights,
                           batch_size: int, rng: np.random.Generator
                           ) -> np.ndarray:
    """Sample indices so the batch's *class mix* follows ``class_weights``.

    Each sample's probability is its class's weight split evenly over
    that class's members; classes absent from ``labels`` forfeit their
    weight (re-normalized away) rather than failing.  Used by the
    ``imbalanced`` scenario to skew batches without copying the dataset.
    """
    weights = np.asarray(class_weights, dtype=np.float64)
    probs = np.zeros(len(labels), dtype=np.float64)
    for class_id in range(len(weights)):
        members = labels == class_id
        count = int(members.sum())
        if count:
            probs[members] = weights[class_id] / count
    total = probs.sum()
    if total <= 0.0:
        raise ValueError("no dataset sample matches any weighted class")
    return rng.choice(len(labels), size=batch_size, p=probs / total)


@dataclass
class CorruptionStream:
    """A corrupted test stream for one corruption type.

    Attributes
    ----------
    corruption:
        One of :data:`~repro.data.corruptions.CORRUPTION_NAMES`, or
        ``"clean"`` for the uncorrupted stream.
    severity:
        CIFAR-10-C severity level (the paper uses 5).
    images / labels:
        The full corrupted stream, precomputed for determinism.
    """

    corruption: str
    severity: int
    images: np.ndarray
    labels: np.ndarray

    @classmethod
    def from_dataset(cls, dataset: SynthCIFAR, corruption: str,
                     severity: int = 5, seed: int = 0) -> "CorruptionStream":
        """Corrupt a clean split into a stream (``corruption="clean"`` skips)."""
        if corruption == "clean":
            images = dataset.images.copy()
        else:
            if corruption not in CORRUPTION_NAMES:
                raise KeyError(f"unknown corruption {corruption!r}")
            images = corrupt_batch(dataset.images, corruption,
                                   severity=severity, seed=seed)
        return cls(corruption=corruption, severity=severity,
                   images=images, labels=dataset.labels.copy())

    def __len__(self) -> int:
        return len(self.labels)

    def batches(self, batch_size: int,
                drop_last: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream batches in order (the 'recently seen' adaptation window)."""
        return iter_batches(self.images, self.labels, batch_size, drop_last)

    def num_batches(self, batch_size: int) -> int:
        return len(self.labels) // batch_size
