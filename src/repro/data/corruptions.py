"""CIFAR-10-C corruption suite: 19 corruption types x 5 severity levels.

Re-implementation of the corruption families from Hendrycks & Dietterich's
CIFAR-10-C benchmark (noise, blur, weather, digital), operating on float32
CHW images in [0, 1].  Severity 1 is mildest, 5 most severe; the paper's
experiments use the 15 core types at severity 5; the four "extra" CIFAR-10-C
types (``speckle_noise``, ``gaussian_blur``, ``spatter``, ``saturate``) are
also provided for held-out shift scenarios.

Substitutions relative to the original benchmark (documented in DESIGN.md):
``frost`` and ``snow`` composite *procedural* textures instead of the
benchmark's photographic overlays, and ``jpeg_compression`` uses our own
8x8 DCT quantization codec (scipy.fft) rather than libjpeg.  All corruption
functions are deterministic given the ``seed`` argument.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
from scipy import fft as scipy_fft
from scipy import ndimage

SEVERITIES = (1, 2, 3, 4, 5)


def _check_severity(severity: int) -> int:
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be in {SEVERITIES}, got {severity}")
    return severity


def _clip(image: np.ndarray) -> np.ndarray:
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Noise family
# ----------------------------------------------------------------------
def gaussian_noise(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Additive white Gaussian noise."""
    scale = [0.04, 0.06, 0.08, 0.09, 0.10][_check_severity(severity) - 1]
    noise = _rng(seed).normal(0.0, scale, size=image.shape)
    return _clip(image + noise)


def shot_noise(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Poisson (photon-count) noise."""
    photons = [500, 250, 100, 75, 50][_check_severity(severity) - 1]
    sampled = _rng(seed).poisson(np.clip(image, 0, 1) * photons) / float(photons)
    return _clip(sampled)


def impulse_noise(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Salt-and-pepper noise on random pixels (all channels together)."""
    amount = [0.01, 0.02, 0.03, 0.05, 0.07][_check_severity(severity) - 1]
    rng = _rng(seed)
    out = image.copy()
    h, w = image.shape[-2:]
    num = int(amount * h * w)
    ys = rng.integers(0, h, size=num)
    xs = rng.integers(0, w, size=num)
    values = rng.integers(0, 2, size=num).astype(np.float32)
    out[:, ys, xs] = values[None, :]
    return _clip(out)


# ----------------------------------------------------------------------
# Blur family
# ----------------------------------------------------------------------
def _disk_kernel(radius: float) -> np.ndarray:
    size = max(int(2 * radius + 1), 3)
    if size % 2 == 0:
        size += 1
    coords = np.arange(size) - size // 2
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    kernel = (yy ** 2 + xx ** 2 <= radius ** 2).astype(np.float32)
    return kernel / kernel.sum()


def _convolve_channels(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    return np.stack([ndimage.convolve(channel, kernel, mode="reflect")
                     for channel in image])


def defocus_blur(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Disk-kernel (lens defocus) blur."""
    radius = [0.8, 1.2, 1.6, 2.0, 2.5][_check_severity(severity) - 1]
    return _clip(_convolve_channels(image, _disk_kernel(radius)))


def glass_blur(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Local random pixel swaps followed by a mild Gaussian blur."""
    sigma, max_delta, iterations = [
        (0.4, 1, 1), (0.5, 1, 1), (0.6, 1, 2), (0.7, 2, 1), (0.9, 2, 2),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    out = np.stack([ndimage.gaussian_filter(c, sigma) for c in image])
    h, w = out.shape[-2:]
    for _ in range(iterations):
        dy = rng.integers(-max_delta, max_delta + 1, size=(h, w))
        dx = rng.integers(-max_delta, max_delta + 1, size=(h, w))
        ys = np.clip(np.arange(h)[:, None] + dy, 0, h - 1)
        xs = np.clip(np.arange(w)[None, :] + dx, 0, w - 1)
        out = out[:, ys, xs]
    out = np.stack([ndimage.gaussian_filter(c, sigma) for c in out])
    return _clip(out)


def motion_blur(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Linear motion blur along a random direction."""
    length = [3, 5, 7, 9, 11][_check_severity(severity) - 1]
    angle = float(_rng(seed).uniform(0, np.pi))
    kernel = np.zeros((length, length), dtype=np.float32)
    center = length // 2
    for t in np.linspace(-center, center, 2 * length):
        y = int(round(center + t * np.sin(angle)))
        x = int(round(center + t * np.cos(angle)))
        if 0 <= y < length and 0 <= x < length:
            kernel[y, x] = 1.0
    kernel /= kernel.sum()
    return _clip(_convolve_channels(image, kernel))


def _zoom_center(image: np.ndarray, factor: float) -> np.ndarray:
    """Zoom into the image center by ``factor`` >= 1, preserving shape."""
    h, w = image.shape[-2:]
    zoomed = ndimage.zoom(image, (1.0, factor, factor), order=1)
    zh, zw = zoomed.shape[-2:]
    top = (zh - h) // 2
    left = (zw - w) // 2
    return zoomed[:, top:top + h, left:left + w]


def zoom_blur(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Average of progressively zoomed copies (radial zoom streaks)."""
    max_zoom, steps = [
        (1.06, 4), (1.11, 5), (1.16, 6), (1.21, 7), (1.26, 8),
    ][_check_severity(severity) - 1]
    factors = np.linspace(1.0, max_zoom, steps)
    acc = np.zeros_like(image)
    for factor in factors:
        acc += image if factor == 1.0 else _zoom_center(image, float(factor))
    return _clip(acc / len(factors))


# ----------------------------------------------------------------------
# Weather family
# ----------------------------------------------------------------------
def _plasma(shape, rng: np.random.Generator, smoothing: float) -> np.ndarray:
    """Smoothed uniform noise ('plasma') normalized to [0, 1]."""
    noise = rng.uniform(size=shape)
    noise = ndimage.gaussian_filter(noise, smoothing)
    lo, hi = noise.min(), noise.max()
    return ((noise - lo) / max(hi - lo, 1e-8)).astype(np.float32)


def snow(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Procedural snow: sparse bright flecks, motion-streaked, composited."""
    density, brightness, streak = [
        (0.03, 0.4, 2), (0.05, 0.5, 3), (0.08, 0.6, 3),
        (0.10, 0.7, 4), (0.14, 0.8, 5),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    h, w = image.shape[-2:]
    flakes = (rng.uniform(size=(h, w)) < density).astype(np.float32)
    kernel = np.zeros((streak * 2 + 1, streak * 2 + 1), dtype=np.float32)
    for t in range(streak * 2 + 1):  # diagonal streak
        kernel[t, min(t, streak * 2)] = 1.0
    kernel /= kernel.sum()
    streaked = ndimage.convolve(flakes, kernel, mode="constant")
    layer = np.clip(streaked * 3.0, 0, 1) * brightness
    # Whiten the scene slightly, then add the flake layer on all channels.
    washed = image * (1.0 - 0.3 * brightness) + 0.3 * brightness
    return _clip(washed + layer[None])


def frost(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Procedural frost: crystalline high-contrast plasma overlay."""
    coverage, opacity = [
        (0.25, 0.25), (0.35, 0.32), (0.45, 0.38), (0.55, 0.45), (0.65, 0.55),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    h, w = image.shape[-2:]
    texture = _plasma((h, w), rng, smoothing=1.2)
    crystals = np.clip((texture - (1.0 - coverage)) / coverage, 0, 1)
    crystals = crystals ** 0.7  # sharpen crystal edges
    frost_color = np.array([0.9, 0.95, 1.0], dtype=np.float32)
    overlay = crystals[None] * frost_color[:, None, None]
    return _clip(image * (1.0 - opacity * crystals[None]) + opacity * overlay)


def fog(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Fog: low-frequency haze that lifts luminance and crushes contrast."""
    intensity, smoothing = [
        (0.3, 3.0), (0.4, 2.8), (0.5, 2.5), (0.6, 2.2), (0.7, 2.0),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    haze = _plasma(image.shape[-2:], rng, smoothing)
    haze = intensity * (0.6 + 0.4 * haze)
    return _clip(image * (1.0 - haze[None]) + haze[None])


def brightness(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Global brightness lift."""
    delta = [0.08, 0.14, 0.20, 0.26, 0.32][_check_severity(severity) - 1]
    return _clip(image + delta)


def contrast(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Contrast reduction about the per-image mean."""
    factor = [0.75, 0.6, 0.45, 0.3, 0.2][_check_severity(severity) - 1]
    mean = image.mean(axis=(-2, -1), keepdims=True)
    return _clip((image - mean) * factor + mean)


# ----------------------------------------------------------------------
# Digital family
# ----------------------------------------------------------------------
def elastic_transform(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Elastic warp via a smoothed random displacement field."""
    alpha, sigma = [
        (1.5, 2.0), (2.0, 2.0), (2.5, 1.8), (3.0, 1.6), (3.5, 1.4),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    h, w = image.shape[-2:]
    dy = ndimage.gaussian_filter(rng.uniform(-1, 1, size=(h, w)), sigma) * alpha
    dx = ndimage.gaussian_filter(rng.uniform(-1, 1, size=(h, w)), sigma) * alpha
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    coords = np.stack([yy + dy, xx + dx])
    warped = np.stack([
        ndimage.map_coordinates(channel, coords, order=1, mode="reflect")
        for channel in image
    ])
    return _clip(warped)


def pixelate(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Downsample then nearest-neighbour upsample."""
    fraction = [0.75, 0.6, 0.5, 0.4, 0.3][_check_severity(severity) - 1]
    h, w = image.shape[-2:]
    small_h = max(int(h * fraction), 2)
    small_w = max(int(w * fraction), 2)
    small = ndimage.zoom(image, (1.0, small_h / h, small_w / w), order=1)
    restored = ndimage.zoom(small, (1.0, h / small.shape[1], w / small.shape[2]),
                            order=0)
    return _clip(restored[:, :h, :w])


# Luminance-style JPEG quantization table (IJG base), used for all channels.
_JPEG_QUANT_BASE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float32)


def _jpeg_quant_table(quality: int) -> np.ndarray:
    """IJG quality scaling of the base quantization table."""
    quality = int(np.clip(quality, 1, 100))
    scale = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    table = np.floor((_JPEG_QUANT_BASE * scale + 50.0) / 100.0)
    return np.clip(table, 1, 255).astype(np.float32)


def _jpeg_channel(channel: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize one channel through blockwise 8x8 DCT (the JPEG core loop)."""
    h, w = channel.shape
    pad_h = (-h) % 8
    pad_w = (-w) % 8
    padded = np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")
    ph, pw = padded.shape
    blocks = padded.reshape(ph // 8, 8, pw // 8, 8).transpose(0, 2, 1, 3)
    shifted = blocks * 255.0 - 128.0
    coefficients = scipy_fft.dctn(shifted, axes=(-2, -1), norm="ortho")
    quantized = np.round(coefficients / table) * table
    restored = scipy_fft.idctn(quantized, axes=(-2, -1), norm="ortho")
    pixels = (restored + 128.0) / 255.0
    out = pixels.transpose(0, 2, 1, 3).reshape(ph, pw)
    return out[:h, :w]


def jpeg_compression(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """JPEG artifacts via an 8x8 DCT quantization round trip."""
    quality = [80, 65, 50, 35, 20][_check_severity(severity) - 1]
    table = _jpeg_quant_table(quality)
    return _clip(np.stack([_jpeg_channel(c, table) for c in image]))


# ----------------------------------------------------------------------
# Extra CIFAR-10-C family (held-out shifts)
# ----------------------------------------------------------------------
def speckle_noise(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Multiplicative (signal-dependent) Gaussian noise."""
    scale = [0.06, 0.10, 0.14, 0.18, 0.22][_check_severity(severity) - 1]
    noise = _rng(seed).normal(0.0, scale, size=image.shape)
    return _clip(image + image * noise)


def gaussian_blur(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Isotropic Gaussian blur, per channel."""
    sigma = [0.4, 0.6, 0.8, 1.1, 1.5][_check_severity(severity) - 1]
    return _clip(np.stack([ndimage.gaussian_filter(c, sigma) for c in image]))


def spatter(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Procedural spatter: plasma-thresholded liquid blobs composited on top.

    Mild severities splash translucent water droplets; harsher severities
    switch to opaque mud, following the CIFAR-10-C severity progression.
    """
    coverage, opacity, mud = [
        (0.12, 0.55, False), (0.18, 0.65, False), (0.22, 0.75, True),
        (0.30, 0.85, True), (0.38, 0.95, True),
    ][_check_severity(severity) - 1]
    rng = _rng(seed)
    h, w = image.shape[-2:]
    texture = _plasma((h, w), rng, smoothing=1.0)
    blobs = np.clip((texture - (1.0 - coverage)) / coverage, 0, 1)
    blobs = (blobs ** 0.5)  # fatten blob interiors, soften their rims
    color = np.array([0.25, 0.16, 0.08] if mud else [0.63, 0.62, 0.64],
                     dtype=np.float32)
    mask = opacity * blobs[None]
    return _clip(image * (1.0 - mask) + mask * color[:, None, None])


def saturate(image: np.ndarray, severity: int, seed: int = 0) -> np.ndarray:
    """Saturation shift: desaturate at mild severities, oversaturate at high."""
    factor, shift = [
        (0.3, 0.0), (0.15, 0.0), (2.0, 0.0), (5.0, 0.1), (20.0, 0.2),
    ][_check_severity(severity) - 1]
    gray = image.mean(axis=0, keepdims=True)
    return _clip(gray + (image - gray) * factor + shift)


# ----------------------------------------------------------------------
# Registry and batch API
# ----------------------------------------------------------------------
CorruptionFn = Callable[[np.ndarray, int, int], np.ndarray]

CORRUPTIONS: Dict[str, CorruptionFn] = {
    "gaussian_noise": gaussian_noise,
    "shot_noise": shot_noise,
    "impulse_noise": impulse_noise,
    "defocus_blur": defocus_blur,
    "glass_blur": glass_blur,
    "motion_blur": motion_blur,
    "zoom_blur": zoom_blur,
    "snow": snow,
    "frost": frost,
    "fog": fog,
    "brightness": brightness,
    "contrast": contrast,
    "elastic_transform": elastic_transform,
    "pixelate": pixelate,
    "jpeg_compression": jpeg_compression,
    "speckle_noise": speckle_noise,
    "gaussian_blur": gaussian_blur,
    "spatter": spatter,
    "saturate": saturate,
}

CORRUPTION_NAMES: List[str] = list(CORRUPTIONS)


def apply_corruption(image: np.ndarray, name: str, severity: int = 5,
                     seed: int = 0) -> np.ndarray:
    """Apply a named corruption to one CHW image."""
    if name not in CORRUPTIONS:
        raise KeyError(f"unknown corruption {name!r}; see CORRUPTION_NAMES")
    if image.ndim != 3:
        raise ValueError(f"expected CHW image, got shape {image.shape}")
    return CORRUPTIONS[name](image, severity, seed)


def corrupt_batch(images: np.ndarray, name: str, severity: int = 5,
                  seed: int = 0) -> np.ndarray:
    """Apply a named corruption to a batch (N, C, H, W), one seed per image."""
    if images.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {images.shape}")
    out = np.empty_like(images)
    for i, image in enumerate(images):
        out[i] = apply_corruption(image, name, severity=severity, seed=seed + i)
    return out
