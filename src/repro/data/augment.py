"""AugMix-style data augmentation for robust offline pre-training.

The paper's robust models are trained with AugMix (Hendrycks et al. 2019):
each training image is passed through several randomly-sampled chains of
mild augmentation ops; the chains are mixed with Dirichlet weights, and the
mixture is blended with the original image using a Beta-sampled weight.
The augmentation ops deliberately *exclude* the CIFAR-10-C corruption
families so that robustness to the test corruptions is emergent, matching
the benchmark protocol.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np
from scipy import ndimage


def _rotate(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    angle = rng.uniform(-20, 20)
    return ndimage.rotate(image, angle, axes=(-2, -1), reshape=False,
                          order=1, mode="reflect")


def _shear(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    shear = rng.uniform(-0.2, 0.2)
    matrix = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, shear], [0.0, 0.0, 1.0]])
    return np.stack([
        ndimage.affine_transform(channel, matrix[1:, 1:], order=1, mode="reflect")
        for channel in image
    ])


def _translate(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    h, w = image.shape[-2:]
    dy = rng.integers(-h // 8, h // 8 + 1)
    dx = rng.integers(-w // 8, w // 8 + 1)
    return np.roll(image, (dy, dx), axis=(-2, -1))


def _posterize(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    bits = int(rng.integers(3, 6))
    levels = 2 ** bits
    return np.floor(image * (levels - 1) + 0.5) / (levels - 1)


def _solarize(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    threshold = rng.uniform(0.6, 0.95)
    return np.where(image >= threshold, 1.0 - image, image)


def _autocontrast(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    lo = image.min(axis=(-2, -1), keepdims=True)
    hi = image.max(axis=(-2, -1), keepdims=True)
    return (image - lo) / np.maximum(hi - lo, 1e-6)


def _equalize(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    out = np.empty_like(image)
    for c, channel in enumerate(image):
        values = np.clip(channel * 255, 0, 255).astype(np.int32)
        histogram = np.bincount(values.reshape(-1), minlength=256)
        cdf = histogram.cumsum().astype(np.float64)
        cdf = (cdf - cdf.min()) / max(cdf.max() - cdf.min(), 1)
        out[c] = cdf[values].astype(np.float32)
    return out


AUGMENTATION_OPS: List[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = [
    _rotate, _shear, _translate, _posterize, _solarize, _autocontrast, _equalize,
]


def augmix(image: np.ndarray, rng: np.random.Generator,
           width: int = 3, depth: int = -1, alpha: float = 1.0) -> np.ndarray:
    """AugMix a single CHW image.

    ``width`` parallel chains of 1-3 ops (``depth=-1`` samples the chain
    length), mixed with Dirichlet(alpha) weights and blended with the
    original via Beta(alpha, alpha).
    """
    mix_weights = rng.dirichlet([alpha] * width).astype(np.float32)
    blend = float(rng.beta(alpha, alpha))
    mixture = np.zeros_like(image)
    for chain_weight in mix_weights:
        augmented = image.copy()
        chain_depth = depth if depth > 0 else int(rng.integers(1, 4))
        for _ in range(chain_depth):
            op = AUGMENTATION_OPS[rng.integers(0, len(AUGMENTATION_OPS))]
            augmented = op(augmented, rng)
        mixture += chain_weight * np.clip(augmented, 0, 1)
    out = (1.0 - blend) * image + blend * mixture
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def augmix_batch(images: np.ndarray, seed: int = 0, **kwargs) -> np.ndarray:
    """AugMix every image in an (N, C, H, W) batch deterministically."""
    rng = np.random.default_rng(seed)
    return np.stack([augmix(image, rng, **kwargs) for image in images])
