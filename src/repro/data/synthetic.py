"""SynthCIFAR: a procedural stand-in for the CIFAR-10 image classification set.

Each of the 10 classes is defined by a distinct spatial program (shape +
texture + palette); instances vary in position, scale, orientation, phase,
color jitter, and background, so the task is learnable by a convnet but not
trivial.  Images are float32, CHW, values in [0, 1] — the same convention
CIFAR-10-C preprocessing uses — so every corruption in
:mod:`repro.data.corruptions` applies unchanged.

The substitution this makes (documented in DESIGN.md): BN-adaptation
efficacy depends on the *covariate shift* between clean and corrupted
inputs, not on photographic content, so a procedural dataset preserves the
phenomenon the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

NUM_CLASSES = 10

# Per-class base hues (RGB in [0,1]); chosen to be distinct but overlapping
# enough that shape/texture carries most of the signal.
_CLASS_PALETTE = np.array([
    [0.85, 0.30, 0.25],
    [0.25, 0.70, 0.35],
    [0.25, 0.40, 0.85],
    [0.85, 0.75, 0.25],
    [0.70, 0.30, 0.75],
    [0.30, 0.75, 0.75],
    [0.90, 0.55, 0.25],
    [0.55, 0.55, 0.55],
    [0.35, 0.25, 0.60],
    [0.75, 0.45, 0.55],
], dtype=np.float32)


def _grid(size: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Centered coordinate grid with random sub-pixel jitter."""
    coords = np.linspace(-1.0, 1.0, size, dtype=np.float32)
    jitter = rng.uniform(-0.1, 0.1, size=2)
    yy, xx = np.meshgrid(coords + jitter[0], coords + jitter[1], indexing="ij")
    return yy, xx


def _shape_mask(class_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Class-specific foreground mask in [0, 1] with instance variation."""
    yy, xx = _grid(size, rng)
    cy, cx = rng.uniform(-0.35, 0.35, size=2)
    scale = rng.uniform(0.45, 0.75)
    y, x = (yy - cy) / scale, (xx - cx) / scale
    theta = rng.uniform(0, 2 * np.pi)
    xr = x * np.cos(theta) - y * np.sin(theta)
    yr = x * np.sin(theta) + y * np.cos(theta)
    r = np.sqrt(x ** 2 + y ** 2)

    if class_id == 0:     # disk
        mask = (r < 0.7).astype(np.float32)
    elif class_id == 1:   # square
        mask = ((np.abs(xr) < 0.6) & (np.abs(yr) < 0.6)).astype(np.float32)
    elif class_id == 2:   # cross
        mask = ((np.abs(xr) < 0.22) | (np.abs(yr) < 0.22)).astype(np.float32)
        mask *= (r < 1.0)
    elif class_id == 3:   # horizontal stripes
        freq = rng.uniform(3.0, 4.5)
        mask = (np.sin(freq * np.pi * yr) > 0).astype(np.float32)
    elif class_id == 4:   # vertical stripes
        freq = rng.uniform(3.0, 4.5)
        mask = (np.sin(freq * np.pi * xr) > 0).astype(np.float32)
    elif class_id == 5:   # ring
        mask = ((r > 0.4) & (r < 0.8)).astype(np.float32)
    elif class_id == 6:   # wedge / triangle
        mask = ((yr > -0.5) & (yr < 0.7) & (np.abs(xr) < 0.5 * (0.7 - yr))).astype(np.float32)
    elif class_id == 7:   # checkerboard
        freq = rng.uniform(2.0, 3.0)
        mask = ((np.sin(freq * np.pi * xr) * np.sin(freq * np.pi * yr)) > 0).astype(np.float32)
    elif class_id == 8:   # diagonal bars
        freq = rng.uniform(3.0, 4.5)
        mask = (np.sin(freq * np.pi * (xr + yr)) > 0).astype(np.float32)
    else:                 # dots
        fy = rng.uniform(2.5, 3.5)
        dots = np.sin(fy * np.pi * xr) * np.sin(fy * np.pi * yr)
        mask = (dots > 0.45).astype(np.float32)
    return mask


def _render(class_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render a single CHW image for ``class_id``."""
    mask = _shape_mask(class_id, size, rng)
    yy, xx = _grid(size, rng)

    # Background: soft directional gradient with a random tint.
    direction = rng.uniform(0, 2 * np.pi)
    gradient = 0.5 + 0.25 * (np.cos(direction) * xx + np.sin(direction) * yy)
    background_tint = rng.uniform(0.25, 0.75, size=3).astype(np.float32)
    background = gradient[None] * background_tint[:, None, None]

    # Foreground: class palette with jitter, modulated by a mild texture.
    color = _CLASS_PALETTE[class_id] + rng.uniform(-0.12, 0.12, size=3)
    texture = 0.9 + 0.1 * np.sin(rng.uniform(2, 5) * np.pi * (xx + yy)
                                 + rng.uniform(0, 2 * np.pi))
    foreground = np.clip(color, 0, 1)[:, None, None] * texture[None]

    image = background * (1.0 - mask[None]) + foreground * mask[None]
    image += rng.normal(0.0, 0.02, size=image.shape)  # sensor floor noise
    return np.clip(image, 0.0, 1.0).astype(np.float32)


@dataclass
class SynthCIFAR:
    """A generated dataset split: ``images`` (N, 3, H, W) and ``labels`` (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, count: int) -> "SynthCIFAR":
        """First ``count`` samples (the generator already shuffles)."""
        return SynthCIFAR(self.images[:count], self.labels[:count])


def make_synth_cifar(num_samples: int, size: int = 32, seed: int = 0,
                     class_balance: bool = True) -> SynthCIFAR:
    """Generate a SynthCIFAR split.

    Parameters
    ----------
    num_samples:
        Total images to generate.
    size:
        Spatial resolution (32 matches CIFAR; the tiny native experiments
        use 16 for speed).
    seed:
        Seed for full determinism.
    class_balance:
        If True, labels cycle through classes before shuffling so each
        class has (almost) equal counts.
    """
    rng = np.random.default_rng(seed)
    if class_balance:
        labels = np.arange(num_samples) % NUM_CLASSES
    else:
        labels = rng.integers(0, NUM_CLASSES, size=num_samples)
    order = rng.permutation(num_samples)
    labels = labels[order].astype(np.int64)
    images = np.empty((num_samples, 3, size, size), dtype=np.float32)
    for i, label in enumerate(labels):
        images[i] = _render(int(label), size, rng)
    return SynthCIFAR(images=images, labels=labels)
