"""Atomic file writes: tmp sibling + ``os.replace`` + fsync.

A crash (power loss, OOM kill, SIGKILL) mid-write must never leave a
half-written artifact where a complete one used to be.  Every writer in
this repo that persists something worth resuming from — study results,
run journals, pretrained-model caches, checkpoints — routes through
these helpers:

1. the payload is written to a *sibling* temp file in the target
   directory (same filesystem, so the rename cannot degrade to a copy);
2. the temp file is flushed and ``fsync``'d, so its bytes are durable
   before it becomes visible;
3. ``os.replace`` swaps it into place — atomic on POSIX and Windows;
4. the directory entry is ``fsync``'d so the rename itself survives a
   crash.

On any failure the temp file is removed and the original target is left
untouched.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Union

PathLike = Union[str, Path]


def fsync_directory(path: PathLike) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:          # e.g. Windows refuses O_RDONLY on directories
        return
    try:
        os.fsync(fd)
    except OSError:          # some filesystems reject fsync on directories
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_path(path: PathLike, suffix: str = "") -> Iterator[Path]:
    """Yield a temp sibling path; on clean exit, move it over ``path``.

    For writers that insist on opening the file themselves (e.g.
    ``numpy.savez_compressed``).  ``suffix`` is appended to the temp name
    so extension-sniffing writers behave (pass ``".npz"`` for numpy,
    which would otherwise append its own extension to the temp file).
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp{suffix}")
    try:
        yield tmp
        # the writer may buffer; reopen to fsync what it produced
        fd = os.open(str(tmp), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)
        fsync_directory(target.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        # the one sanctioned raw write: this *is* the atomic helper —
        # it writes only to its own temp sibling, never the target
        with open(tmp, "wb") as handle:  # repro: noqa[REP003]
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        fsync_directory(target.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
