"""Append-only JSONL run journal with crash-tolerant recovery.

The journal is the durable record of a study run: one JSON object per
line, appended and ``fsync``'d as each event happens, so at any instant
the file on disk describes exactly which cells have completed.  A crash
can interrupt an append mid-line; the recovery scanner therefore
tolerates (and reports) a truncated *trailing* line — that is the only
artifact a kill-during-append can produce on an append-only file.  A
malformed line anywhere *else* means real corruption (bit rot, manual
editing) and raises :class:`JournalError` rather than silently dropping
history.

Event vocabulary (all entries carry an ``"event"`` key):

- ``run_start``  — opens a journal: config ``fingerprint``, cell count;
- ``run_resume`` — a resumed run re-attached to an existing journal;
- ``cell_start`` — a cell attempt began (``cell``, ``attempt``);
- ``cell_ok``    — a cell finished: its serialized ``records`` ride on
  the entry, so a resume can rebuild the merged result bit-identically
  without re-executing anything;
- ``cell_failed``— an attempt raised: ``error``, ``traceback``, and
  ``final`` (whether retries are exhausted);
- ``run_end``    — summary counters.

Whole-file rewrites (:meth:`RunJournal.rewrite`, used by
:meth:`RunJournal.compact`) go through tmp + rename + fsync so a crash
mid-compaction preserves the previous journal intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.resilience.atomic import atomic_write_bytes, fsync_directory

PathLike = Union[str, Path]

#: events that settle a cell's fate (used by :meth:`RunJournal.compact`)
_FINAL_EVENTS = ("run_start", "run_resume", "cell_ok", "run_end")


class JournalError(ValueError):
    """A journal line that cannot be explained by a mid-write crash."""


@dataclass
class JournalScan:
    """Result of scanning a journal file back from disk."""

    entries: List[dict] = field(default_factory=list)
    #: True when a truncated trailing line (mid-write crash artifact)
    #: was dropped during recovery
    truncated: bool = False

    @property
    def fingerprint(self) -> Optional[str]:
        """The config fingerprint stamped by the first ``run_start``."""
        for entry in self.entries:
            if entry.get("event") == "run_start":
                return entry.get("fingerprint")
        return None

    def completed_cells(self) -> Dict[str, List[dict]]:
        """Map cell key -> serialized records of its last ``cell_ok``."""
        done: Dict[str, List[dict]] = {}
        for entry in self.entries:
            if entry.get("event") == "cell_ok":
                done[entry["cell"]] = entry.get("records", [])
        return done

    def failed_cells(self) -> Dict[str, dict]:
        """Map cell key -> its last *final* ``cell_failed`` entry.

        Cells that later succeeded (a retry or a resume) are excluded.
        """
        failed: Dict[str, dict] = {}
        for entry in self.entries:
            if entry.get("event") == "cell_failed" and entry.get("final"):
                failed[entry["cell"]] = entry
            elif entry.get("event") == "cell_ok":
                failed.pop(entry["cell"], None)
        return failed


def scan_journal(path: PathLike) -> JournalScan:
    """Read a journal back, tolerating a truncated trailing line.

    A missing file scans as empty (a run that never started writing).
    """
    target = Path(path)
    if not target.exists():
        return JournalScan()
    raw = target.read_bytes()
    lines = [line for line in raw.split(b"\n") if line.strip()]
    scan = JournalScan()
    for index, line in enumerate(lines):
        try:
            entry = json.loads(line.decode("utf-8", errors="strict"))
        except (ValueError, UnicodeDecodeError):
            if index == len(lines) - 1:
                scan.truncated = True
                break
            raise JournalError(
                f"{target}: corrupt journal entry on line {index + 1} "
                "(not a crash artifact; refusing to guess)") from None
        if not isinstance(entry, dict):
            raise JournalError(
                f"{target}: line {index + 1} is not a JSON object")
        scan.entries.append(entry)
    return scan


class RunJournal:
    """Append-only JSONL writer with per-entry flush + fsync.

    ``resume=False`` (the default) starts a fresh journal, atomically
    truncating any previous file of the same name; ``resume=True``
    appends to whatever is already there.  The file is opened lazily on
    the first :meth:`append`, so constructing a journal is free.
    """

    def __init__(self, path: PathLike, *, resume: bool = False) -> None:
        self.path = Path(path)
        self._resume = resume
        self._file = None

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self._resume:
                # atomic truncate: a crash between open and first append
                # must not leave a half-truncated previous journal
                atomic_write_bytes(self.path, b"")
            elif self.path.exists():
                self._trim_partial_tail()
            self._file = open(self.path, "ab")
            fsync_directory(self.path.parent)
        return self._file

    def _trim_partial_tail(self) -> None:
        """Drop the partial trailing line a mid-append crash left behind.

        Appending after a truncated tail would glue the first new entry
        onto the wreckage, turning a benign crash artifact into the
        interior corruption the scanner rightly refuses to guess about.
        Only the tail is ever trimmed: the unterminated final bytes,
        plus at most one newline-terminated but unparseable last line
        (a flush that raced the crash).  Anything worse is interior
        corruption and is left for :func:`scan_journal` to reject.
        """
        raw = self.path.read_bytes()
        end = len(raw)
        if raw and not raw.endswith(b"\n"):
            end = raw.rfind(b"\n") + 1
        last_start = raw.rfind(b"\n", 0, end - 1) + 1 if end else 0
        last_line = raw[last_start:max(end - 1, 0)]
        if last_line.strip():
            try:
                json.loads(last_line)
            except ValueError:
                end = last_start
        if end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(end)
                handle.flush()
                os.fsync(handle.fileno())

    def append(self, entry: dict) -> None:
        """Durably append one event (flush + fsync before returning)."""
        handle = self._open()
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        handle.write(line.encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading / maintenance ----------------------------------------

    def scan(self) -> JournalScan:
        """Scan this journal's file (see :func:`scan_journal`)."""
        return scan_journal(self.path)

    def size_bytes(self) -> int:
        """Current on-disk size of the journal file (0 when absent)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def rewrite(self, entries: Sequence[dict]) -> None:
        """Atomically replace the whole journal (tmp + rename + fsync)."""
        was_open = self._file is not None
        self.close()
        payload = b"".join(
            json.dumps(entry, sort_keys=True,
                       separators=(",", ":")).encode("utf-8") + b"\n"
            for entry in entries)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.path, payload)
        if was_open:
            self._file = open(self.path, "ab")

    def compact(self) -> int:
        """Drop per-attempt/per-batch noise, keeping only settling events.

        Study journals: retains ``run_start``/``run_resume``/``run_end``,
        every cell's last ``cell_ok``, and final ``cell_failed`` entries
        for cells that never succeeded; ``cell_start`` noise is dropped.

        Serve journals: retains only each tenant's *latest*
        ``tenant_checkpoint``, and only while no ``tenant_close`` settled
        the stream after it — so a long-lived daemon's journal is
        O(tenants), not O(batches).  Lifecycle events (``serve_start``,
        ``tenant_open``, ``tenant_close``, ``tenant_evict``) are small
        and kept as history.

        Events this method does not understand are kept verbatim —
        compaction only ever drops what it can prove is superseded.
        Returns the number of entries removed.  Resume semantics are
        unchanged: a compacted journal skips exactly the same cells and
        re-admits exactly the same tenants, bit-identically.
        """
        scan = self.scan()
        done = scan.completed_cells()
        failed = scan.failed_cells()
        last_checkpoint: Dict[str, int] = {}
        last_close: Dict[str, int] = {}
        for index, entry in enumerate(scan.entries):
            if entry.get("event") == "tenant_checkpoint":
                last_checkpoint[entry["tenant"]] = index
            elif entry.get("event") == "tenant_close":
                last_close[entry["tenant"]] = index
        kept: List[dict] = []
        emitted_ok: set = set()
        emitted_failed: set = set()
        for index, entry in enumerate(scan.entries):
            event = entry.get("event")
            if event == "cell_start":
                continue                        # per-attempt noise
            if event == "cell_ok":
                key = entry["cell"]
                if key not in emitted_ok and entry.get("records") == done[key]:
                    kept.append(entry)
                    emitted_ok.add(key)
            elif event == "cell_failed":
                key = entry["cell"]
                if key in failed and key not in emitted_failed \
                        and entry is failed[key]:
                    kept.append(entry)
                    emitted_failed.add(key)
            elif event == "tenant_checkpoint":
                tenant = entry["tenant"]
                if last_checkpoint[tenant] == index \
                        and last_close.get(tenant, -1) < index:
                    kept.append(entry)
            else:
                kept.append(entry)
        removed = len(scan.entries) - len(kept)
        self.rewrite(kept)
        return removed
