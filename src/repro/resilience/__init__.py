"""Crash-safe, resumable study execution.

The paper's benchmark is a long grid sweep on flaky edge hardware; this
package makes the *run itself* survivable rather than only individual
batches (which :mod:`repro.robustness` already guards):

- :mod:`repro.resilience.atomic` — tmp + rename + fsync file writes, so
  a crash never leaves a half-written artifact;
- :mod:`repro.resilience.journal` — an append-only JSONL run journal
  whose recovery scanner tolerates the truncated trailing line a
  mid-write kill produces;
- :mod:`repro.resilience.executor` — :class:`ResilientExecutor`: drives
  the native grid cell by cell with exception isolation, a soft-deadline
  watchdog, bounded seeded-backoff retries, and journal-based resume
  (``resume=True`` replays completed cells bit-identically instead of
  re-executing them).

``executor`` is imported lazily (PEP 562): it depends on
:mod:`repro.core.io`, which itself uses :mod:`repro.resilience.atomic`
for atomic saves — eager import here would close that cycle.
"""

from repro.resilience.atomic import (
    atomic_path,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.resilience.journal import (
    JournalError,
    JournalScan,
    RunJournal,
    scan_journal,
)

_EXECUTOR_NAMES = ("CellFn", "CellSpec", "CellTimeoutError",
                   "ExecutorStats", "ResilientExecutor", "RetryPolicy",
                   "call_with_deadline", "make_failed_record",
                   "recover_completed", "run_cell_attempts")

__all__ = [
    "atomic_path",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "JournalError",
    "JournalScan",
    "RunJournal",
    "scan_journal",
    *_EXECUTOR_NAMES,
]


def __getattr__(name: str):
    if name in _EXECUTOR_NAMES:
        from repro.resilience import executor
        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
