"""Cell-by-cell resilient execution of a study grid.

:class:`ResilientExecutor` owns the control loop the native runner used
to inline: it drives a sequence of *cells* (one isolated callable per
(model, method, batch size) grid point, each returning the cell's
``MeasurementRecord`` list) and makes the sweep survive what edge
measurement campaigns actually hit:

- **exception isolation** — a raising cell becomes a ``status="failed"``
  record (its traceback journaled) and the sweep continues;
- **soft-deadline watchdog** — a cell that exceeds ``cell_timeout``
  seconds is abandoned (its worker thread is daemonic), recorded as
  ``status="timeout"``, and the sweep continues;
- **bounded retry** — failed attempts are retried up to ``max_retries``
  times with deterministic seeded exponential backoff, so a transient
  fault (thermal throttle, flaky I/O) does not cost the cell;
- **journaling + resume** — every outcome is durably appended to a
  :class:`~repro.resilience.journal.RunJournal`; with ``resume=True``
  cells already journaled ``ok`` are *not* re-executed — their records
  are replayed from the journal, so the same journal always merges into
  a bit-identical :class:`~repro.core.records.StudyResult`.

The executor is generic over what a cell computes; only
:class:`CellSpec` ties it to the study grid's coordinates (needed to
synthesize a placeholder record when a cell ultimately fails).

The per-cell attempt loop lives in the module-level
:func:`run_cell_attempts` (parameterized by a :class:`RetryPolicy` and
an ``emit`` callback for journal-schema events) so the process-parallel
scheduler (:mod:`repro.parallel`) drives the *same* retry, watchdog,
and journaling semantics from inside its worker processes — the only
difference is where the emitted events end up (appended to the journal
directly here; funnelled through the single-writer result queue there).
"""

from __future__ import annotations

import threading
import time
import traceback
import zlib
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.io import record_from_dict, record_to_dict
from repro.core.records import MeasurementRecord, StudyResult
from repro.resilience.journal import RunJournal


class CellTimeoutError(RuntimeError):
    """A cell exceeded its soft deadline (the watchdog gave up on it)."""


@dataclass(frozen=True)
class CellSpec:
    """Grid coordinates of one executable cell."""

    key: str
    model: str
    method: str
    batch_size: int
    device: str = "host"
    backend: str = ""
    guarded: bool = False


CellFn = Callable[[], List[MeasurementRecord]]
EmitFn = Callable[[dict], None]


@dataclass
class ExecutorStats:
    """What the executor did, for logs and CLI summaries."""

    executed: int = 0
    skipped: int = 0
    failed: int = 0
    retries: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """How a cell's attempts are bounded, spaced, and deadlined.

    Shared by :class:`ResilientExecutor` (serial) and the worker
    processes of :class:`repro.parallel.ParallelExecutor`; being frozen
    and plain-data it pickles across a ``spawn`` boundary.
    """

    max_retries: int = 0
    cell_timeout: float = 0.0
    backoff_base: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seeded jittered exponential backoff before attempt+1."""
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(key.encode("utf-8")), attempt))
        return self.backoff_base * (2.0 ** (attempt - 1)) \
            * float(rng.uniform(0.5, 1.5))


def call_with_deadline(fn: CellFn, timeout: float) -> List[MeasurementRecord]:
    """Run ``fn``; abandon it past ``timeout`` seconds (0 = run inline).

    The soft deadline runs ``fn`` on a daemonic thread and gives up on
    it (the thread keeps running but nobody waits) — a *soft* watchdog,
    the strongest guarantee a single process can give.
    """
    if timeout <= 0:
        return fn()
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:   # noqa: BLE001 — re-raised below
            box["error"] = error

    worker = threading.Thread(target=target, daemon=True,
                              name="repro-cell-watchdog")
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise CellTimeoutError(
            f"cell exceeded soft deadline of {timeout:g}s")
    if "error" in box:
        raise box["error"]
    return box["result"]


def run_cell_attempts(spec: CellSpec, fn: CellFn, policy: RetryPolicy,
                      emit: EmitFn,
                      sleep: Callable[[float], None] = time.sleep,
                      ) -> Tuple[Optional[List[MeasurementRecord]], int,
                                 Optional[BaseException]]:
    """Drive one cell's bounded attempts; returns (records, attempts, error).

    ``records`` is ``None`` when every attempt failed (``error`` is then
    the last one).  Every journal-schema event (``cell_start``,
    ``cell_failed``, ``cell_ok``) is handed to ``emit`` as it happens.
    After the *final* failed attempt the loop exits immediately — no
    trailing backoff is slept (there is no next attempt to space out).
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        emit({"event": "cell_start", "cell": spec.key, "attempt": attempt})
        try:
            records = call_with_deadline(fn, policy.cell_timeout)
        except Exception as error:       # noqa: BLE001 — isolation is
            # the point; KeyboardInterrupt et al. still propagate
            final = attempt == policy.attempts
            emit({
                "event": "cell_failed", "cell": spec.key,
                "attempt": attempt, "final": final,
                "error": f"{type(error).__name__}: {error}",
                "error_type": type(error).__name__,
                "traceback": traceback.format_exc()})
            last_error = error
            if final:
                break
            sleep(policy.backoff_delay(spec.key, attempt))
            continue
        stamped = [replace(r, status="ok", attempts=attempt)
                   for r in records]
        emit({"event": "cell_ok", "cell": spec.key, "attempt": attempt,
              "records": [record_to_dict(r) for r in stamped]})
        return stamped, attempt, None
    return None, policy.attempts, last_error


def make_failed_record(spec: CellSpec, attempts: int,
                       status: str = "failed") -> MeasurementRecord:
    """Placeholder record for a cell that never produced measurements."""
    return MeasurementRecord(
        model=spec.model, method=spec.method,
        batch_size=spec.batch_size, device=spec.device,
        error_pct=float("nan"), forward_time_s=float("nan"),
        energy_j=float("nan"), backend=spec.backend,
        guarded=spec.guarded, status=status, attempts=attempts)


def recover_completed(journal: RunJournal, fingerprint: str) -> dict:
    """Scan a journal for resumable cells, refusing a foreign config."""
    scan = journal.scan()
    recorded = scan.fingerprint
    if recorded is not None and fingerprint and recorded != fingerprint:
        raise ValueError(
            f"journal {journal.path} was written by a different "
            f"study configuration (fingerprint {recorded} != "
            f"{fingerprint}); refusing to resume")
    return scan.completed_cells()


class ResilientExecutor:
    """Drive study cells with isolation, watchdog, retries, and resume.

    Parameters
    ----------
    journal:
        Optional :class:`RunJournal`; without one the executor still
        isolates and retries but nothing is durable (and ``resume`` is
        meaningless).
    resume:
        Skip cells the journal already records as ``ok``, replaying
        their journaled records into the merged result.  Requires the
        journal's ``run_start`` fingerprint to match ``fingerprint`` —
        resuming under a different config would silently merge
        incomparable measurements.
    max_retries:
        Extra attempts per failing cell (0 = one attempt).
    cell_timeout:
        Soft deadline in seconds per attempt (0 = no watchdog; cells
        run inline on the calling thread).
    backoff_base:
        First retry delay in seconds; attempt ``k`` waits
        ``backoff_base * 2**(k-1)`` scaled by a seeded jitter in
        [0.5, 1.5), deterministic per (seed, cell, attempt).
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(self, journal: Optional[RunJournal] = None, *,
                 resume: bool = False, max_retries: int = 0,
                 cell_timeout: float = 0.0, backoff_base: float = 0.05,
                 seed: int = 0, fingerprint: str = "",
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.policy = RetryPolicy(max_retries=max_retries,
                                  cell_timeout=cell_timeout,
                                  backoff_base=backoff_base, seed=seed)
        self.journal = journal
        self.resume = resume
        self.fingerprint = fingerprint
        self.sleep = sleep
        self.stats = ExecutorStats()
        self._completed = recover_completed(journal, fingerprint) \
            if (journal and resume) else {}

    @property
    def max_retries(self) -> int:
        return self.policy.max_retries

    @property
    def cell_timeout(self) -> float:
        return self.policy.cell_timeout

    # -- the drive loop -----------------------------------------------

    def run(self, cells: Sequence[Tuple[CellSpec, CellFn]]) -> StudyResult:
        """Execute (or replay) every cell, in order; merge the records."""
        self._append({"event": "run_resume" if (self.resume and
                                                self._completed) else
                      "run_start", "fingerprint": self.fingerprint,
                      "cells": len(cells)})
        result = StudyResult()
        for spec, fn in cells:
            journaled = self._completed.get(spec.key)
            if journaled is not None:
                for row in journaled:
                    result.add(record_from_dict(row))
                self.stats.skipped += 1
                continue
            for record in self._run_cell(spec, fn):
                result.add(record)
        self._append({"event": "run_end", "executed": self.stats.executed,
                      "skipped": self.stats.skipped,
                      "failed": self.stats.failed})
        return result

    def _run_cell(self, spec: CellSpec,
                  fn: CellFn) -> List[MeasurementRecord]:
        records, attempts, error = run_cell_attempts(
            spec, fn, self.policy, self._append, self.sleep)
        self.stats.retries += attempts - 1
        if records is None:
            self.stats.failed += 1
            status = "timeout" if isinstance(error, CellTimeoutError) \
                else "failed"
            return [make_failed_record(spec, attempts, status)]
        self.stats.executed += 1
        return records

    # -- helpers ------------------------------------------------------

    def _backoff_delay(self, key: str, attempt: int) -> float:
        return self.policy.backoff_delay(key, attempt)

    def _append(self, entry: dict) -> None:
        if self.journal is not None:
            self.journal.append(entry)
