"""Core autograd tensor.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records, for every
operation, the parent tensors and a backward closure.  Calling
:meth:`Tensor.backward` runs a reverse topological traversal and
accumulates gradients into ``.grad`` (a plain ndarray), mirroring the
PyTorch semantics the paper's BN-Opt (TENT) algorithm relies on.

Only the operations needed by the reproduction are implemented, but each
supports full broadcasting and arbitrary batch shapes.  Heavyweight fused
ops (convolution, pooling, batch-norm, softmax losses) live in
:mod:`repro.tensor.conv` and :mod:`repro.tensor.functional`; they attach to
the same graph machinery through :func:`Tensor._from_op`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

# Grad mode is thread-local (like PyTorch's): disabling it inside one
# thread — e.g. an inference stream — must not leak into worker threads
# or other concurrent streams, and it composes with the engine's
# thread-local `use_backend` stack in either nesting order.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block (like torch.no_grad).

    Nestable and exception-safe: the previous mode is restored when the
    block exits, even via ``raise``.  The mode is per-thread; other
    threads continue to record graphs.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return True when operations record the autograd graph (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


ArrayLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """A numpy-backed autograd tensor.

    Parameters
    ----------
    data:
        Array data (copied only if not already an ndarray of float dtype).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_grad_sink")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`_accumulate` on each parent that requires grad.
        When autograd is disabled, or no parent requires grad, the result
        is a detached leaf.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (and must be omitted only for scalar
        outputs, matching PyTorch's contract).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                node._accumulate(node_grad)
                continue
            # Interior node: delegate to the op's backward, which calls
            # parent._accumulate. To keep interior accumulation in the
            # `grads` dict (so diamonds sum before propagating), we
            # temporarily intercept.
            node._run_backward(node_grad, grads)

        # Any remaining buffered grads belong to leaves reached via
        # interception; flush them.
        for node in reversed(topo):
            pending = grads.pop(id(node), None)
            if pending is not None:
                node._accumulate(pending)

    def _run_backward(self, node_grad: np.ndarray, grads: dict) -> None:
        """Invoke this node's backward closure, routing parent grads.

        Interior parents buffer into ``grads`` (summing fan-in); leaf
        parents accumulate directly into ``.grad``.
        """
        contributions: list[Tuple[Tensor, np.ndarray]] = []

        def route(parent: Tensor, g: np.ndarray) -> None:
            contributions.append((parent, g))

        # The backward closures call parent._accumulate; monkey-patching a
        # bound method per-call is fragile, so instead closures are written
        # against `_send_grad(parent, g)` on the output tensor.
        self._grad_sink = route  # type: ignore[attr-defined]
        try:
            self._backward(node_grad)  # type: ignore[misc]
        finally:
            del self._grad_sink  # type: ignore[attr-defined]
        for parent, g in contributions:
            g = _unbroadcast(np.asarray(g), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + g
            else:
                grads[key] = g

    def _send_grad(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Used by op backward closures to hand a gradient to a parent."""
        if not parent.requires_grad:
            return
        sink = getattr(self, "_grad_sink", None)
        if sink is not None:
            sink(parent, grad)
        else:  # pragma: no cover - direct invocation outside backward()
            parent._accumulate(grad)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike, like: "Tensor") -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(np.asarray(value, dtype=like.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad)
            out._send_grad(other, grad)

        out = Tensor._from_op(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, -grad)

        out = Tensor._from_op(-self.data, (self,), backward)
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor._coerce(other, self))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other, self) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * other.data)
            out._send_grad(other, grad * self.data)

        out = Tensor._from_op(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad / other.data)
            out._send_grad(other, -grad * self.data / (other.data ** 2))

        out = Tensor._from_op(out_data, (self, other), backward)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other, self) / self

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * exponent * self.data ** (exponent - 1.0))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting 2-D x 2-D (the case the models use).

        Dispatches to the active execution backend (captured at forward
        time so the backward pass runs on the same backend).
        """
        from repro.engine.base import get_backend  # deferred: keeps tensor importable standalone
        backend = get_backend()
        other = Tensor._coerce(other, self)
        out_data = backend.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, backend.matmul(
                grad, other.data.swapaxes(-1, -2)))
            out._send_grad(other, backend.matmul(
                self.data.swapaxes(-1, -2), grad))

        out = Tensor._from_op(out_data, (self, other), backward)
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad.reshape(original))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad.transpose(inverse))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onward (like torch.flatten)."""
        lead = self.data.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            out._send_grad(self, full)

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def pad2d(self, padding: Tuple[int, int]) -> "Tensor":
        """Zero-pad the last two (spatial) dims by (pad_h, pad_w) each side."""
        ph, pw = padding
        if ph == 0 and pw == 0:
            return self
        width = [(0, 0)] * (self.data.ndim - 2) + [(ph, ph), (pw, pw)]
        out_data = np.pad(self.data, width)

        def backward(grad: np.ndarray) -> None:
            sl = (Ellipsis, slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw))
            out._send_grad(self, grad[sl])

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._send_grad(self, np.broadcast_to(g, self.data.shape))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties, matching numpy semantics
            # closely enough for pooling use.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            out._send_grad(self, mask * g / denom)

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Pointwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * mask)

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * out_data)

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad / self.data)

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * out_data * (1.0 - out_data))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * (1.0 - out_data ** 2))

        out = Tensor._from_op(out_data, (self,), backward)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            out._send_grad(self, grad * mask)

        out = Tensor._from_op(out_data, (self,), backward)
        return out


def tensor(data, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """Construct a :class:`Tensor` from array-like data with a given dtype."""
    return Tensor(np.asarray(data, dtype=dtype), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(start, stop)
            out._send_grad(t, grad[tuple(sl)])

    out = Tensor._from_op(out_data, tensors, backward)
    return out
