"""From-scratch numpy autograd engine.

This subpackage provides the dynamic-graph tensor substrate the paper's
adaptation algorithms run on (the paper used PyTorch 1.8; see DESIGN.md for
the substitution rationale).  The public surface is:

- :class:`~repro.tensor.tensor.Tensor` — a numpy-backed tensor that records
  a dynamic computation graph and supports reverse-mode autodiff via
  :meth:`~repro.tensor.tensor.Tensor.backward`.
- :func:`~repro.tensor.tensor.no_grad` / :func:`~repro.tensor.tensor.is_grad_enabled`
  — context manager mirroring ``torch.no_grad()``.
- :mod:`repro.tensor.conv` — im2col convolution (stride / padding / groups /
  depthwise) and pooling with hand-written backward passes.
- :mod:`repro.tensor.functional` — fused neural-net ops (batch-norm in
  train/eval mode, softmax, log-softmax, cross-entropy, Shannon entropy).
- :func:`~repro.tensor.gradcheck.gradcheck` — finite-difference gradient
  verification used throughout the test suite.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.tensor.gradcheck import gradcheck

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled", "gradcheck"]
