"""Fused neural-network ops: batch normalization, softmax-family, losses.

Batch normalization is the centrepiece of the paper: both adaptation
algorithms act exclusively on BN state.  Two fused kernels are provided,
mirroring PyTorch's ``F.batch_norm`` in its two modes:

- :func:`batch_norm_train` — normalizes with *batch* statistics (what a
  model in ``train()`` mode does, and what BN-Norm / BN-Opt exploit at test
  time).  The backward pass propagates gradients through the batch
  statistics, which is required for BN-Opt's entropy backprop to reach
  earlier layers' affine parameters.
- :func:`batch_norm_eval` — normalizes with frozen running statistics
  (``eval()`` mode, the No-Adapt baseline).

The entropy loss :func:`entropy_loss` implements the Shannon-entropy
objective of BN-Opt (TENT): ``H(y) = -sum_c p_c log p_c`` averaged over the
batch, computed from logits in a numerically stable way.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.engine import get_backend
from repro.tensor.tensor import Tensor


def batch_norm_train(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    eps: float = 1e-5,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Batch-norm forward using batch statistics over (N, H, W) per channel.

    Returns ``(out, batch_mean, batch_var)`` — the statistics are plain
    arrays so the caller (``BatchNorm2d``) can update its running buffers,
    exactly as PyTorch does in train mode.  ``x`` is (N, C, H, W); ``gamma``
    and ``beta`` are (C,).
    """
    data = x.data
    axes = (0, 2, 3)
    m = data.shape[0] * data.shape[2] * data.shape[3]
    # biased variance, matching PyTorch normalization
    mean, var = get_backend().batchnorm_stats(data)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out_data = gamma.data[None, :, None, None] * xhat + beta.data[None, :, None, None]

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            out._send_grad(gamma, (grad * xhat).sum(axis=axes))
        if beta.requires_grad:
            out._send_grad(beta, grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * gamma.data[None, :, None, None]
            mean_g = g.mean(axis=axes)
            mean_gx = (g * xhat).mean(axis=axes)
            dx = (g - mean_g[None, :, None, None]
                  - xhat * mean_gx[None, :, None, None]) * inv_std[None, :, None, None]
            out._send_grad(x, dx)

    out = Tensor._from_op(out_data, (x, gamma, beta), backward)
    # Unbiased variance for the running buffer, as PyTorch stores it.
    unbiased = var * (m / max(m - 1, 1))
    return out, mean, unbiased


def batch_norm_eval(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = 1e-5,
) -> Tensor:
    """Batch-norm forward using frozen running statistics (eval mode)."""
    inv_std = 1.0 / np.sqrt(running_var + eps)
    scale = gamma.data * inv_std
    shift = beta.data - running_mean * scale
    out_data = x.data * scale[None, :, None, None] + shift[None, :, None, None]
    xhat = (x.data - running_mean[None, :, None, None]) * inv_std[None, :, None, None]

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            out._send_grad(gamma, (grad * xhat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            out._send_grad(beta, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            out._send_grad(x, grad * scale[None, :, None, None])

    out = Tensor._from_op(out_data, (x, gamma, beta), backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        out._send_grad(x, grad - softmax * grad.sum(axis=axis, keepdims=True))

    out = Tensor._from_op(out_data, (x,), backward)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable, via exp of log-softmax)."""
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets).astype(np.int64)
    n = logits.data.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    return -(picked.mean())


def entropy_loss(logits: Tensor) -> Tensor:
    """Mean Shannon entropy of the predicted distributions (BN-Opt objective).

    ``H(y) = -sum_c p(y_c) log p(y_c)`` computed per sample from ``logits``
    (N, C), then averaged over the batch.  Fully differentiable w.r.t. the
    logits; no labels required.
    """
    logp = log_softmax(logits, axis=-1)
    p = logp.exp()
    per_sample = -(p * logp).sum(axis=-1)
    return per_sample.mean()


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] from raw logits and integer labels."""
    logits = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = logits.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
