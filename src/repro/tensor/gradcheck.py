"""Finite-difference gradient verification for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).item()
        flat[i] = original - eps
        minus = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify autograd gradients of scalar ``fn`` against finite differences.

    Inputs should be float64 tensors with ``requires_grad=True`` for every
    argument whose gradient should be checked.  Raises ``AssertionError``
    with a diagnostic on mismatch; returns True on success.
    """
    for tensor_input in inputs:
        tensor_input.zero_grad()
    out = fn(*inputs)
    if out.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for i, tensor_input in enumerate(inputs):
        if not tensor_input.requires_grad:
            continue
        analytic = tensor_input.grad
        if analytic is None:
            analytic = np.zeros_like(tensor_input.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
