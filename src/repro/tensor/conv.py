"""Convolution and pooling primitives with hand-written backward passes.

Layout convention is NCHW throughout (matching PyTorch).  Convolution is
implemented with a zero-copy strided im2col view plus an einsum contraction
that handles standard, grouped, and depthwise convolution uniformly — the
three flavours needed by ResNet-18 / Wide-ResNet (groups=1), ResNeXt
(grouped 3x3), and MobileNetV2 (depthwise).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col_view(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Return a strided view of shape (N, C, kh, kw, Ho, Wo) over padded input."""
    n, c, h, w = x.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    sn, sc, sh_, sw_ = x.strides
    shape = (n, c, kh, kw, ho, wo)
    strides = (sn, sc, sh_, sw_, sh_ * sh, sw_ * sw)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            sh: int, sw: int) -> np.ndarray:
    """Scatter-add a (N, C, kh, kw, Ho, Wo) gradient back to padded-input shape."""
    n, c, h, w = x_shape
    ho = cols.shape[-2]
    wo = cols.shape[-1]
    dx = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        h_stop = i + sh * ho
        for j in range(kw):
            w_stop = j + sw * wo
            dx[:, :, i:h_stop:sh, j:w_stop:sw] += cols[:, :, i, j]
    return dx


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0, groups: int = 1) -> Tensor:
    """2-D convolution: ``x`` (N, C, H, W) with ``weight`` (Co, C/g, kh, kw).

    Supports arbitrary ``stride``, symmetric zero ``padding``, and ``groups``
    (``groups == C`` gives depthwise convolution).  Gradients flow to ``x``,
    ``weight``, and ``bias``.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.data.shape
    co, cig, kh, kw = weight.data.shape
    if c % groups or co % groups:
        raise ValueError(f"channels ({c}->{co}) not divisible by groups={groups}")
    if cig != c // groups:
        raise ValueError(
            f"weight expects {cig} in-channels/group but input has {c // groups}")

    xp = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    view = _im2col_view(xp, kh, kw, sh, sw)          # (N, C, kh, kw, Ho, Wo)
    ho, wo = view.shape[-2:]
    cog = co // groups

    vg = view.reshape(n, groups, cig, kh, kw, ho, wo)
    wg = weight.data.reshape(groups, cog, cig, kh, kw)
    # out[n, g, o, y, x] = sum_{c,i,j} w[g,o,c,i,j] * v[n,g,c,i,j,y,x]
    out_data = np.einsum("gocij,ngcijyx->ngoyx", wg, vg, optimize=True)
    out_data = out_data.reshape(n, co, ho, wo)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, co, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        gg = grad.reshape(n, groups, cog, ho, wo)
        if weight.requires_grad:
            dw = np.einsum("ngoyx,ngcijyx->gocij", gg, vg, optimize=True)
            out._send_grad(weight, dw.reshape(co, cig, kh, kw))
        if bias is not None and bias.requires_grad:
            out._send_grad(bias, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.einsum("gocij,ngoyx->ngcijyx", wg, gg, optimize=True)
            dcols = dcols.reshape(n, c, kh, kw, ho, wo)
            dxp = _col2im(dcols, xp.shape, kh, kw, sh, sw)
            if ph or pw:
                dxp = dxp[:, :, ph:ph + h, pw:pw + w]
            out._send_grad(x, dxp)

    out = Tensor._from_op(out_data, parents, backward)
    return out


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over (N, C, H, W); ``stride`` defaults to ``kernel_size``."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    view = _im2col_view(x.data, kh, kw, sh, sw)      # (N, C, kh, kw, Ho, Wo)
    n, c, _, _, ho, wo = view.shape
    flat = view.reshape(n, c, kh * kw, ho, wo)
    arg = flat.argmax(axis=2)                         # (N, C, Ho, Wo)
    out_data = np.take_along_axis(flat, arg[:, :, None], axis=2)[:, :, 0]

    def backward(grad: np.ndarray) -> None:
        dflat = np.zeros_like(flat)
        np.put_along_axis(dflat, arg[:, :, None], grad[:, :, None], axis=2)
        dcols = dflat.reshape(n, c, kh, kw, ho, wo)
        out._send_grad(x, _col2im(dcols, x.data.shape, kh, kw, sh, sw))

    out = Tensor._from_op(out_data, (x,), backward)
    return out


def avg_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling over (N, C, H, W)."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    view = _im2col_view(x.data, kh, kw, sh, sw)
    out_data = view.mean(axis=(2, 3))
    n, c, _, _, ho, wo = view.shape
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        dcols = np.broadcast_to(
            (grad * scale)[:, :, None, None], (n, c, kh, kw, ho, wo)
        ).astype(grad.dtype)
        out._send_grad(x, _col2im(np.ascontiguousarray(dcols), x.data.shape,
                                  kh, kw, sh, sw))

    out = Tensor._from_op(out_data, (x,), backward)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to 1x1, returned as (N, C)."""
    return x.mean(axis=(2, 3))
