"""Convolution and pooling primitives with hand-written backward passes.

Layout convention is NCHW throughout (matching PyTorch).  Convolution is
a zero-copy strided im2col view plus an einsum contraction that handles
standard, grouped, and depthwise convolution uniformly — the three
flavours needed by ResNet-18 / Wide-ResNet (groups=1), ResNeXt (grouped
3x3), and MobileNetV2 (depthwise).

This module owns the autograd bookkeeping only; the actual kernels are
dispatched to the active execution backend (:mod:`repro.engine`), which
is captured at forward time so the backward closure runs on the same
backend that produced the forward pass.  Padded-input workspaces come
from the backend's arena and are released as soon as they can no longer
be referenced — immediately when no graph is recorded, otherwise after
the backward closure has consumed them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.engine import get_backend
from repro.tensor.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0, groups: int = 1) -> Tensor:
    """2-D convolution: ``x`` (N, C, H, W) with ``weight`` (Co, C/g, kh, kw).

    Supports arbitrary ``stride``, symmetric zero ``padding``, and ``groups``
    (``groups == C`` gives depthwise convolution).  Gradients flow to ``x``,
    ``weight``, and ``bias``.
    """
    backend = get_backend()
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.data.shape
    co, cig, kh, kw = weight.data.shape
    if c % groups or co % groups:
        raise ValueError(f"channels ({c}->{co}) not divisible by groups={groups}")
    if cig != c // groups:
        raise ValueError(
            f"weight expects {cig} in-channels/group but input has {c // groups}")

    xp = backend.pad_input(x.data, ph, pw) if (ph or pw) else x.data
    out_data = backend.conv2d_forward(xp, weight.data, (sh, sw), groups)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, co, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        dxp, dw = backend.conv2d_backward(
            grad, xp, weight.data, (sh, sw), groups,
            x.requires_grad, weight.requires_grad)
        if dw is not None:
            out._send_grad(weight, dw)
        if bias is not None and bias.requires_grad:
            out._send_grad(bias, grad.sum(axis=(0, 2, 3)))
        if dxp is not None:
            if ph or pw:
                dxp = dxp[:, :, ph:ph + h, pw:pw + w]
            out._send_grad(x, dxp)
        if xp is not x.data:
            backend.arena.release(xp)

    out = Tensor._from_op(out_data, parents, backward)
    if not out.requires_grad and xp is not x.data:
        # No closure captured the padded workspace; recycle it now.
        backend.arena.release(xp)
    return out


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over (N, C, H, W); ``stride`` defaults to ``kernel_size``."""
    backend = get_backend()
    kernel = _pair(kernel_size)
    strides = _pair(stride if stride is not None else kernel_size)
    out_data, arg = backend.max_pool2d_forward(x.data, kernel, strides)

    def backward(grad: np.ndarray) -> None:
        out._send_grad(x, backend.max_pool2d_backward(
            grad, arg, x.data.shape, kernel, strides))

    out = Tensor._from_op(out_data, (x,), backward)
    return out


def avg_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling over (N, C, H, W)."""
    backend = get_backend()
    kernel = _pair(kernel_size)
    strides = _pair(stride if stride is not None else kernel_size)
    out_data = backend.avg_pool2d_forward(x.data, kernel, strides)

    def backward(grad: np.ndarray) -> None:
        out._send_grad(x, backend.avg_pool2d_backward(
            grad, x.data.shape, kernel, strides))

    out = Tensor._from_op(out_data, (x,), backward)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to 1x1, returned as (N, C)."""
    return x.mean(axis=(2, 3))
