"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``
    Print the model zoo with the analytical footprints of Section III-B.
``devices``
    Print the device catalog.
``study``
    Run the simulated measurement study; render forward times and the
    weighted-objective selections (optionally for one device), and/or
    write the grid to JSON/CSV.
``figures``
    Regenerate every figure/table as text (Fig. 2 grid, Figs. 3-12
    reports, Table I).
``anchors``
    Print the calibration-anchor residual table (paper vs device model).
``insights``
    Re-derive the Section IV-G architecture-algorithm insights.
``scorecard``
    Audit every machine-checkable paper claim (57 checks) in one run.
``scatter``
    ASCII trade-off scatter (Figs. 5/8/11/12 projection).
``bench``
    Time the execution-engine leaf kernels (conv forward/backward, one
    BN-Opt step) per backend plus native sweep throughput (serial vs
    ``--workers`` processes; skip with ``--no-sweep``) and write
    ``BENCH_engine.json``; ``--compare BASELINE --tolerance PCT`` turns
    the run into a perf-regression gate that exits non-zero when any
    metric slowed past the tolerance (CI runs this on every PR).
``stream``
    Play a corrupted SynthCIFAR stream through an adaptation method for
    real, optionally injecting faults (``--faults "nan:0.2,constant@3"``)
    and guarding with rollback + degradation ladder (``--guard``); print
    the resulting scorecard (see :mod:`repro.robustness`).
    ``--scenario "markov:p=0.1@3"`` replaces the single-corruption
    stream with a scenario-scheduled one (:mod:`repro.scenarios`) and
    additionally prints per-segment metrics and the recurrence
    forgetting metric.
``native``
    Run the native (really-executed) adaptation grid cell by cell with
    crash-safe execution: ``--journal`` appends every cell outcome to a
    JSONL run journal, ``--resume`` skips cells already journaled ok,
    and ``--max-retries`` / ``--cell-timeout`` bound retries and
    per-cell wall time (see :mod:`repro.resilience`).  ``--workers N``
    schedules the same cells across N worker processes with identical
    journal/resume semantics and canonically-ordered, byte-identical
    merged output (see :mod:`repro.parallel`).
``serve``
    Run the multi-tenant adaptation daemon (:mod:`repro.serve`): TCP
    wire protocol, per-tenant :class:`~repro.serve.session.AdaptationSession`
    streams with guarded adaptation and admission control, and
    journal-backed crash recovery — ``--journal`` checkpoints every
    tenant after every batch, ``--resume`` restores every open tenant
    bit-identically after a kill.
``serve-client``
    Drive a corrupted (optionally faulted) SynthCIFAR stream into a
    running daemon as one tenant; print the scorecard.
    ``--expect-rollbacks`` turns the run into a smoke assertion (exit 1
    unless the daemon reported guard rollbacks), ``--start-batch`` skips
    already-processed batches when replaying after a daemon resume, and
    ``--shutdown`` stops the daemon afterwards.
    ``--load "poisson:rate=64"`` paces the sends on a seeded open-loop
    arrival schedule (:mod:`repro.serve.loadgen`) and prints per-request
    latency percentiles; ``--duration S`` cycles the stream until S
    seconds elapsed (soak runs).
``serve-bench``
    Run the seeded multi-tenant serving benchmark in-process
    (:func:`repro.serve.loadgen.run_serving_bench`): N tenants' open-loop
    streams through an event-loop daemon, reduced to p50/p95/p99 latency
    + frames/sec.  ``--json`` writes a BENCH-style document,
    ``--compare BASELINE --tolerance PCT`` gates the serving metrics
    against a baseline's ``serving`` section (CI's serve-bench leg).
``check``
    Run the project-aware invariant linter (:mod:`repro.analysis`) over
    source trees: AST rules ``REP001``-``REP007`` guarding seeded
    determinism, atomic IO, lock-guarded globals and friends, with
    ``--select``/``--ignore`` code filters, ``--format json`` for CI,
    and a committed ``--baseline`` that absorbs legacy findings.  Exit
    codes follow the CLI convention: 0 clean, 1 findings, 2 usage
    error.

Global flags ``--backend {numpy,threaded,sanitize}`` and ``--threads N``
select the execution backend (see :mod:`repro.engine`) for any command
that executes the numpy engine natively; ``sanitize`` wraps the
reference backend in the numeric sanitizer
(:class:`~repro.analysis.sanitize.SanitizerBackend`), which validates
every leaf op's arrays and attributes any NaN/Inf/dtype/shape violation
to the op where it entered.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import StudyConfig
from repro.core.objectives import format_selection_table
from repro.core.records import StudyResult
from repro.core.report import (
    render_error_grid,
    render_forward_times,
    render_mobilenet_table,
    render_overall,
    render_tradeoffs,
)
from repro.core.runner import run_simulated_study
from repro.devices.catalog import DEVICE_NAMES, list_devices
from repro.engine import BACKEND_NAMES, create_backend, set_default_backend


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.models import build_model, model_info, summarize
    from repro.models.registry import MODEL_NAMES

    for name in MODEL_NAMES:
        summary = summarize(build_model(name, "full"), name=name)
        info = model_info(name)
        print(f"{info.paper_label:<10s} {summary.describe()}")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    for device in list_devices():
        print(f"{device.name:<15s} {device.describe()}")
        print(f"{'':15s} {device.description}")
    return 0


def _run_study(device: Optional[str]) -> StudyResult:
    devices = (device,) if device else DEVICE_NAMES
    return run_simulated_study(StudyConfig(devices=devices))


def _cmd_study(args: argparse.Namespace) -> int:
    result = _run_study(args.device)
    if args.json:
        from repro.core.io import save_json
        save_json(result, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.core.io import save_csv
        save_csv(result, args.csv)
        print(f"wrote {args.csv}")
    if not (args.json or args.csv) or args.verbose:
        for device in ((args.device,) if args.device else DEVICE_NAMES):
            print(render_forward_times(result, device))
            print()
            print(format_selection_table(
                result.filter(device=device),
                title=f"Optimal configurations on {device}:"))
            print()
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    study = run_simulated_study(StudyConfig())
    print(render_error_grid())
    print()
    for device in DEVICE_NAMES:
        print(render_forward_times(study, device))
        print()
        print(render_tradeoffs(study, device))
        print()
    print(render_overall(study))
    print()
    mobilenet = run_simulated_study(StudyConfig(models=("mobilenet_v2",),
                                                devices=("xavier_nx_gpu",)))
    print(render_mobilenet_table(mobilenet))
    return 0


def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.devices.calibrate import anchor_report, format_anchor_report
    results = anchor_report()
    print(format_anchor_report(results))
    failures = [r for r in results if not r.within_tolerance]
    if failures:
        print(f"\n{len(failures)} anchor(s) OUT OF TOLERANCE", file=sys.stderr)
        return 1
    print(f"\nall {len(results)} anchors within tolerance")
    return 0


def _cmd_insights(args: argparse.Namespace) -> int:
    from repro.core.insights import derive_insights, format_insights
    from repro.models.registry import MODEL_NAMES, build_model
    from repro.models.summary import summarize

    study = run_simulated_study(StudyConfig())
    summaries = {name: summarize(build_model(name, "full"), name=name)
                 for name in MODEL_NAMES}
    insights = derive_insights(study, summaries)
    print(format_insights(insights))
    return 0 if all(i.holds for i in insights) else 1


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.core.scorecard import format_scorecard, run_scorecard
    checks = run_scorecard()
    print(format_scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


def _cmd_scatter(args: argparse.Namespace) -> int:
    from repro.core.plots import scatter_records
    result = _run_study(args.device)
    records = result.filter(device=args.device).records if args.device \
        else result.records
    print(scatter_records(
        records,
        group_by=lambda r: r.method,
        title=f"Trade-offs ({args.device or 'all devices'}): "
              "forward time vs error"))
    return 0


def _parse_scenario_arg(text):
    """Parse ``--scenario`` upfront; (spec, None) or (None, exit code 2).

    Malformed specs are a *usage* error by the CLI convention: the
    message goes to stderr and the command exits 2 before any work runs.
    """
    from repro.scenarios import parse_scenario_spec
    try:
        return parse_scenario_spec(text), None
    except ValueError as error:
        print(f"error: bad --scenario: {error}", file=sys.stderr)
        return None, 2


def _print_scenario_outcome(outcome) -> None:
    """Render the per-segment table + forgetting under a scorecard line."""
    import math

    print(f"segments ({outcome.scenario}, seed {outcome.seed}):")
    header = (f"  {'#':>3s} {'corruption':<18s} {'sev':>3s} {'visit':>5s} "
              f"{'batches':>7s} {'frames':>6s} {'err %':>7s} "
              f"{'rolls':>5s} {'degr':>5s} {'fall':>5s} {'adapt':>5s}")
    print(header)
    for card in outcome.segments:
        print(f"  {card.ordinal:>3d} {card.corruption:<18s} "
              f"{card.severity:>3d} {card.visit:>5d} "
              f"{card.num_batches:>7d} {card.frames:>6d} "
              f"{card.error_pct:>7.2f} {card.rollbacks:>5d} "
              f"{card.degraded_batches:>5d} {card.fallback_frames:>5d} "
              f"{card.batches_adapted:>5d}")
    forgetting = outcome.forgetting
    if math.isnan(forgetting):
        print("  forgetting: n/a (no phase recurred)")
    else:
        print(f"  forgetting: {forgetting:+.2f} % "
              "(revisit error - first-visit error, mean over "
              "recurring phases)")


def _scenario_records(outcome, *, model: str, method: str,
                      batch_size: int, guarded: bool) -> "StudyResult":
    """A scenario outcome as study-result records (aggregate + segments)."""
    from repro.core.records import MeasurementRecord, StudyResult

    card = outcome.scorecard
    records = [MeasurementRecord(
        model=model, method=method, batch_size=batch_size, device="host",
        error_pct=card.effective_error_pct,
        forward_time_s=card.wall_time_s / max(card.batches_total, 1),
        energy_j=float("nan"),
        faults_injected=card.faults_injected, rollbacks=card.rollbacks,
        degraded_batches=card.degraded_batches,
        fallback_frames=card.fallback_frames, guarded=guarded,
        scenario=outcome.scenario)]
    for segment in outcome.segments:
        records.append(MeasurementRecord(
            model=model, method=method, batch_size=batch_size,
            device="host",
            error_pct=(segment.error_pct if segment.frames
                       else float("nan")),
            forward_time_s=float("nan"), energy_j=float("nan"),
            corruption=segment.corruption,
            rollbacks=segment.rollbacks,
            degraded_batches=segment.degraded_batches,
            fallback_frames=segment.fallback_frames, guarded=guarded,
            scenario=outcome.scenario, segment=segment.ordinal))
    return StudyResult(records)


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.data.stream import CorruptionStream
    from repro.data.synthetic import make_synth_cifar
    from repro.models import build_model
    from repro.robustness import run_guarded_stream
    from repro.train.trainer import pretrain_robust

    scenario_spec = None
    if args.scenario:
        scenario_spec, code = _parse_scenario_arg(args.scenario)
        if code is not None:
            return code
    if args.train:
        model = pretrain_robust(args.model, image_size=16, seed=args.seed)
    else:
        model = build_model(args.model, "tiny")
        print("note: model is untrained (pass --train for meaningful "
              "accuracy); guard/fault mechanics are exercised either way")
    data = make_synth_cifar(args.frames, size=16, seed=args.seed + 12345)
    if scenario_spec is not None:
        from repro.scenarios import ScenarioStream, run_scenario_stream
        stream = ScenarioStream.from_dataset(data, scenario_spec,
                                             seed=args.seed)
        outcome = run_scenario_stream(
            model, args.method, stream, batch_size=args.batch_size,
            guard=args.guard, faults=args.faults, seed=args.seed,
            fps=args.fps)
        print(outcome.scorecard.describe())
        _print_scenario_outcome(outcome)
        if args.json:
            from repro.core.io import save_json
            save_json(_scenario_records(
                outcome, model=args.model, method=args.method,
                batch_size=args.batch_size, guarded=bool(args.guard)),
                args.json)
            print(f"wrote {args.json}")
        return 0
    stream = CorruptionStream.from_dataset(data, args.corruption,
                                           severity=args.severity,
                                           seed=args.seed)
    card = run_guarded_stream(model, args.method,
                              stream.batches(args.batch_size),
                              guard=args.guard, faults=args.faults,
                              seed=args.seed, fps=args.fps)
    print(card.describe())
    if args.json:
        from repro.core.io import save_json
        from repro.core.records import MeasurementRecord, StudyResult
        record = MeasurementRecord(
            model=args.model, method=args.method,
            batch_size=args.batch_size, device="host",
            error_pct=card.effective_error_pct,
            forward_time_s=card.wall_time_s / max(card.batches_total, 1),
            energy_j=float("nan"), corruption=args.corruption,
            faults_injected=card.faults_injected, rollbacks=card.rollbacks,
            degraded_batches=card.degraded_batches,
            fallback_frames=card.fallback_frames, guarded=bool(args.guard))
        save_json(StudyResult([record]), args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_native(args: argparse.Namespace) -> int:
    from repro.core.runner import run_native_study

    if args.scenario:
        _, code = _parse_scenario_arg(args.scenario)
        if code is not None:
            return code
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.backend == "sanitize" and args.workers:
        print("error: --backend sanitize requires serial execution "
              "(worker-local sanitizer findings cannot be surfaced); "
              "drop --workers", file=sys.stderr)
        return 2
    config = StudyConfig(
        models=tuple(args.models), methods=tuple(args.methods),
        batch_sizes=tuple(args.batch_sizes),
        corruptions=tuple(args.corruptions), severity=args.severity,
        stream_samples=args.samples, train_epochs=args.train_epochs,
        faults=args.faults or "", guard=args.guard,
        scenario=args.scenario or "",
        backend=args.backend or "numpy", threads=args.threads or 0,
        journal=args.journal or "", resume=args.resume,
        max_retries=args.max_retries, cell_timeout=args.cell_timeout,
        workers=args.workers, seed=args.seed)
    sanitizer = None
    if config.backend == "sanitize":
        # build the backend here so its findings survive the run and
        # can be printed (run_native_study leaves a passed backend open)
        from repro.analysis import SanitizerBackend
        sanitizer = SanitizerBackend()
    try:
        result = run_native_study(config, per_corruption=args.per_corruption,
                                  backend=sanitizer)
    finally:
        # surface findings and release the shared arena even when the
        # study dies mid-run — otherwise the fault that killed it is lost
        if sanitizer is not None:
            print()
            print(sanitizer.describe())
            sanitizer.close()
    print(result.to_table(title="Native study grid (measured):"))
    if args.json:
        from repro.core.io import save_json
        save_json(result, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.core.io import save_csv
        save_csv(result, args.csv)
        print(f"wrote {args.csv}")
    exit_code = 1 if sanitizer is not None and sanitizer.findings else 0
    broken = [r for r in result if r.status != "ok"]
    if broken:
        where = f"; journal: {args.journal}" if args.journal else ""
        print(f"\n{len(broken)} cell(s) did not complete "
              f"({', '.join(sorted({r.status for r in broken}))}){where}",
              file=sys.stderr)
        return 1
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.lockwatch import (LockInversionError, finish_watch,
                                          maybe_instrument)

    # REPRO_LOCKWATCH=1 runs the whole daemon under the runtime
    # lock-order watchdog; locks are instrumented at construction so the
    # manager/daemon must be built inside the context
    with maybe_instrument() as watch:
        from repro.serve import ServeDaemon, SessionManager

        if args.resume and not args.journal:
            print("error: --resume requires --journal", file=sys.stderr)
            return 2
        manager = SessionManager(
            journal=args.journal or None, resume=args.resume,
            backend=args.backend or "numpy", max_tenants=args.max_tenants,
            checkpoint_every=args.checkpoint_every,
            compact_above=args.compact_above, workers=args.workers)
        daemon = ServeDaemon(manager, args.host, args.port,
                             io_timeout=args.io_timeout,
                             idle_evict_s=args.idle_evict)
        host, port = daemon.address
        # flushed before blocking: test/CI wrappers parse this line to
        # learn the bound port (especially with --port 0)
        print(f"repro serve listening on {host}:{port}", flush=True)
        drained = False
        try:
            daemon.serve_forever()
            if daemon.drain_requested:
                summary = daemon.drain(args.drain_timeout)
                drained = True
                print(f"drained: {len(summary['checkpointed'])} tenant(s) "
                      f"checkpointed, {summary['compacted_entries']} journal "
                      "entries compacted away", flush=True)
        finally:
            # a drained shutdown leaves tenants open in the journal so a
            # later --resume re-admits them; anything else closes them out
            daemon.close(close_tenants=not drained)
    try:
        finish_watch(watch)
    except LockInversionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_client(args: argparse.Namespace) -> int:
    from repro.data.stream import CorruptionStream
    from repro.data.synthetic import make_synth_cifar
    from repro.robustness.faults import FaultInjector, parse_fault_specs
    from repro.serve import ServeClient, TenantSpec

    scenario_spec = None
    if args.scenario:
        scenario_spec, code = _parse_scenario_arg(args.scenario)
        if code is not None:
            return code
    arrival = None
    if args.load:
        from repro.serve.loadgen import parse_arrival_spec
        try:
            arrival = parse_arrival_spec(args.load)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.duration > 0 and arrival is None:
        print("error: --duration requires --load", file=sys.stderr)
        return 2
    spec = TenantSpec(
        tenant=args.tenant, model=args.model, method=args.method,
        batch_size=args.batch_size, guard=args.guard,
        queue_capacity=args.queue_capacity, train=args.train,
        seed=args.seed)
    data = make_synth_cifar(args.frames, size=spec.image_size,
                            seed=args.seed + 12345)
    if scenario_spec is not None:
        # scenario-shaped *traffic*: corruption switching happens at the
        # edge, client-side; the daemon adapts on whatever arrives.
        # Budgeted adapt-freezing is a session-side feature the wire
        # protocol does not carry — frames always adapt server-side.
        from repro.scenarios import ScenarioStream
        scenario_stream = ScenarioStream.from_dataset(
            data, scenario_spec, seed=args.seed)
        batch_iter = scenario_stream.batches(args.batch_size)
    else:
        stream = CorruptionStream.from_dataset(data, args.corruption,
                                               severity=args.severity,
                                               seed=args.seed)
        batch_iter = stream.batches(args.batch_size)
    if args.duration > 0:
        # soak mode: cycle the (bounded) synthesized stream until the
        # wall-clock budget runs out; copies keep each cycle pristine
        # when the fault injector mutates a batch downstream
        base_batches = [(images.copy(), labels.copy())
                        for images, labels in batch_iter]

        def _cycle(batches):
            while True:
                for images, labels in batches:
                    yield images.copy(), labels.copy()

        batch_iter = _cycle(base_batches)
    injector = None
    if args.faults:
        injector = FaultInjector(parse_fault_specs(args.faults),
                                 seed=args.seed)
        batch_iter = injector.inject(batch_iter)
    proxy = None
    host, port = args.host, args.port
    if args.chaos:
        from repro.serve import ChaosProxy, parse_network_fault_specs
        proxy = ChaosProxy(args.host, args.port,
                           parse_network_fault_specs(args.chaos),
                           seed=args.seed).start()
        host, port = proxy.address
        if args.retries == 0:
            print("warning: --chaos without --retries will likely fail "
                  "on the first injected fault", file=sys.stderr)
    try:
        with ServeClient.connect(host, port,
                                 timeout=args.connect_timeout,
                                 call_timeout=args.call_timeout,
                                 retries=args.retries,
                                 seed=args.seed) as client:
            welcome = client.hello(spec)
            print(f"tenant {args.tenant}: resumed={welcome['resumed']} "
                  f"batches_done={welcome['batches_done']}")
            # the injector must see every batch so a replay reproduces the
            # same fault schedule; --start-batch only skips the *sending*
            # (faults in skipped batches were reported by the previous run
            # and live in the resumed checkpoint)
            import time as time_module
            gaps = (arrival.gaps(args.batch_size, args.seed)
                    if arrival is not None else None)
            latencies_ms: List[float] = []
            frames_accepted = 0
            scheduled = 0.0
            paced_sends = 0
            reported = 0
            epoch = time_module.monotonic()
            for index, (images, labels) in enumerate(batch_iter):
                injected = injector.faults_injected if injector else 0
                delta, reported = injected - reported, injected
                if index < args.start_batch:
                    continue
                if gaps is None:
                    client.send_frames(images, labels, faults=delta)
                    continue
                if args.duration > 0 \
                        and time_module.monotonic() - epoch >= args.duration:
                    break
                if paced_sends > 0:
                    scheduled += next(gaps)
                delay = epoch + scheduled - time_module.monotonic()
                if delay > 0:
                    time_module.sleep(delay)
                started = time_module.monotonic()
                ack = client.send_frames(images, labels, faults=delta)
                latencies_ms.append(
                    (time_module.monotonic() - started) * 1e3)
                frames_accepted += int(ack["accepted"])
                paced_sends += 1
            if gaps is not None:
                from repro.serve.loadgen import latency_percentiles
                wall = max(time_module.monotonic() - epoch, 1e-9)
                pct = latency_percentiles(latencies_ms)
                print(f"load: {len(latencies_ms)} request(s) in "
                      f"{wall:.1f}s ({arrival.compact()}): "
                      f"p50 {pct['p50']:.1f}ms p95 {pct['p95']:.1f}ms "
                      f"p99 {pct['p99']:.1f}ms, "
                      f"{frames_accepted / wall:.1f} frames/s")
            if args.no_close:
                card = client.scorecard()
            else:
                card = client.close_tenant(restore=args.restore)
            print(card.describe())
            if args.shutdown:
                client.shutdown()
    finally:
        if proxy is not None:
            proxy.stop()
            injected = ", ".join(f"{e.fault}@{e.batch_index}"
                                 for e in proxy.events) or "none"
            print(f"chaos: {len(proxy.events)} network fault(s) injected "
                  f"({injected})")
    if args.expect_rollbacks and card.rollbacks < 1:
        print("error: expected guard rollbacks, saw none", file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (BaselineError, UsageError, apply_baseline,
                                check_paths, format_github, format_json,
                                format_rule_catalog, format_text,
                                load_baseline, write_baseline)

    if args.list_rules:
        print(format_rule_catalog())
        return 0
    try:
        findings = check_paths(args.paths or ["src"],
                               select=args.select, ignore=args.ignore)
        if args.update_baseline:
            if not args.baseline:
                print("error: --update-baseline requires --baseline PATH",
                      file=sys.stderr)
                return 2
            try:
                write_baseline(args.baseline, findings)
            except OSError as error:
                print(f"error: cannot write baseline {args.baseline}: "
                      f"{error}", file=sys.stderr)
                return 2
            print(f"wrote {args.baseline} ({len(findings)} finding(s) "
                  "absorbed)")
            return 0
        if args.baseline:
            findings = apply_baseline(findings,
                                      load_baseline(args.baseline))
    except (UsageError, BaselineError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reporter = {"json": format_json,
                "github": format_github}.get(args.format, format_text)
    print(reporter(findings))
    return 1 if findings else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.engine.bench import (DEFAULT_BENCH_PATH, compare_engine_bench,
                                    format_bench_comparison,
                                    format_engine_bench, write_engine_bench)
    backends = tuple(args.backends) if args.backends else BACKEND_NAMES
    doc = write_engine_bench(
        args.json or DEFAULT_BENCH_PATH, backends=backends,
        threads=args.threads or 0, batch=args.batch, repeats=args.repeats,
        sweep=not args.no_sweep, sweep_workers=args.workers,
        serving=args.serving, serving_tenants=args.serving_tenants,
        serving_frames=args.serving_frames)
    print(format_engine_bench(doc))
    print(f"wrote {args.json or DEFAULT_BENCH_PATH}")
    if args.compare:
        baseline = json_module.loads(Path(args.compare).read_text())
        comparison = compare_engine_bench(doc, baseline,
                                          tolerance_pct=args.tolerance)
        print(format_bench_comparison(comparison))
        if comparison["regressions"]:
            print(f"perf regression vs {args.compare}", file=sys.stderr)
            return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.engine.bench import (BENCH_FORMAT_VERSION,
                                    compare_engine_bench,
                                    format_bench_comparison,
                                    format_serving_section)
    from repro.serve.loadgen import run_serving_bench

    try:
        section = run_serving_bench(
            tenants=args.tenants, frames_per_tenant=args.frames,
            batch_size=args.batch_size, arrival=args.arrival,
            seed=args.seed, workers=args.workers, method=args.method,
            guard=args.guard)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_serving_section(section))
    if section["errors"]:
        for message in section["report"]["error_messages"]:
            print(f"error: {message}", file=sys.stderr)
        return 1
    # a serve-bench document is BENCH-shaped (format/version/serving) so
    # `bench --compare` and this gate read the same baselines
    doc = {"format": "repro.engine_bench", "version": BENCH_FORMAT_VERSION,
           "serving": section}
    if args.json:
        from repro.resilience.atomic import atomic_write_text
        atomic_write_text(args.json,
                          json_module.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.compare:
        baseline = json_module.loads(Path(args.compare).read_text())
        comparison = compare_engine_bench(doc, baseline,
                                          tolerance_pct=args.tolerance)
        print(format_bench_comparison(comparison))
        if comparison["regressions"]:
            print(f"perf regression vs {args.compare}", file=sys.stderr)
            return 1
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Benchmarking Test-Time Unsupervised "
                    "DNN Adaptation on Edge Devices' (ISPASS 2022)")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="execution backend for native engine work")
    parser.add_argument("--threads", type=_non_negative_int, default=None,
                        metavar="N",
                        help="worker threads for the threaded backend "
                             "(0 = one per CPU core)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="model zoo footprints").set_defaults(
        func=_cmd_models)
    sub.add_parser("devices", help="device catalog").set_defaults(
        func=_cmd_devices)

    study = sub.add_parser("study", help="run the simulated study grid")
    study.add_argument("--device", choices=DEVICE_NAMES, default=None,
                       help="restrict to one device")
    study.add_argument("--json", metavar="PATH", help="write grid as JSON")
    study.add_argument("--csv", metavar="PATH", help="write grid as CSV")
    study.add_argument("--verbose", action="store_true",
                       help="print reports even when writing files")
    study.set_defaults(func=_cmd_study)

    sub.add_parser("figures", help="regenerate all figures/tables as text"
                   ).set_defaults(func=_cmd_figures)
    sub.add_parser("anchors", help="calibration residuals vs the paper"
                   ).set_defaults(func=_cmd_anchors)
    sub.add_parser("insights", help="re-derive the Section IV-G insights"
                   ).set_defaults(func=_cmd_insights)
    sub.add_parser("scorecard", help="audit every machine-checkable claim"
                   ).set_defaults(func=_cmd_scorecard)

    scatter = sub.add_parser("scatter", help="ASCII trade-off scatter")
    scatter.add_argument("--device", choices=DEVICE_NAMES, default=None)
    scatter.set_defaults(func=_cmd_scatter)

    stream = sub.add_parser(
        "stream", help="native corrupted stream with faults and guard")
    from repro.adapt import EXTENSION_METHOD_NAMES, METHOD_NAMES
    from repro.data.corruptions import CORRUPTION_NAMES
    from repro.models.registry import MODEL_NAMES
    stream.add_argument("--model", choices=MODEL_NAMES, default="wrn40_2")
    stream.add_argument("--method",
                        choices=METHOD_NAMES + EXTENSION_METHOD_NAMES,
                        default="bn_opt")
    stream.add_argument("--corruption",
                        choices=tuple(CORRUPTION_NAMES) + ("clean",),
                        default="gaussian_noise")
    stream.add_argument("--severity", type=int, choices=range(1, 6),
                        default=5)
    stream.add_argument("--frames", type=_positive_int, default=128,
                        help="total frames in the stream")
    stream.add_argument("--batch-size", type=_positive_int, default=16)
    stream.add_argument("--faults", metavar="SPEC", default=None,
                        help='fault injection, e.g. "nan:0.2,constant@3" '
                             "(fault[:rate|@idx[+idx...]], comma-separated)")
    stream.add_argument("--scenario", metavar="SPEC", default=None,
                        help="scenario-scheduled stream, e.g. "
                             '"markov:p=0.1@3" or "cyclic:dwell=4" '
                             "(kind[:k=v[+k=v...]][@severity]; overrides "
                             "--corruption/--severity; prints per-segment "
                             "metrics + forgetting)")
    stream.add_argument("--guard", action="store_true",
                        help="wrap the method in GuardedAdaptation "
                             "(BN rollback + degradation ladder)")
    stream.add_argument("--fps", type=float, default=None,
                        help="arrival rate for deadline accounting")
    stream.add_argument("--train", action="store_true",
                        help="robustly pre-train the tiny model first "
                             "(cached; slower on the first run)")
    stream.add_argument("--seed", type=_non_negative_int, default=0)
    stream.add_argument("--json", metavar="PATH", default=None,
                        help="write the run as a study-result JSON record")
    stream.set_defaults(func=_cmd_stream)

    native = sub.add_parser(
        "native",
        help="crash-safe native adaptation grid (journal/resume/retries)")
    from repro.core.config import (PAPER_BATCH_SIZES, STUDY_METHODS,
                                   STUDY_MODELS)
    native.add_argument("--models", nargs="*", choices=MODEL_NAMES,
                        default=["wrn40_2"],
                        help=f"grid models (paper grid: {STUDY_MODELS})")
    native.add_argument("--methods", nargs="*",
                        choices=METHOD_NAMES + EXTENSION_METHOD_NAMES,
                        default=list(STUDY_METHODS))
    native.add_argument("--batch-sizes", nargs="*", type=_positive_int,
                        default=[50],
                        help=f"paper grid: {PAPER_BATCH_SIZES}")
    native.add_argument("--corruptions", nargs="*",
                        choices=tuple(CORRUPTION_NAMES) + ("clean",),
                        default=["gaussian_noise", "fog"],
                        help="corruption streams per cell "
                             "(default: a fast two-stream subset)")
    native.add_argument("--severity", type=int, choices=range(1, 6),
                        default=5)
    native.add_argument("--samples", type=_positive_int, default=200,
                        help="stream samples per corruption")
    native.add_argument("--train-epochs", type=_positive_int, default=10,
                        help="pre-training epochs (models are cached)")
    native.add_argument("--per-corruption", action="store_true",
                        help="emit one extra record per corruption type")
    native.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault-injection spec (see 'stream')")
    native.add_argument("--scenario", metavar="SPEC", default=None,
                        help="run each cell over one scenario stream "
                             "instead of the corruption grid (see "
                             "'stream'; with --per-corruption, records "
                             "are emitted per shift segment)")
    native.add_argument("--guard", action="store_true",
                        help="wrap methods in GuardedAdaptation")
    native.add_argument("--journal", metavar="PATH", default=None,
                        help="append every cell outcome to this JSONL "
                             "run journal (crash-safe, fsync'd)")
    native.add_argument("--resume", action="store_true",
                        help="skip cells the journal already records as "
                             "ok (requires --journal)")
    native.add_argument("--workers", type=_non_negative_int, default=0,
                        metavar="N",
                        help="worker processes for the grid (0 = serial; "
                             "see repro.parallel)")
    native.add_argument("--max-retries", type=_non_negative_int, default=0,
                        help="extra attempts per failing cell")
    native.add_argument("--cell-timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="soft per-cell watchdog deadline (0 = none)")
    native.add_argument("--seed", type=_non_negative_int, default=0)
    native.add_argument("--json", metavar="PATH", default=None,
                        help="write the grid as study-result JSON")
    native.add_argument("--csv", metavar="PATH", default=None,
                        help="write the grid as CSV")
    native.set_defaults(func=_cmd_native)

    serve = sub.add_parser(
        "serve",
        help="multi-tenant adaptation daemon (journal/resume)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_non_negative_int, default=0,
                       help="TCP port (0 = OS-assigned; the bound port "
                            "is printed on startup)")
    serve.add_argument("--journal", metavar="PATH", default=None,
                       help="checkpoint every tenant batch to this JSONL "
                            "run journal (crash-safe, fsync'd)")
    serve.add_argument("--resume", action="store_true",
                       help="restore open tenants from the journal "
                            "(requires --journal)")
    serve.add_argument("--max-tenants", type=_positive_int, default=8,
                       help="admission limit on concurrent tenants")
    serve.add_argument("--checkpoint-every", type=_positive_int, default=1,
                       metavar="N",
                       help="journal a tenant checkpoint every N batches")
    serve.add_argument("--io-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-connection read/write deadline; a "
                            "stalled (slow-loris) client is evicted "
                            "after this long (0 disables)")
    serve.add_argument("--idle-evict", type=float, default=0.0,
                       metavar="SECONDS",
                       help="checkpoint-and-evict tenants idle longer "
                            "than this (0 disables)")
    serve.add_argument("--compact-above", type=_non_negative_int, default=0,
                       metavar="BYTES",
                       help="compact the journal online whenever it "
                            "grows past this size (0 disables)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="budget for finishing in-flight batches and "
                            "checkpointing every tenant on a drained "
                            "shutdown")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="cross-tenant batch-scheduler worker threads "
                            "(batches from different tenants adapt "
                            "concurrently; per-tenant order is preserved)")
    serve.set_defaults(func=_cmd_serve)

    serve_client = sub.add_parser(
        "serve-client",
        help="stream one tenant's frames into a running daemon")
    serve_client.add_argument("--host", default="127.0.0.1")
    serve_client.add_argument("--port", type=_positive_int, required=True)
    serve_client.add_argument("--tenant", required=True,
                              help="tenant name (one stream per tenant)")
    serve_client.add_argument("--model", choices=MODEL_NAMES,
                              default="wrn40_2")
    serve_client.add_argument("--method",
                              choices=METHOD_NAMES + EXTENSION_METHOD_NAMES,
                              default="bn_opt")
    serve_client.add_argument("--batch-size", type=_positive_int, default=16)
    serve_client.add_argument("--no-guard", dest="guard",
                              action="store_false",
                              help="run the tenant unguarded (guarded "
                                   "adaptation is the default)")
    serve_client.add_argument("--queue-capacity", type=_non_negative_int,
                              default=2,
                              help="batches of backlog before drops")
    serve_client.add_argument("--train", action="store_true",
                              help="tenant model is robustly pre-trained "
                                   "(cached) instead of seed-initialized")
    serve_client.add_argument("--frames", type=_positive_int, default=128,
                              help="total frames to stream")
    serve_client.add_argument("--corruption",
                              choices=tuple(CORRUPTION_NAMES) + ("clean",),
                              default="gaussian_noise")
    serve_client.add_argument("--severity", type=int, choices=range(1, 6),
                              default=5)
    serve_client.add_argument("--faults", metavar="SPEC", default=None,
                              help="client-side fault injection "
                                   "(see 'stream')")
    serve_client.add_argument("--scenario", metavar="SPEC", default=None,
                              help="stream scenario-shaped traffic (see "
                                   "'stream'); corruption switching "
                                   "happens client-side, the daemon "
                                   "adapts on what arrives")
    serve_client.add_argument("--start-batch", type=_non_negative_int,
                              default=0, metavar="N",
                              help="skip sending the first N batches "
                                   "(replay after a daemon resume)")
    serve_client.add_argument("--no-close", action="store_true",
                              help="leave the tenant open (print a live "
                                   "scorecard instead of closing)")
    serve_client.add_argument("--restore", action="store_true",
                              help="restore the tenant model to its "
                                   "source state on close")
    serve_client.add_argument("--expect-rollbacks", action="store_true",
                              help="exit 1 unless the daemon reported "
                                   "guard rollbacks (CI smoke assertion)")
    serve_client.add_argument("--shutdown", action="store_true",
                              help="stop the daemon after this stream")
    serve_client.add_argument("--connect-timeout", type=float, default=30.0,
                              metavar="SECONDS",
                              help="retry window for the initial connect")
    serve_client.add_argument("--call-timeout", type=float, default=30.0,
                              metavar="SECONDS",
                              help="per-call reply deadline (typed "
                                   "timeout error instead of a hang)")
    serve_client.add_argument("--retries", type=_non_negative_int,
                              default=0,
                              help="bounded seeded-backoff retries for "
                                   "transient failures (timeouts, "
                                   "severed connections); re-sends are "
                                   "deduplicated daemon-side")
    serve_client.add_argument("--chaos", metavar="SPEC", default=None,
                              help="route the stream through an "
                                   "in-process seeded chaos proxy, e.g. "
                                   "'disconnect:0.1,truncate@5' (faults: "
                                   "disconnect, delay, truncate, split, "
                                   "garbage); pair with --retries")
    serve_client.add_argument("--load", metavar="SPEC", default=None,
                              help="pace sends open-loop on an arrival "
                                   "spec, e.g. 'poisson:rate=64' or "
                                   "'burst:rate=128+size=4' (kinds: "
                                   "uniform, poisson, burst; rate is "
                                   "frames/s), and print p50/p95/p99 "
                                   "latency + throughput at the end")
    serve_client.add_argument("--duration", type=float, default=0.0,
                              metavar="SECONDS",
                              help="with --load: keep streaming (cycling "
                                   "the frame set) for this long instead "
                                   "of stopping after --frames")
    serve_client.add_argument("--seed", type=_non_negative_int, default=0)
    serve_client.set_defaults(func=_cmd_serve_client)

    check = sub.add_parser(
        "check", help="project-aware invariant linter (REP001-REP012)")
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="files or directory trees to check "
                            "(default: src)")
    check.add_argument("--select", metavar="CODES", default=None,
                       help="run only these comma-separated rule codes "
                            "(e.g. REP001,REP003)")
    check.add_argument("--ignore", metavar="CODES", default=None,
                       help="skip these comma-separated rule codes")
    check.add_argument("--format", choices=("text", "json", "github"),
                       default="text",
                       help="report format (github = Actions workflow-"
                            "command annotations)")
    check.add_argument("--baseline", metavar="PATH", default=None,
                       help="baseline JSON absorbing legacy findings "
                            "(the repo commits .repro-check-baseline.json)")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite --baseline to absorb every current "
                            "finding, then exit 0")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalog and exit")
    check.set_defaults(func=_cmd_check)

    bench = sub.add_parser("bench",
                           help="time engine leaf kernels per backend")
    bench.add_argument("--backends", nargs="*", choices=BACKEND_NAMES,
                       default=None,
                       help="backends to measure (default: all)")
    bench.add_argument("--batch", type=_positive_int, default=64,
                       help="batch size for the conv workload")
    bench.add_argument("--repeats", type=_positive_int, default=5,
                       help="timing repetitions (best is reported)")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="output path (default BENCH_engine.json)")
    bench.add_argument("--workers", type=_non_negative_int, default=0,
                       metavar="N",
                       help="worker processes for the sweep-throughput "
                            "section (0 = one per CPU core)")
    bench.add_argument("--no-sweep", action="store_true",
                       help="skip the native sweep-throughput section "
                            "(kernel timings only)")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="compare against a baseline BENCH_engine.json "
                            "and exit non-zero on perf regression")
    bench.add_argument("--tolerance", type=float, default=25.0,
                       metavar="PCT",
                       help="allowed slowdown before --compare fails "
                            "(percent, default 25)")
    bench.add_argument("--serving", action="store_true",
                       help="also measure serve-path latency/throughput "
                            "(in-process daemon + seeded multi-tenant "
                            "load) into a 'serving' section")
    bench.add_argument("--serving-tenants", type=_positive_int, default=2,
                       metavar="N",
                       help="tenants for the --serving measurement")
    bench.add_argument("--serving-frames", type=_positive_int, default=96,
                       metavar="N",
                       help="frames per tenant for --serving")
    bench.set_defaults(func=_cmd_bench)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="serve-path latency/throughput bench (in-process daemon + "
             "seeded open-loop multi-tenant load)")
    serve_bench.add_argument("--tenants", type=_positive_int, default=2,
                             help="concurrent tenant streams")
    serve_bench.add_argument("--frames", type=_positive_int, default=96,
                             help="frames per tenant")
    serve_bench.add_argument("--batch-size", type=_positive_int,
                             default=16)
    serve_bench.add_argument("--arrival", metavar="SPEC",
                             default="poisson:rate=256",
                             help="arrival spec (see serve-client --load)")
    serve_bench.add_argument("--workers", type=_positive_int, default=2,
                             help="batch-scheduler worker threads")
    serve_bench.add_argument("--method",
                             choices=METHOD_NAMES + EXTENSION_METHOD_NAMES,
                             default="bn_opt")
    serve_bench.add_argument("--no-guard", dest="guard",
                             action="store_false",
                             help="run tenants unguarded")
    serve_bench.add_argument("--seed", type=_non_negative_int, default=0)
    serve_bench.add_argument("--json", metavar="PATH", default=None,
                             help="write a BENCH-shaped document with the "
                                  "'serving' section to this path")
    serve_bench.add_argument("--compare", metavar="BASELINE", default=None,
                             help="gate serving latency/throughput "
                                  "against a baseline BENCH_engine.json")
    serve_bench.add_argument("--tolerance", type=float, default=25.0,
                             metavar="PCT",
                             help="allowed regression before --compare "
                                  "fails (percent, default 25)")
    serve_bench.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_default_backend(create_backend(args.backend,
                                           threads=args.threads or 0))
    try:
        return args.func(args)
    finally:
        if args.backend is not None:
            set_default_backend(None)


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
