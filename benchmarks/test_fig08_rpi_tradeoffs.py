"""Fig. 8 — Raspberry Pi performance-energy-accuracy trade-offs.

Paper claims verified (Section IV-C): (i) equal weights -> WRN-AM-50 +
BN-Norm (2.59 s, 5.95 J, 15.21 %); (ii) accuracy priority -> WRN-AM-50 +
BN-Opt (7.97 s, 19.12 J, 12.37 %) with ~3.07x the forward time and
~3.21x the energy of (i); (iii) performance priority -> WRN-AM-50 +
BN-Norm *under per-metric normalization* (the paper's reasoning — "due to
the 0.1 weight assigned to accuracy" — implies normalized metrics; with
raw units No-Adapt wins, see EXPERIMENTS.md); (iv) energy priority ->
WRN-AM-50 + No-Adapt.
"""

import pytest

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.report import render_tradeoffs


def _selections(study):
    subset = study.filter(device="rpi4")
    return {
        "equal": select_best(subset, WEIGHT_CASES["equal"], "raw"),
        "accuracy": select_best(subset, WEIGHT_CASES["accuracy"], "raw"),
        "performance_minmax": select_best(subset, WEIGHT_CASES["performance"],
                                          "minmax"),
        "performance_raw": select_best(subset, WEIGHT_CASES["performance"],
                                       "raw"),
        "energy": select_best(subset, WEIGHT_CASES["energy"], "raw"),
    }


def test_fig8_rpi_tradeoffs(benchmark, robust_grid_study):
    best = benchmark(_selections, robust_grid_study)
    print("\n" + render_tradeoffs(robust_grid_study, "rpi4",
                                  title="Fig. 8: Raspberry Pi trade-offs"))

    equal = best["equal"]
    assert equal.label == "WRN-AM-50 + BN-Norm @ rpi4"
    assert equal.forward_time_s == pytest.approx(2.59, rel=0.05)
    assert equal.energy_j == pytest.approx(5.95, rel=0.05)

    accuracy = best["accuracy"]
    assert accuracy.label == "WRN-AM-50 + BN-Opt @ rpi4"
    # "3.07x higher forward time and 3.21x more energy than (i)"
    assert accuracy.forward_time_s / equal.forward_time_s == \
        pytest.approx(3.07, rel=0.05)
    assert accuracy.energy_j / equal.energy_j == pytest.approx(3.21, rel=0.05)

    # the paper's (iii): BN-Norm "again selected" for performance priority
    assert best["performance_minmax"].label == "WRN-AM-50 + BN-Norm @ rpi4"
    # ... which under raw units would instead be No-Adapt (documented)
    assert best["performance_raw"].method == "no_adapt"

    assert best["energy"].label == "WRN-AM-50 + No-Adapt @ rpi4"
    assert best["energy"].energy_j == pytest.approx(5.04, rel=0.05)
