"""Table I — MobileNet-V2 forward times on the Xavier NX GPU, plus the
Section IV-F accuracy statements.

Paper claims verified: MobileNet wins No-Adapt inference against all
three robust models but pays ~2.1x the BN-adaptation overhead of
WRN/R18 (34112 BN parameters) while beating ResNeXt by ~2.7x; and its
robust-training gap (81.2 % -> 28.1 % error with BN-Opt, still far above
the robust models' 10-13 %).
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.reference import (
    MOBILENET_BN_OPT_200_ERROR_PCT,
    MOBILENET_NO_ADAPT_ERROR_PCT,
    reference_error_pct,
)
from repro.core.report import render_mobilenet_table
from repro.core.runner import run_simulated_study

#: Table I of the paper (seconds): batch -> (bn_opt, bn_norm, no_adapt)
PAPER_TABLE1 = {
    50: (1.63, 0.58, 0.07),
    100: (3.7, 1.18, 0.13),
    200: (8.28, 2.95, 0.25),
}


def _gpu_grid():
    return run_simulated_study(StudyConfig(
        models=("mobilenet_v2", "wrn40_2", "resnet18", "resnext29"),
        devices=("xavier_nx_gpu",)))


def test_table1_mobilenet(benchmark):
    result = benchmark(_gpu_grid)
    print("\n" + render_mobilenet_table(result))

    # per-cell comparison (linear cost model underestimates the largest
    # BN-Opt batches; tolerances mirror the calibration anchor table)
    tolerances = {("no_adapt", 50): 0.15, ("no_adapt", 100): 0.15,
                  ("no_adapt", 200): 0.15, ("bn_norm", 50): 0.10,
                  ("bn_norm", 100): 0.10, ("bn_norm", 200): 0.30,
                  ("bn_opt", 50): 0.25, ("bn_opt", 100): 0.30,
                  ("bn_opt", 200): 0.40}
    for batch, (opt, norm, na) in PAPER_TABLE1.items():
        for method, paper_value in (("bn_opt", opt), ("bn_norm", norm),
                                    ("no_adapt", na)):
            ours = result.one("mobilenet_v2", method, batch,
                              "xavier_nx_gpu").forward_time_s
            assert ours == pytest.approx(paper_value,
                                         rel=tolerances[(method, batch)]), \
                (method, batch)

    # MobileNet fastest at pure inference ...
    for batch in (50, 100, 200):
        na_times = {m: result.one(m, "no_adapt", batch,
                                  "xavier_nx_gpu").forward_time_s
                    for m in ("mobilenet_v2", "wrn40_2", "resnet18",
                              "resnext29")}
        assert na_times["mobilenet_v2"] == min(na_times.values())

    # ... but pays ~2.1x the adaptation overhead of WRN/R18 and is ~2.7x
    # cheaper than ResNeXt for the adaptation algorithms
    ratios_small, ratios_rxt = [], []
    for method in ("bn_norm", "bn_opt"):
        for batch in (50, 100):
            mnv2 = result.one("mobilenet_v2", method, batch,
                              "xavier_nx_gpu").forward_time_s
            wrn = result.one("wrn40_2", method, batch,
                             "xavier_nx_gpu").forward_time_s
            r18 = result.one("resnet18", method, batch,
                             "xavier_nx_gpu").forward_time_s
            rxt = result.one("resnext29", method, batch,
                             "xavier_nx_gpu").forward_time_s
            ratios_small.append(mnv2 / ((wrn + r18) / 2))
            ratios_rxt.append(rxt / mnv2)
    assert sum(ratios_small) / len(ratios_small) == pytest.approx(2.1, rel=0.35)
    assert sum(ratios_rxt) / len(ratios_rxt) == pytest.approx(2.7, rel=0.35)


def test_table1_accuracy_statements(benchmark):
    def check():
        return (reference_error_pct("mobilenet_v2", "no_adapt", 100),
                reference_error_pct("mobilenet_v2", "bn_opt", 200))

    no_adapt, bn_opt = benchmark(check)
    assert no_adapt == MOBILENET_NO_ADAPT_ERROR_PCT == 81.2
    assert bn_opt == MOBILENET_BN_OPT_200_ERROR_PCT == 28.1
    # "still high compared to the three robust models (10.15-12.97%)"
    robust_best = reference_error_pct("resnext29", "bn_opt", 200)
    assert bn_opt > 2 * robust_best
