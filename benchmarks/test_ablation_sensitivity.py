"""Ablation — ranking hardware levers by elasticity (insight v).

The paper's hardware wishlist ("additional MACs and routing fabric would
make back propagation less costly, and low power memories ... would
enable larger batch sizes") names candidate levers without ranking them.
This bench computes the *elasticity* of the BN-Opt and BN-Norm operating
points to every device constant and ranks the levers — the quantitative
version of Section IV-G(v).
"""


from repro.devices import device_info
from repro.devices.whatif import (
    energy_metric,
    format_sensitivities,
    latency_metric,
    sensitivities,
)


def test_ablation_bnopt_latency_levers(benchmark, summaries):
    def run():
        device = device_info("ultra96")
        metric = latency_metric(summaries["wrn40_2"], 50,
                                adapts_bn_stats=True, does_backward=True)
        return sensitivities(device, metric)

    ranked = benchmark(run)
    print("\n" + format_sensitivities(
        ranked, title="Ablation: BN-Opt latency levers on Ultra96-v2"))

    by_name = {s.field_name: s.elasticity for s in ranked}
    # conv throughput is the single biggest lever (forward AND backward
    # scale with it) — the paper's "additional MACs" wish, ranked first
    assert ranked[0].field_name == "dense_gmacs_per_s"
    assert by_name["dense_gmacs_per_s"] < -0.7
    # the backward ratio is the next structural lever
    assert abs(by_name["conv_bw_factor"]) > abs(by_name["bn_bw_factor"])
    # power knobs do not move latency at all
    assert by_name["power_forward_w"] == 0.0


def test_ablation_bnnorm_latency_levers_on_gpu(benchmark, summaries):
    def run():
        device = device_info("xavier_nx_gpu")
        metric = latency_metric(summaries["wrn40_2"], 50,
                                adapts_bn_stats=True, does_backward=False)
        return sensitivities(device, metric)

    ranked = benchmark(run)
    print("\n" + format_sensitivities(
        ranked, title="Ablation: BN-Norm latency levers on NX GPU"))

    # On the GPU at the A3 point, the statistics-recompute constant is
    # the dominant lever — a "BN statistics engine" beats more MACs,
    # which is exactly the custom-accelerator direction insight iii
    # proposes.
    assert ranked[0].field_name == "bn_adapt_s_per_elem"
    by_name = {s.field_name: s.elasticity for s in ranked}
    assert by_name["bn_adapt_s_per_elem"] > abs(by_name["dense_gmacs_per_s"])


def test_ablation_energy_levers(benchmark, summaries):
    def run():
        device = device_info("rpi4")
        metric = energy_metric(summaries["wrn40_2"], 50,
                               adapts_bn_stats=True, does_backward=True)
        return sensitivities(device, metric)

    ranked = benchmark(run)
    print("\n" + format_sensitivities(
        ranked, title="Ablation: BN-Opt energy levers on RPi"))
    by_name = {s.field_name: s.elasticity for s in ranked}
    # energy responds to both time levers and power levers; the backward
    # power dominates the power side for BN-Opt (backward is ~2/3 of time)
    assert by_name["power_backward_w"] > by_name["power_forward_w"] > 0
    assert by_name["dense_gmacs_per_s"] < 0
