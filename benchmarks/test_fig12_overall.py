"""Fig. 12 — overall results: all devices pooled, the A1/A2/A3 points.

Paper claims verified (Section IV-E): A1 (lowest runtime at the best
10.15 % error) is RXT-AM-200 + BN-Opt on the NX CPU (~69.58 s, because
the GPU OOMs at batch 200); A2 (lowest energy at that error) is the same
configuration on the Raspberry Pi (~337 J); A3 (equal weights over every
point) is WRN-AM-50 + BN-Norm on the NX GPU, ~220x faster and ~114x more
energy-efficient than A1/A2 at +5.06 points of error; and A3's
adaptation overhead is ~213 ms and ~1.9 J.
"""

import pytest

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.report import render_overall


def _overall_points(study):
    feasible = study.feasible()
    best_error = min(r.error_pct for r in feasible.records)
    champions = [r for r in feasible.records if r.error_pct == best_error]
    a1 = min(champions, key=lambda r: r.forward_time_s)
    a2 = min(champions, key=lambda r: r.energy_j)
    a3 = select_best(study, WEIGHT_CASES["equal"], "raw")
    return a1, a2, a3


def test_fig12_overall(benchmark, robust_grid_study):
    a1, a2, a3 = benchmark(_overall_points, robust_grid_study)
    print("\n" + render_overall(robust_grid_study))

    assert a1.label == "RXT-AM-200 + BN-Opt @ xavier_nx_cpu"
    assert a1.forward_time_s == pytest.approx(69.58, rel=0.05)
    assert a1.error_pct == 10.15

    assert a2.label == "RXT-AM-200 + BN-Opt @ rpi4"
    assert a2.energy_j == pytest.approx(337.43, rel=0.15)

    assert a3.label == "WRN-AM-50 + BN-Norm @ xavier_nx_gpu"
    assert a3.error_pct == 15.21

    # the headline ratios
    assert a1.forward_time_s / a3.forward_time_s == pytest.approx(220, rel=0.10)
    assert a2.energy_j / a3.energy_j == pytest.approx(114, rel=0.20)

    # A3's own adaptation overhead: 213 ms and ~1.9 J over No-Adapt
    no_adapt = robust_grid_study.one("wrn40_2", "no_adapt", 50,
                                     "xavier_nx_gpu")
    assert a3.forward_time_s - no_adapt.forward_time_s == \
        pytest.approx(0.213, rel=0.05)
    assert a3.energy_j - no_adapt.energy_j == pytest.approx(1.9, rel=0.10)

    # BN-Norm vs BN-Opt on the GPU: "61.6% lower latency and 62.8% lower
    # energy for the same network"
    gpu_opt = robust_grid_study.one("wrn40_2", "bn_opt", 50, "xavier_nx_gpu")
    latency_reduction = 100 * (gpu_opt.forward_time_s - a3.forward_time_s) \
        / gpu_opt.forward_time_s
    energy_reduction = 100 * (gpu_opt.energy_j - a3.energy_j) / gpu_opt.energy_j
    assert latency_reduction == pytest.approx(61.6, abs=3.0)
    assert energy_reduction == pytest.approx(62.8, abs=5.0)
