"""Fig. 9 — Xavier NX forward times, CPU vs GPU.

Paper claims verified: WRN-AM-50 GPU anchors (0.10 / 0.315 / 0.82 s);
RXT-AM-200 + BN-Opt OOMs on the GPU (cuDNN library overhead) but runs on
the CPU; mean GPU speedups of ~90.5 % (No-Adapt), ~68 % (BN-Norm), and
~79 % (BN-Opt).
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.report import render_forward_times
from repro.core.runner import run_simulated_study


def _nx_grids():
    cpu = run_simulated_study(StudyConfig(devices=("xavier_nx_cpu",)))
    gpu = run_simulated_study(StudyConfig(devices=("xavier_nx_gpu",)))
    return cpu, gpu


def test_fig9_nx_forward_times(benchmark):
    cpu, gpu = benchmark(_nx_grids)
    print("\n" + render_forward_times(cpu, "xavier_nx_cpu",
                                      title="Fig. 9a: Xavier NX CPU forward times"))
    print("\n" + render_forward_times(gpu, "xavier_nx_gpu",
                                      title="Fig. 9b: Xavier NX GPU forward times"))

    wrn50 = {m: gpu.one("wrn40_2", m, 50, "xavier_nx_gpu").forward_time_s
             for m in ("no_adapt", "bn_norm", "bn_opt")}
    assert wrn50["no_adapt"] == pytest.approx(0.10, rel=0.12)
    assert wrn50["bn_norm"] == pytest.approx(0.315, rel=0.05)
    assert wrn50["bn_opt"] == pytest.approx(0.82, rel=0.05)

    # GPU OOM for RXT-200 + BN-Opt only; CPU runs everything
    assert {r.label for r in gpu if r.oom} == \
        {"RXT-AM-200 + BN-Opt @ xavier_nx_gpu"}
    assert not any(r.oom for r in cpu)

    # mean GPU speedups per algorithm (Section IV-D)
    expectations = {"no_adapt": (90.5, 3.0), "bn_norm": (68.13, 12.0),
                    "bn_opt": (79.21, 6.0)}
    for method, (paper_value, tolerance) in expectations.items():
        speedups = []
        for r_cpu in cpu.filter(method=method).records:
            r_gpu_set = gpu.filter(model=r_cpu.model, method=method,
                                   batch_size=r_cpu.batch_size).feasible()
            if len(r_gpu_set) != 1:
                continue   # the GPU-OOM case
            r_gpu = r_gpu_set.records[0]
            speedups.append(100 * (r_cpu.forward_time_s - r_gpu.forward_time_s)
                            / r_cpu.forward_time_s)
        mean = sum(speedups) / len(speedups)
        assert mean == pytest.approx(paper_value, abs=tolerance), method
