"""Ablation — sensitivity of the weighted objective to normalization.

The paper writes its objective over raw units but one of its selections
(RPi, performance priority) is only consistent with normalized metrics
(see DESIGN.md).  This bench quantifies how often the three schemes agree
across all (device, weight-case) combinations — showing the selection
methodology itself is a meaningful experimental knob.
"""


from repro.core.objectives import NORMALIZATION_SCHEMES, WEIGHT_CASES, select_best


def _agreement(study):
    agreements = {}
    disagreements = []
    for device in ("ultra96", "rpi4", "xavier_nx_cpu", "xavier_nx_gpu"):
        subset = study.filter(device=device)
        for case_name, case in WEIGHT_CASES.items():
            picks = {scheme: select_best(subset, case, scheme).label
                     for scheme in NORMALIZATION_SCHEMES}
            unique = set(picks.values())
            agreements[(device, case_name)] = len(unique) == 1
            if len(unique) > 1:
                disagreements.append((device, case_name, picks))
    return agreements, disagreements


def test_ablation_objective_scheme_sensitivity(benchmark, robust_grid_study):
    agreements, disagreements = benchmark(_agreement, robust_grid_study)
    print("\nAblation: normalization-scheme agreement per (device, case)")
    for (device, case_name), agreed in agreements.items():
        print(f"  {device:14s} {case_name:12s} "
              f"{'all schemes agree' if agreed else 'SCHEME-DEPENDENT'}")
    for device, case_name, picks in disagreements:
        print(f"    {device}/{case_name}: {picks}")

    # the RPi performance-priority selection is scheme-dependent — the
    # ambiguity the paper's Section IV-C reasoning hides
    assert not agreements[("rpi4", "performance")]

    # under raw units (the paper's formula as written), WRN-AM wins every
    # selection on every device — the paper's central co-design conclusion
    for device in ("ultra96", "rpi4", "xavier_nx_gpu"):
        subset = robust_grid_study.filter(device=device)
        for case in WEIGHT_CASES.values():
            assert select_best(subset, case, "raw").model == "wrn40_2"

    # normalization moves the accuracy-priority pick toward ResNeXt: once
    # time/energy are rescaled to [0, 1], the absolute cost of RXT's
    # adaptation stops masking its accuracy lead
    rpi_minmax = select_best(robust_grid_study.filter(device="rpi4"),
                             WEIGHT_CASES["accuracy"], "minmax")
    assert rpi_minmax.model == "resnext29"

    # headline finding of this ablation: three-way scheme agreement is
    # rare — the weighted-objective *methodology* (not just the weights)
    # determines the selected configuration, which the paper never states
    agreement_rate = sum(agreements.values()) / len(agreements)
    print(f"  three-way scheme agreement rate: {agreement_rate:.0%}")
    assert agreement_rate < 0.5
