"""Ablation — batch-size scaling (insight: "bigger batch sizes ... may
not be reasonable for memory-constrained devices").

Sweeps adaptation batch size well beyond the paper's 50/100/200 grid and
locates, per device, the largest feasible BN-Opt batch for each model —
quantifying the diminishing-returns-vs-cost trade the paper describes.
"""


from repro.devices import device_info, estimate_memory, forward_latency

BATCHES = (25, 50, 100, 200, 400, 800)


def _sweep(summaries):
    rows = {}
    for device_name in ("ultra96", "rpi4", "xavier_nx_gpu"):
        device = device_info(device_name)
        for model in ("wrn40_2", "resnext29"):
            summary = summaries[model]
            feasible = []
            for batch in BATCHES:
                memory = estimate_memory(summary, batch, device,
                                         does_backward=True)
                if memory.fits:
                    latency = forward_latency(summary, batch, device,
                                              adapts_bn_stats=True,
                                              does_backward=True)
                    feasible.append((batch, latency.forward_time_s,
                                     memory.total_gb))
            rows[(device_name, model)] = feasible
    return rows


def test_ablation_batch_size_scaling(benchmark, summaries):
    rows = benchmark(_sweep, summaries)
    print("\nAblation: largest feasible BN-Opt batch per device")
    for (device, model), feasible in rows.items():
        largest = feasible[-1][0] if feasible else 0
        print(f"  {device:14s} {model:10s} max batch {largest:4d} "
              f"({len(feasible)}/{len(BATCHES)} feasible)")

    # memory ceilings order as expected: FPGA < GPU (shared w/ cuDNN) < Pi
    wrn_ceiling = {d: rows[(d, "wrn40_2")][-1][0]
                   for d in ("ultra96", "rpi4", "xavier_nx_gpu")}
    assert wrn_ceiling["ultra96"] < wrn_ceiling["rpi4"]
    rxt_ceiling = {d: (rows[(d, "resnext29")][-1][0]
                       if rows[(d, "resnext29")] else 0)
                   for d in ("ultra96", "rpi4", "xavier_nx_gpu")}
    assert rxt_ceiling["ultra96"] == 50
    assert rxt_ceiling["xavier_nx_gpu"] == 100
    assert rxt_ceiling["rpi4"] >= 200

    # time per batch grows near-linearly: batching amortizes only the
    # fixed per-adaptation costs (per-channel/per-layer stat tails and
    # dispatch), so scaling is slightly sublinear but close to batch ratio
    for feasible in rows.values():
        times = [t for _, t, _ in feasible]
        assert times == sorted(times)
        if len(feasible) >= 2:
            (b0, t0, _), (b1, t1, _) = feasible[0], feasible[-1]
            ratio = b1 / b0
            assert 0.6 * ratio <= t1 / t0 <= 1.1 * ratio
