"""Fig. 4 — Ultra96-v2 conv/BN forward/backward breakdown (batch 50).

Paper claims verified: BN forward under adaptation is ~3.68x (WRN) /
~4.71x (R18) the inference BN forward; BN-Opt's backward costs up to
~2.51x (conv) and ~2.78x (BN) their forward passes; the profiler runs out
of memory for ResNeXt, so the figure contains only WRN and R18.
"""

import pytest

from repro.devices import device_info
from repro.profiling import ProfilerOOM, breakdown_for, breakdown_table, format_breakdown


def _fig4_rows(summaries):
    device = device_info("ultra96")
    return breakdown_table([summaries["wrn40_2"], summaries["resnet18"],
                            summaries["resnext29"]], device, batch_size=50)


def test_fig4_breakdown(benchmark, summaries):
    rows = benchmark(_fig4_rows, summaries)
    print("\n" + format_breakdown(
        rows, title="Fig. 4: Ultra96-v2 fw/bw breakdown (batch 50, seconds)"))

    by_key = {(r.model, r.method): r for r in rows}
    # ResNeXt absent (profiler OOM), exactly as in the paper's figure
    assert not any(model == "resnext29" and method == "bn_opt"
                   for model, method in by_key)

    wrn_ratio = (by_key[("wrn40_2", "bn_norm")].bn_fw_s
                 / by_key[("wrn40_2", "no_adapt")].bn_fw_s)
    r18_ratio = (by_key[("resnet18", "bn_norm")].bn_fw_s
                 / by_key[("resnet18", "no_adapt")].bn_fw_s)
    assert wrn_ratio == pytest.approx(3.68, rel=0.10)
    assert r18_ratio == pytest.approx(4.71, rel=0.10)
    assert r18_ratio > wrn_ratio      # the paper's ordering

    for model in ("wrn40_2", "resnet18"):
        opt = by_key[(model, "bn_opt")]
        assert opt.conv_bw_s / opt.conv_fw_s <= 2.51 + 1e-6
        assert opt.bn_bw_s / opt.bn_fw_s <= 2.78 + 1e-6
        assert opt.conv_bw_s > opt.conv_fw_s    # backward dominates


def test_fig4_rxt_profiler_oom(benchmark, summaries):
    device = device_info("ultra96")

    def attempt():
        try:
            breakdown_for(summaries["resnext29"], device, "bn_opt")
            return False
        except ProfilerOOM:
            return True

    assert benchmark(attempt)
