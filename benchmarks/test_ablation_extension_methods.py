"""Ablation — extension adaptation algorithms vs the paper's two.

Runs all five methods natively on corrupted streams:

- source-blend BN (Schneider et al.) should dominate plain BN-Norm at
  *small* batch sizes, where batch statistics are noisy — exactly the
  regime the paper's cost results favour;
- entropy-gated TENT should match plain TENT's accuracy while adapting
  on a fraction of the samples (a latency lever for BN-Opt's backward
  bottleneck).
"""

import numpy as np
import pytest

from repro.adapt import build_method
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.train.trainer import pretrain_robust

CORRUPTIONS = ("gaussian_noise", "fog", "contrast")


@pytest.fixture(scope="module")
def setup():
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    test = make_synth_cifar(600, size=16, seed=99)
    streams = {name: CorruptionStream.from_dataset(test, name, severity=5,
                                                   seed=7)
               for name in CORRUPTIONS}
    return model, streams


def mean_error(method_name, model, streams, batch_size, **kwargs):
    errors = []
    fractions = []
    for stream in streams.values():
        method = build_method(method_name, **kwargs).prepare(model)
        correct = total = 0
        for images, labels in stream.batches(batch_size):
            logits = method.forward(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
            if getattr(method, "last_selected_fraction", None) is not None:
                fractions.append(method.last_selected_fraction)
        method.reset()
        errors.append(100.0 * (1.0 - correct / total))
    return float(np.mean(errors)), (float(np.mean(fractions))
                                    if fractions else None)


def test_ablation_source_blend_small_batches(benchmark, setup):
    model, streams = setup

    def run():
        results = {}
        for batch in (2, 8):
            results[("bn_norm", batch)], _ = mean_error(
                "bn_norm", model, streams, batch)
            results[("bn_norm_blend", batch)], _ = mean_error(
                "bn_norm_blend", model, streams, batch, source_count=4)
            results[("no_adapt", batch)], _ = mean_error(
                "no_adapt", model, streams, batch)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: source-blend BN vs plain BN-Norm (mean error %)")
    for (method, batch), error in sorted(results.items()):
        print(f"  {method:14s} batch={batch:<3d} {error:6.2f}")

    # the Schneider et al. crossover: with a 2-sample batch, plain
    # statistics recompute is *worse than no adaptation* (noisy stats),
    # while blending with the source statistics beats both
    assert results[("bn_norm", 2)] > results[("no_adapt", 2)]
    assert results[("bn_norm_blend", 2)] < results[("no_adapt", 2)]
    assert results[("bn_norm_blend", 2)] < results[("bn_norm", 2)]
    # by batch 8 plain recompute has recovered and the two are comparable
    assert results[("bn_norm", 8)] < results[("no_adapt", 8)] - 5
    assert results[("bn_norm_blend", 8)] < results[("bn_norm", 8)] + 2.0


def test_ablation_entropy_gated_tent(benchmark, setup):
    model, streams = setup

    def run():
        plain, _ = mean_error("bn_opt", model, streams, 50, lr=5e-3)
        gated, fraction = mean_error("bn_opt_selective", model, streams, 50,
                                     lr=5e-3, entropy_threshold=0.25)
        return plain, gated, fraction

    plain, gated, fraction = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation: entropy-gated TENT — plain {plain:.2f}% vs gated "
          f"{gated:.2f}% error, adapting on {fraction:.0%} of samples")
    # accuracy parity (within 2 points) at a reduced adaptation load
    assert gated < plain + 2.0
    assert fraction is not None and fraction < 0.95
