"""Fig. 2 — average prediction error for CIFAR-10-C.

Two parts:

1. *Reference grid*: render the paper's 27-bar accuracy grid and verify
   every aggregate the text states (mean improvements of 4.02 / 6.67 /
   2.65 points, diminishing batch-size returns).
2. *Native run*: actually execute No-Adapt / BN-Norm / BN-Opt on our
   numpy engine with tiny-profile robust models over corrupted synthetic
   streams and verify the *shape* of Fig. 2 reproduces: adaptation
   recovers a large fraction of the corruption-induced error, and BN-Opt
   is competitive with BN-Norm.
"""

import numpy as np
import pytest

from repro.core.config import StudyConfig
from repro.core.reference import (
    CLAIM_BN_NORM_MEAN_IMPROVEMENT,
    CLAIM_BN_OPT_MEAN_IMPROVEMENT,
    NO_ADAPT_ERROR_PCT,
    BN_NORM_ERROR_PCT,
    BN_OPT_ERROR_PCT,
)
from repro.core.report import render_error_grid
from repro.core.runner import run_native_study


def _reference_aggregates():
    models = ("resnext29", "wrn40_2", "resnet18")
    no_adapt = np.mean([NO_ADAPT_ERROR_PCT[m] for m in models for _ in range(3)])
    bn_norm = np.mean([BN_NORM_ERROR_PCT[m][i] for m in models for i in range(3)])
    bn_opt = np.mean([BN_OPT_ERROR_PCT[m][i] for m in models for i in range(3)])
    return no_adapt, bn_norm, bn_opt


def test_fig2_reference_grid(benchmark):
    no_adapt, bn_norm, bn_opt = benchmark(_reference_aggregates)
    print("\n" + render_error_grid())
    assert no_adapt - bn_norm == pytest.approx(CLAIM_BN_NORM_MEAN_IMPROVEMENT,
                                               abs=0.05)
    assert no_adapt - bn_opt == pytest.approx(CLAIM_BN_OPT_MEAN_IMPROVEMENT,
                                              abs=0.05)


def test_fig2_native_execution(benchmark, native_config):
    """Run the adaptation algorithms for real (tiny profiles, WRN)."""
    config = StudyConfig(
        models=("wrn40_2",),
        methods=("no_adapt", "bn_norm", "bn_opt"),
        batch_sizes=(50, 100),
        corruptions=native_config.corruptions,
        image_size=native_config.image_size,
        stream_samples=native_config.stream_samples,
        train_samples=native_config.train_samples,
        train_epochs=native_config.train_epochs,
    )
    result = benchmark.pedantic(run_native_study, args=(config,),
                                rounds=1, iterations=1)
    print("\nNative Fig. 2 (tiny WRN on corrupted SynthCIFAR):")
    print(result.to_table())

    for batch in (50, 100):
        no_adapt = result.one("wrn40_2", "no_adapt", batch).error_pct
        bn_norm = result.one("wrn40_2", "bn_norm", batch).error_pct
        bn_opt = result.one("wrn40_2", "bn_opt", batch).error_pct
        # the paper's phenomenon: adaptation strongly recovers accuracy
        assert bn_norm < no_adapt - 3.0, f"batch {batch}"
        assert bn_opt < no_adapt - 3.0, f"batch {batch}"
        # BN-Opt competitive with BN-Norm (its margin grows with stream
        # length; on short streams we require parity within 2 points)
        assert bn_opt < bn_norm + 2.0, f"batch {batch}"


def test_fig2_native_all_models(benchmark, native_config):
    """All three robust models through the adaptation grid, natively.

    First run trains three tiny-profile robust models (cached under
    $REPRO_CACHE).  Asserts the Fig. 2 phenomenon model-by-model:
    BN-Norm strongly beats No-Adapt everywhere, and BN-Opt is at worst
    on par with BN-Norm.
    """
    config = StudyConfig(
        models=("resnext29", "wrn40_2", "resnet18"),
        methods=("no_adapt", "bn_norm", "bn_opt"),
        batch_sizes=(50,),
        corruptions=native_config.corruptions,
        image_size=native_config.image_size,
        stream_samples=native_config.stream_samples,
        train_samples=native_config.train_samples,
        train_epochs=native_config.train_epochs,
    )
    result = benchmark.pedantic(run_native_study, args=(config,),
                                rounds=1, iterations=1)
    print("\nNative Fig. 2 (all tiny robust models, batch 50):")
    print(result.to_table())

    for model in config.models:
        no_adapt = result.one(model, "no_adapt", 50).error_pct
        bn_norm = result.one(model, "bn_norm", 50).error_pct
        bn_opt = result.one(model, "bn_opt", 50).error_pct
        assert bn_norm < no_adapt - 3.0, model
        assert bn_opt < bn_norm + 2.5, model
