"""Fig. 3 — Ultra96-v2 PS forward times (inference + adaptation).

Paper claims verified: WRN-AM-50 anchor times (3.58 / 3.95 / 13.35 s),
mean BN-Norm overhead 1.40 s, mean BN-Opt overhead 30.27 s, and the two
ResNeXt OOM cases.
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.report import render_forward_times
from repro.core.runner import run_simulated_study


def _ultra96_grid():
    return run_simulated_study(StudyConfig(devices=("ultra96",)))


def test_fig3_ultra96_forward_times(benchmark):
    result = benchmark(_ultra96_grid)
    print("\n" + render_forward_times(result, "ultra96",
                                      title="Fig. 3: Ultra96-v2 PS forward times"))

    wrn50 = {m: result.one("wrn40_2", m, 50, "ultra96").forward_time_s
             for m in ("no_adapt", "bn_norm", "bn_opt")}
    assert wrn50["no_adapt"] == pytest.approx(3.58, rel=0.05)
    assert wrn50["bn_norm"] == pytest.approx(3.95, rel=0.05)
    assert wrn50["bn_opt"] == pytest.approx(13.35, rel=0.05)

    # mean adaptation overheads across the paper's case sets
    norm_extra = [result.one(m, "bn_norm", b, "ultra96").adapt_overhead_s
                  for m in ("wrn40_2", "resnet18", "resnext29")
                  for b in (50, 100, 200)]
    assert sum(norm_extra) / len(norm_extra) == pytest.approx(1.40, rel=0.15)

    opt_records = [r for r in result if r.method == "bn_opt" and not r.oom]
    opt_extra = [r.adapt_overhead_s for r in opt_records]
    assert len(opt_extra) == 7          # 9 cases minus 2 OOM
    assert sum(opt_extra) / len(opt_extra) == pytest.approx(30.27, rel=0.15)

    oom_labels = {r.label for r in result if r.oom}
    assert oom_labels == {"RXT-AM-100 + BN-Opt @ ultra96",
                          "RXT-AM-200 + BN-Opt @ ultra96"}
