"""Fig. 6 — Raspberry Pi 4 forward times.

Paper claims verified: all 9 cases run for both adaptation algorithms
(8 GB), WRN-AM-50 anchors (2.04 / 2.59 / 7.97 s), mean BN-Norm overhead
0.86 s, mean BN-Opt overhead 24.9 s, and the A72-over-A53 speedup.
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.report import render_forward_times
from repro.core.runner import run_simulated_study


def _grids():
    rpi = run_simulated_study(StudyConfig(devices=("rpi4",)))
    fpga = run_simulated_study(StudyConfig(devices=("ultra96",)))
    return rpi, fpga


def test_fig6_rpi_forward_times(benchmark):
    rpi, fpga = benchmark(_grids)
    print("\n" + render_forward_times(rpi, "rpi4",
                                      title="Fig. 6: Raspberry Pi 4 forward times"))

    assert not any(r.oom for r in rpi)   # "all three DNNs ... able to run"

    wrn50 = {m: rpi.one("wrn40_2", m, 50, "rpi4").forward_time_s
             for m in ("no_adapt", "bn_norm", "bn_opt")}
    assert wrn50["no_adapt"] == pytest.approx(2.04, rel=0.05)
    assert wrn50["bn_norm"] == pytest.approx(2.59, rel=0.05)
    assert wrn50["bn_opt"] == pytest.approx(7.97, rel=0.05)

    norm_extra = [r.adapt_overhead_s for r in rpi if r.method == "bn_norm"]
    assert sum(norm_extra) / len(norm_extra) == pytest.approx(0.86, rel=0.15)
    opt_extra = [r.adapt_overhead_s for r in rpi if r.method == "bn_opt"]
    assert len(opt_extra) == 9
    assert sum(opt_extra) / len(opt_extra) == pytest.approx(24.9, rel=0.15)

    # "Due to the use of A72s, these times are reduced compared to the FPGA"
    for r in rpi.feasible():
        fpga_record = fpga.filter(model=r.model, method=r.method,
                                  batch_size=r.batch_size).feasible()
        if len(fpga_record) == 1:
            assert r.forward_time_s < fpga_record.records[0].forward_time_s
