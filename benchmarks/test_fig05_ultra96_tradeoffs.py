"""Fig. 5 — Ultra96-v2 performance-energy-accuracy trade-offs.

Paper claims verified (Section IV-B): the weighted objective selects
WRN-AM-50 + BN-Norm (equal weights; 3.95 s, 4.93 J, 15.21 %),
WRN-AM-50 + BN-Opt (accuracy priority; 13.35 s, 14.35 J, 12.37 %), and
WRN-AM-50 + No-Adapt (performance or energy priority; 3.58 s, 4.47 J,
18.26 %).
"""

import pytest

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.report import render_tradeoffs


def _selections(study):
    subset = study.filter(device="ultra96")
    return {name: select_best(subset, case, "raw")
            for name, case in WEIGHT_CASES.items()}


def test_fig5_ultra96_tradeoffs(benchmark, robust_grid_study):
    best = benchmark(_selections, robust_grid_study)
    print("\n" + render_tradeoffs(robust_grid_study, "ultra96",
                                  title="Fig. 5: Ultra96-v2 trade-offs"))

    equal = best["equal"]
    assert equal.label == "WRN-AM-50 + BN-Norm @ ultra96"
    assert equal.forward_time_s == pytest.approx(3.95, rel=0.05)
    assert equal.energy_j == pytest.approx(4.93, rel=0.05)
    assert equal.error_pct == 15.21

    accuracy = best["accuracy"]
    assert accuracy.label == "WRN-AM-50 + BN-Opt @ ultra96"
    assert accuracy.forward_time_s == pytest.approx(13.35, rel=0.05)
    assert accuracy.energy_j == pytest.approx(14.35, rel=0.05)
    assert accuracy.error_pct == 12.37

    for case in ("performance", "energy"):
        choice = best[case]
        assert choice.label == "WRN-AM-50 + No-Adapt @ ultra96"
        assert choice.forward_time_s == pytest.approx(3.58, rel=0.05)
        assert choice.energy_j == pytest.approx(4.47, rel=0.05)
        assert choice.error_pct == 18.26
