"""Shared fixtures for the benchmark suite.

Each ``benchmarks/test_*.py`` module regenerates one table or figure of
the paper (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered figures) and asserts the paper's claims about it.

Environment knobs:

- ``REPRO_BENCH_FULL=1`` enlarges the native accuracy experiment (more
  corruptions, longer streams).  The default keeps the whole suite in
  a few minutes; trained tiny models are cached on disk either way.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import StudyConfig
from repro.core.runner import run_simulated_study
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import summarize

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def summaries():
    return {name: summarize(build_model(name, "full"), name=name)
            for name in MODEL_NAMES}


@pytest.fixture(scope="session")
def study():
    """The full simulated paper grid, including MobileNet."""
    return run_simulated_study(StudyConfig(
        models=("resnext29", "wrn40_2", "resnet18", "mobilenet_v2")))


@pytest.fixture(scope="session")
def robust_grid_study():
    """The paper's 3-robust-model grid (Figs. 3-12)."""
    return run_simulated_study(StudyConfig())


@pytest.fixture(scope="session")
def native_config():
    corruptions = ("gaussian_noise", "fog", "contrast", "brightness",
                   "pixelate", "snow")
    if FULL_MODE:
        from repro.data.corruptions import CORRUPTION_NAMES
        corruptions = tuple(CORRUPTION_NAMES)
    return StudyConfig(
        corruptions=corruptions,
        image_size=16,
        stream_samples=1200 if FULL_MODE else 600,
        train_samples=4000,
        train_epochs=10,
    )
