"""Fig. 7 — Raspberry Pi conv/BN fw/bw breakdown (batch 50, all 3 models).

Paper claims verified: BN forward under adaptation up to ~4.6x the
inference BN forward; backward conv/BN costs are zero for No-Adapt and
BN-Norm and significant for BN-Opt; all three models are profilable on
the Pi (unlike the Ultra96).
"""


from repro.devices import device_info
from repro.profiling import breakdown_table, format_breakdown


def _fig7_rows(summaries):
    device = device_info("rpi4")
    return breakdown_table([summaries["wrn40_2"], summaries["resnet18"],
                            summaries["resnext29"]], device, batch_size=50)


def test_fig7_rpi_breakdown(benchmark, summaries):
    rows = benchmark(_fig7_rows, summaries)
    print("\n" + format_breakdown(
        rows, title="Fig. 7: RPi fw/bw breakdown (batch 50, seconds)"))

    assert len(rows) == 9   # all three models profile on the Pi
    by_key = {(r.model, r.method): r for r in rows}

    ratios = []
    for model in ("wrn40_2", "resnet18", "resnext29"):
        ratio = (by_key[(model, "bn_norm")].bn_fw_s
                 / by_key[(model, "no_adapt")].bn_fw_s)
        ratios.append(ratio)
        assert ratio > 1.5
    assert max(ratios) <= 4.6 + 0.5    # "up to 4.6x"

    for model, method in by_key:
        row = by_key[(model, method)]
        if method == "bn_opt":
            assert row.conv_bw_s > 0 and row.bn_bw_s > 0
            # backward explains the high BN-Opt forward times of Fig. 6
            assert row.conv_bw_s + row.bn_bw_s > row.conv_fw_s
        else:
            assert row.conv_bw_s == 0 and row.bn_bw_s == 0
