"""Ablation — real-time feasibility (insight iii, quantified).

The paper warns that the 213 ms A3 adaptation overhead "can be a
bottleneck for tight deadlines" but never models the deadline side.
This bench plays timed streams against the devices and derives:

- the sustainable-fps matrix per (device, method);
- the crossover camera rate at which each device starts dropping
  BN-Norm batches;
- that under overload, the *effective* accuracy advantage of adaptation
  collapses toward the frozen baseline — i.e. a faster device can be
  worth more accuracy than a better algorithm.
"""

import pytest

from repro.core.streaming import RealTimeStream, max_sustainable_fps, simulate_realtime
from repro.devices import device_info


def test_ablation_sustainable_fps_matrix(benchmark, summaries):
    def run():
        matrix = {}
        for device_name in ("ultra96", "rpi4", "xavier_nx_cpu",
                            "xavier_nx_gpu"):
            device = device_info(device_name)
            for method in ("no_adapt", "bn_norm", "bn_opt"):
                matrix[(device_name, method)] = max_sustainable_fps(
                    summaries["wrn40_2"], device, method, 50)
        return matrix

    matrix = benchmark(run)
    print("\nAblation: sustainable fps (WRN-40-2, batch 50)")
    for (device, method), fps in matrix.items():
        print(f"  {device:14s} {method:9s} {fps:8.1f} fps")

    # ordering within every device: adaptation costs throughput
    for device in ("ultra96", "rpi4", "xavier_nx_cpu", "xavier_nx_gpu"):
        assert (matrix[(device, "no_adapt")] > matrix[(device, "bn_norm")]
                > matrix[(device, "bn_opt")])

    # only the GPU holds a 30 fps camera with BN-Norm
    holds_30 = {d for d in ("ultra96", "rpi4", "xavier_nx_cpu",
                            "xavier_nx_gpu")
                if matrix[(d, "bn_norm")] >= 30.0}
    assert holds_30 == {"xavier_nx_cpu", "xavier_nx_gpu"}
    # ... and nothing but the GPU holds 30 fps with BN-Opt
    holds_30_opt = {d for d in ("ultra96", "rpi4", "xavier_nx_cpu",
                                "xavier_nx_gpu")
                    if matrix[(d, "bn_opt")] >= 30.0}
    assert holds_30_opt == {"xavier_nx_gpu"}


def test_ablation_overload_collapses_adaptation_benefit(benchmark, summaries):
    def run():
        device = device_info("rpi4")
        results = {}
        for fps in (5, 60):
            stream = RealTimeStream(fps=fps, num_frames=4000, batch_size=50,
                                    queue_capacity=1)
            card = simulate_realtime(summaries["wrn40_2"], device, "bn_norm",
                                     stream)
            results[fps] = card
        return results

    results = benchmark(run)
    relaxed, overloaded = results[5], results[60]
    print(f"\nAblation: RPi BN-Norm — 5 fps: err "
          f"{relaxed.effective_error_pct:.2f}% (drops {relaxed.drop_rate:.0%});"
          f" 60 fps: err {overloaded.effective_error_pct:.2f}% "
          f"(drops {overloaded.drop_rate:.0%})")

    assert relaxed.drop_rate == 0.0
    assert relaxed.effective_error_pct == pytest.approx(15.21)
    assert overloaded.drop_rate > 0.5
    # effective error pulled most of the way back to No-Adapt's 18.26
    assert overloaded.effective_error_pct > 17.0


def test_ablation_faster_device_beats_better_algorithm(benchmark, summaries):
    """At 30 fps: frozen NX GPU vs adapting RPi — the GPU's *frozen*
    model is beaten by its own BN-Norm, but the RPi's BN-Norm, drowning
    in drops, is worse than the GPU frozen baseline's 18.26%."""
    def run():
        stream = RealTimeStream(fps=30, num_frames=4000, batch_size=50,
                                queue_capacity=1)
        rpi = simulate_realtime(summaries["wrn40_2"], device_info("rpi4"),
                                "bn_norm", stream)
        gpu_frozen = simulate_realtime(summaries["wrn40_2"],
                                       device_info("xavier_nx_gpu"),
                                       "no_adapt", stream)
        gpu_adapt = simulate_realtime(summaries["wrn40_2"],
                                      device_info("xavier_nx_gpu"),
                                      "bn_norm", stream)
        return rpi, gpu_frozen, gpu_adapt

    rpi, gpu_frozen, gpu_adapt = benchmark(run)
    print(f"\nAblation @30fps: RPi+BN-Norm {rpi.effective_error_pct:.2f}% "
          f"(drops {rpi.drop_rate:.0%}) vs GPU frozen "
          f"{gpu_frozen.effective_error_pct:.2f}% vs GPU+BN-Norm "
          f"{gpu_adapt.effective_error_pct:.2f}%")
    assert gpu_adapt.effective_error_pct < gpu_frozen.effective_error_pct
    assert rpi.effective_error_pct > gpu_adapt.effective_error_pct
    assert rpi.drop_rate > 0.2
