"""Fig. 10 — Xavier NX conv/BN fw/bw breakdown, CPU vs GPU (batch 50).

Paper claims verified: GPU conv backward/forward ratio ~2.2x vs CPU
~2.5x; faster conv fw+bw on the GPU explains BN-Opt's speedup; and the
counter-intuitive finding that ResNeXt's BN forward (statistics
recompute) is *slower on the GPU than on the CPU*, without changing the
overall winner.
"""

import pytest

from repro.devices import device_info
from repro.profiling import breakdown_table, format_breakdown


def _fig10_rows(summaries):
    models = [summaries["wrn40_2"], summaries["resnet18"],
              summaries["resnext29"]]
    return {
        "cpu": breakdown_table(models, device_info("xavier_nx_cpu"), batch_size=50),
        "gpu": breakdown_table(models, device_info("xavier_nx_gpu"), batch_size=50),
    }


def test_fig10_nx_breakdown(benchmark, summaries):
    rows = benchmark(_fig10_rows, summaries)
    print("\n" + format_breakdown(rows["cpu"],
                                  title="Fig. 10a: NX CPU breakdown (batch 50)"))
    print("\n" + format_breakdown(rows["gpu"],
                                  title="Fig. 10b: NX GPU breakdown (batch 50)"))

    cpu = {(r.model, r.method): r for r in rows["cpu"]}
    gpu = {(r.model, r.method): r for r in rows["gpu"]}

    for model in ("wrn40_2", "resnet18", "resnext29"):
        gpu_row = gpu[(model, "bn_opt")]
        cpu_row = cpu[(model, "bn_opt")]
        assert gpu_row.conv_bw_s / gpu_row.conv_fw_s == pytest.approx(2.2,
                                                                      rel=0.02)
        assert cpu_row.conv_bw_s / cpu_row.conv_fw_s == pytest.approx(2.5,
                                                                      rel=0.02)
        # conv passes much faster on GPU -> BN-Opt speedup
        assert gpu_row.conv_fw_s + gpu_row.conv_bw_s < \
            0.25 * (cpu_row.conv_fw_s + cpu_row.conv_bw_s)

    # "forward BN performance is worse for RXT when using GPU over CPU"
    assert gpu[("resnext29", "bn_norm")].bn_fw_s > \
        cpu[("resnext29", "bn_norm")].bn_fw_s
    # "... but it does not have a major impact on the overall time"
    assert gpu[("resnext29", "bn_norm")].total_s < \
        cpu[("resnext29", "bn_norm")].total_s
