"""Ablation — compression x adaptation (paper insight iv, explored).

The paper leaves pruning/quantization as future work with a warning:
"care must be taken that any model reduction should not compromise the
robust accuracy against corruptions."  This bench runs the experiment:

1. *native accuracy*: quantize / prune the robust tiny WRN, then run the
   corrupted streams with No-Adapt and BN-Norm — showing (a) 8-bit
   weights are nearly free, (b) 4-bit weights and heavy pruning cost
   corruption accuracy, and (c) BN-Norm adaptation still works after
   compression (statistics are re-estimated in float);
2. *projected cost*: what int8 buys on each device, and why BN-Opt
   benefits least (its fp32 backward dominates).
"""

import numpy as np
import pytest

from repro.adapt import build_method
from repro.compress import (
    magnitude_prune,
    quantize_model_weights,
    quantized_cost,
    sparsity,
)
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.devices import device_info, forward_latency
from repro.train.trainer import pretrain_robust

CORRUPTIONS = ("gaussian_noise", "fog", "contrast")


@pytest.fixture(scope="module")
def streams():
    test = make_synth_cifar(600, size=16, seed=99)
    return {name: CorruptionStream.from_dataset(test, name, severity=5,
                                                seed=7)
            for name in CORRUPTIONS}


def fresh_model():
    return pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                           epochs=10)


def mean_error(method_name, model, streams, **kwargs):
    errors = []
    for stream in streams.values():
        method = build_method(method_name, **kwargs).prepare(model)
        correct = total = 0
        for images, labels in stream.batches(50):
            logits = method.forward(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
        method.reset()
        errors.append(100.0 * (1.0 - correct / total))
    return float(np.mean(errors))


def test_ablation_quantization_vs_robust_accuracy(benchmark, streams):
    def run():
        results = {}
        for label, compress in [
            ("fp32", lambda m: None),
            ("fp16", lambda m: quantize_model_weights(m, 16)),
            ("int8", lambda m: quantize_model_weights(m, 8)),
            ("int4", lambda m: quantize_model_weights(m, 4)),
        ]:
            model = fresh_model()
            compress(model)
            results[label] = (mean_error("no_adapt", model, streams),
                              mean_error("bn_norm", model, streams))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: weight precision vs corruption error (mean %)")
    print(f"{'precision':>10s} {'no_adapt':>10s} {'bn_norm':>10s}")
    for label, (frozen, adapted) in results.items():
        print(f"{label:>10s} {frozen:>10.2f} {adapted:>10.2f}")

    # Section I's open question, answered: fp16 is indistinguishable
    # from fp32 for corruption robustness on this workload
    assert abs(results["fp16"][0] - results["fp32"][0]) < 1.0
    # (a) int8 is nearly free for corruption robustness
    assert abs(results["int8"][0] - results["fp32"][0]) < 5.0
    # (b) int4 costs measurable robust accuracy — the paper's warning
    assert results["int4"][0] > results["fp32"][0]
    # (c) BN-Norm still adapts effectively after quantization
    for label in ("fp32", "fp16", "int8", "int4"):
        assert results[label][1] < results[label][0] - 3.0


def test_ablation_pruning_vs_robust_accuracy(benchmark, streams):
    def run():
        results = {}
        for target in (0.0, 0.5, 0.9):
            model = fresh_model()
            if target > 0:
                magnitude_prune(model, target)
            results[target] = (sparsity(model),
                               mean_error("no_adapt", model, streams),
                               mean_error("bn_norm", model, streams))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: unstructured sparsity vs corruption error (mean %)")
    print(f"{'target':>7s} {'achieved':>9s} {'no_adapt':>10s} {'bn_norm':>10s}")
    for target, (achieved, frozen, adapted) in results.items():
        print(f"{target:>7.1f} {achieved:>9.2f} {frozen:>10.2f} "
              f"{adapted:>10.2f}")

    # moderate pruning survives; heavy pruning costs robust accuracy
    assert results[0.5][1] < results[0.9][1]
    assert results[0.9][1] > results[0.0][1]
    # adaptation keeps helping at moderate sparsity
    assert results[0.5][2] < results[0.5][1] - 3.0


def test_ablation_int8_cost_projection(benchmark, summaries):
    def run():
        rows = {}
        for device_name in ("ultra96", "rpi4", "xavier_nx_gpu"):
            device = device_info(device_name)
            for method, (adapts, backward) in (("no_adapt", (False, False)),
                                               ("bn_opt", (True, True))):
                base = forward_latency(summaries["wrn40_2"], 50, device,
                                       adapts_bn_stats=adapts,
                                       does_backward=backward).forward_time_s
                t8, _, _ = quantized_cost(summaries["wrn40_2"], 50, device,
                                          adapts_bn_stats=adapts,
                                          does_backward=backward, bits=8)
                rows[(device_name, method)] = (base - t8) / base
        return rows

    rows = benchmark(run)
    print("\nAblation: int8 latency saving by device and method")
    for (device, method), saving in rows.items():
        print(f"  {device:14s} {method:9s} saves {saving:.0%}")
    for device in ("ultra96", "rpi4", "xavier_nx_gpu"):
        # inference gains a lot; BN-Opt (fp32 backward) gains much less
        assert rows[(device, "no_adapt")] > 0.30
        assert rows[(device, "bn_opt")] < rows[(device, "no_adapt")] / 2
