"""Ablation — corruption severity sweep (the axis the paper fixes at 5).

CIFAR-10-C defines severities 1-5; the paper evaluates only level 5.
This native experiment sweeps the severity axis and checks:

- frozen-model error grows monotonically (on average) with severity;
- the *benefit* of BN-Norm adaptation grows with severity — adaptation
  matters most exactly where the paper measures;
- at severity 1 the frozen robust model is already close to its clean
  accuracy (AugMix training absorbs mild corruption).
"""

import numpy as np
import pytest

from repro.adapt import BNNorm, NoAdapt
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.train.trainer import evaluate, pretrain_robust

CORRUPTIONS = ("gaussian_noise", "fog", "contrast")
SEVERITIES = (1, 3, 5)


@pytest.fixture(scope="module")
def setup():
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    test = make_synth_cifar(600, size=16, seed=99)
    return model, test


def mean_error(method_factory, model, test, severity):
    errors = []
    for corruption in CORRUPTIONS:
        stream = CorruptionStream.from_dataset(test, corruption,
                                               severity=severity, seed=7)
        method = method_factory().prepare(model)
        correct = total = 0
        for images, labels in stream.batches(50):
            logits = method.forward(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
        method.reset()
        errors.append(100.0 * (1.0 - correct / total))
    return float(np.mean(errors))


def test_ablation_severity_sweep(benchmark, setup):
    model, test = setup

    def run():
        rows = {}
        for severity in SEVERITIES:
            rows[severity] = (
                mean_error(NoAdapt, model, test, severity),
                mean_error(BNNorm, model, test, severity),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    clean_error = 100 * evaluate(model, test.images, test.labels)

    print(f"\nAblation: severity sweep (clean error {clean_error:.1f}%)")
    print(f"{'severity':>9s} {'no_adapt':>10s} {'bn_norm':>10s} {'benefit':>9s}")
    for severity, (frozen, adapted) in rows.items():
        print(f"{severity:>9d} {frozen:>10.2f} {adapted:>10.2f} "
              f"{frozen - adapted:>9.2f}")

    frozen_errors = [rows[s][0] for s in SEVERITIES]
    benefits = [rows[s][0] - rows[s][1] for s in SEVERITIES]

    # damage grows with severity
    assert frozen_errors[0] < frozen_errors[-1]
    # adaptation benefit grows with severity
    assert benefits[-1] > benefits[0]
    assert benefits[-1] > 10.0
    # mild corruption is mostly absorbed by robust training
    assert frozen_errors[0] < clean_error + 15.0
    # adaptation never hurts by more than noise at any severity
    assert all(b > -2.0 for b in benefits)
