"""Fig. 11 — Xavier NX trade-offs (CPU and GPU points pooled).

Paper claims verified (Section IV-D): equal weights -> WRN-AM-50 +
BN-Norm on GPU (0.31 s, 2.96 J, 15.21 %); accuracy priority -> WRN-AM-50
+ BN-Opt on GPU (0.82 s, 7.96 J, 12.37 %, forward time under 1 s);
performance/energy priority -> WRN-AM-50 + No-Adapt on GPU (0.10 s,
1.02 J); the GPU draws ~2.2x the CPU's power yet is ~2.86x more
energy-efficient for BN-Opt.
"""

import pytest

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.records import StudyResult
from repro.core.report import render_tradeoffs


def _nx_selections(study):
    nx = StudyResult(study.filter(device="xavier_nx_cpu").records
                     + study.filter(device="xavier_nx_gpu").records)
    return nx, {name: select_best(nx, case, "raw")
                for name, case in WEIGHT_CASES.items()}


def test_fig11_nx_tradeoffs(benchmark, robust_grid_study):
    nx, best = benchmark(_nx_selections, robust_grid_study)
    print("\n" + render_tradeoffs(nx, title="Fig. 11: Xavier NX trade-offs"))

    equal = best["equal"]
    assert equal.label == "WRN-AM-50 + BN-Norm @ xavier_nx_gpu"
    assert equal.forward_time_s == pytest.approx(0.315, rel=0.05)
    assert equal.energy_j == pytest.approx(2.96, rel=0.05)

    accuracy = best["accuracy"]
    assert accuracy.label == "WRN-AM-50 + BN-Opt @ xavier_nx_gpu"
    assert accuracy.forward_time_s < 1.0   # "forward time is under 1 sec"
    assert accuracy.energy_j == pytest.approx(7.96, rel=0.08)

    for case in ("performance", "energy"):
        assert best[case].label == "WRN-AM-50 + No-Adapt @ xavier_nx_gpu"

    # GPU more energy-efficient despite higher power (for BN-Opt WRN-50)
    gpu_opt = nx.one("wrn40_2", "bn_opt", 50, "xavier_nx_gpu")
    cpu_opt = nx.one("wrn40_2", "bn_opt", 50, "xavier_nx_cpu")
    assert cpu_opt.energy_j / gpu_opt.energy_j == pytest.approx(2.86, rel=0.4)
