"""Ablation — BN-parameter-count sensitivity (insight i: "trade-offs
between BN parameters, prediction accuracy, and execution time/memory
requirements must be considered when designing a robust DNN for edge").

Correlates the adaptation overhead of all four models (on each device)
with their BN footprint, and sweeps MobileNet width multipliers to show
the overhead scales with BN elements even within one architecture family.
"""

import numpy as np

from repro.devices import device_info, forward_latency
from repro.models.mobilenet import mobilenet_v2
from repro.models.summary import summarize


def _overheads(summaries, device_name):
    device = device_info(device_name)
    rows = {}
    for name, summary in summaries.items():
        base = forward_latency(summary, 50, device, adapts_bn_stats=False,
                               does_backward=False)
        norm = forward_latency(summary, 50, device, adapts_bn_stats=True,
                               does_backward=False)
        rows[name] = (summary.bn_elements,
                      norm.forward_time_s - base.forward_time_s)
    return rows


def test_ablation_bn_footprint_drives_overhead(benchmark, summaries):
    rows = benchmark(_overheads, summaries, "xavier_nx_gpu")
    print("\nAblation: BN-Norm overhead vs BN elements (NX GPU, batch 50)")
    for name, (elems, overhead) in sorted(rows.items(),
                                          key=lambda kv: kv[1][0]):
        print(f"  {name:14s} bn_elems={elems / 1e6:6.2f}M "
              f"overhead={overhead:6.3f}s")

    elems = np.array([rows[n][0] for n in rows])
    overheads = np.array([rows[n][1] for n in rows])
    correlation = np.corrcoef(elems, overheads)[0, 1]
    assert correlation > 0.95   # overhead is essentially BN-element-bound

    # the paper's specific ordering: MNv2 overhead > WRN/R18, < RXT
    assert rows["mobilenet_v2"][1] > rows["wrn40_2"][1]
    assert rows["mobilenet_v2"][1] > rows["resnet18"][1]
    assert rows["mobilenet_v2"][1] < rows["resnext29"][1]


def test_ablation_mobilenet_width_sweep(benchmark):
    def sweep():
        results = []
        device = device_info("xavier_nx_gpu")
        for width in (0.25, 0.5, 1.0):
            summary = summarize(mobilenet_v2(width_mult=width),
                                name=f"mnv2-w{width}")
            base = forward_latency(summary, 50, device,
                                   adapts_bn_stats=False, does_backward=False)
            norm = forward_latency(summary, 50, device,
                                   adapts_bn_stats=True, does_backward=False)
            results.append((width, summary.bn_params,
                            norm.forward_time_s - base.forward_time_s))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: MobileNet width multiplier vs adaptation overhead")
    for width, bn_params, overhead in results:
        print(f"  width={width:4.2f} bn_params={bn_params:6d} "
              f"overhead={overhead:6.3f}s")
    overheads = [o for _, _, o in results]
    assert overheads == sorted(overheads)   # monotone in width
    assert overheads[-1] > 2.5 * overheads[0]
