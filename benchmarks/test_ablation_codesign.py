"""Ablation — hypothetical hardware co-design (insights iii and v).

The paper concludes that adaptation-aware accelerators are needed:
"additional MACs and routing fabric would make back propagation less
costly, and low power memories ... would enable larger batch sizes".
This bench quantifies both proposals on the simulator:

1. a backward-pass accelerator (conv_bw_factor -> 1.0, i.e. backward as
   fast as forward) — how much of BN-Opt's overhead disappears;
2. a BN-statistics engine (10x faster stat recompute) — what it does to
   the A3 operating point's 213 ms overhead;
3. doubled device memory — which OOM configurations become feasible.
"""

import pytest

from repro.devices import device_info, estimate_memory, forward_latency


def _bnopt_time(summary, device):
    return forward_latency(summary, 50, device, adapts_bn_stats=True,
                           does_backward=True).forward_time_s


def test_ablation_backward_accelerator(benchmark, summaries):
    def run():
        device = device_info("ultra96")
        accelerated = device.with_overrides(conv_bw_factor=1.0,
                                            bn_bw_factor=1.0)
        wrn = summaries["wrn40_2"]
        return _bnopt_time(wrn, device), _bnopt_time(wrn, accelerated)

    baseline, accelerated = benchmark(run)
    saving = 100 * (baseline - accelerated) / baseline
    print(f"\nAblation: FPGA backward accelerator — BN-Opt {baseline:.2f}s"
          f" -> {accelerated:.2f}s ({saving:.0f}% saved)")
    # backward dominates BN-Opt on the A53: a fw-speed backward engine
    # recovers more than a third of the forward time
    assert saving > 35.0


def test_ablation_bn_stat_engine(benchmark, summaries):
    def run():
        device = device_info("xavier_nx_gpu")
        engine = device.with_overrides(
            bn_adapt_s_per_elem=device.bn_adapt_s_per_elem / 10)
        wrn = summaries["wrn40_2"]
        base_na = forward_latency(wrn, 50, device, adapts_bn_stats=False,
                                  does_backward=False).forward_time_s
        overhead_now = forward_latency(wrn, 50, device, adapts_bn_stats=True,
                                       does_backward=False).forward_time_s - base_na
        overhead_engine = forward_latency(wrn, 50, engine,
                                          adapts_bn_stats=True,
                                          does_backward=False).forward_time_s - base_na
        return overhead_now, overhead_engine

    now, engineered = benchmark(run)
    print(f"\nAblation: BN-stat engine on NX GPU — A3 adaptation overhead "
          f"{now * 1e3:.0f}ms -> {engineered * 1e3:.0f}ms")
    assert now == pytest.approx(0.213, rel=0.05)   # the paper's bottleneck
    assert engineered < 0.05                        # engine removes it


def test_ablation_memory_doubling(benchmark, summaries):
    def run():
        results = {}
        for device_name, batch in (("ultra96", 100), ("xavier_nx_gpu", 200)):
            device = device_info(device_name)
            doubled = device.with_overrides(
                memory_total_gb=2 * device.memory_total_gb)
            rxt = summaries["resnext29"]
            results[device_name] = (
                estimate_memory(rxt, batch, device, does_backward=True).fits,
                estimate_memory(rxt, batch, doubled, does_backward=True).fits,
            )
        return results

    results = benchmark(run)
    print("\nAblation: doubled DRAM — ResNeXt BN-Opt feasibility")
    for device_name, (before, after) in results.items():
        print(f"  {device_name:14s} before={before} after={after}")
    # both paper OOM events are cured by doubling memory
    assert results["ultra96"] == (False, True)
    assert results["xavier_nx_gpu"] == (False, True)


def test_ablation_energy_delay_product(benchmark, robust_grid_study):
    """Extension metric: rank devices by energy-delay product for the A3
    workload, a common architecture figure of merit the paper stops
    short of computing."""
    def run():
        rows = {}
        for device_name in ("ultra96", "rpi4", "xavier_nx_cpu",
                            "xavier_nx_gpu"):
            r = robust_grid_study.one("wrn40_2", "bn_norm", 50, device_name)
            rows[device_name] = r.forward_time_s * r.energy_j
        return rows

    edp = benchmark(run)
    print("\nAblation: energy-delay product, WRN-50 + BN-Norm")
    for name, value in sorted(edp.items(), key=lambda kv: kv[1]):
        print(f"  {name:14s} EDP={value:8.3f} J*s")
    assert min(edp, key=edp.get) == "xavier_nx_gpu"
    assert max(edp, key=edp.get) == "ultra96"
