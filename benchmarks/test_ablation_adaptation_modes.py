"""Ablation — adaptation-algorithm variants, executed natively.

Extensions beyond the paper's two algorithms, run for real on the numpy
engine with a briefly-trained tiny model:

1. BN-Norm momentum (1.0 = paper's per-batch recompute vs blended EMA);
2. BN-Opt multi-step adaptation (steps > 1 per batch — the knob the
   paper's "single backpropagation pass" fixes at 1);
3. episodic (reset per stream) vs continual adaptation.
"""

import numpy as np
import pytest

from repro.adapt import BNNorm, BNOpt, NoAdapt
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.train.trainer import pretrain_robust


@pytest.fixture(scope="module")
def setup():
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    test = make_synth_cifar(600, size=16, seed=99)
    streams = {name: CorruptionStream.from_dataset(test, name, severity=5,
                                                   seed=7)
               for name in ("gaussian_noise", "fog", "contrast")}
    return model, streams


def stream_error(method, model, stream, batch_size=50):
    method.prepare(model)
    correct = total = 0
    for images, labels in stream.batches(batch_size):
        logits = method.forward(images)
        correct += int((logits.argmax(axis=-1) == labels).sum())
        total += len(labels)
    method.reset()
    return 100.0 * (1.0 - correct / total)


def mean_error(method_factory, model, streams):
    return float(np.mean([stream_error(method_factory(), model, stream)
                          for stream in streams.values()]))


def test_ablation_bn_norm_momentum(benchmark, setup):
    model, streams = setup

    def run():
        return {momentum: mean_error(lambda: BNNorm(momentum=momentum),
                                     model, streams)
                for momentum in (0.2, 0.5, 1.0)}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    no_adapt = mean_error(NoAdapt, model, streams)
    print("\nAblation: BN-Norm momentum (mean error %, lower=better)")
    print(f"  no_adapt        {no_adapt:6.2f}")
    for momentum, error in errors.items():
        print(f"  momentum={momentum:<4.1f}   {error:6.2f}")
    # every momentum setting must beat the frozen model under shift
    assert all(error < no_adapt - 3.0 for error in errors.values())


def test_ablation_bn_opt_steps(benchmark, setup):
    model, streams = setup

    def run():
        return {steps: mean_error(lambda: BNOpt(lr=5e-3, steps=steps),
                                  model, streams)
                for steps in (1, 3)}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: BN-Opt gradient steps per batch (mean error %)")
    for steps, error in errors.items():
        print(f"  steps={steps}  {error:6.2f}")
    no_adapt = mean_error(NoAdapt, model, streams)
    assert all(error < no_adapt - 3.0 for error in errors.values())
    # more steps must not catastrophically diverge on these streams
    assert errors[3] < errors[1] + 3.0


def test_ablation_episodic_vs_continual(benchmark, setup):
    model, streams = setup
    stream = streams["fog"]

    def run():
        # continual: adapt across the whole stream without reset
        continual = stream_error(BNOpt(lr=5e-3), model, stream)
        # episodic: reset the model after every batch
        method = BNOpt(lr=5e-3)
        method.prepare(model)
        correct = total = 0
        for images, labels in stream.batches(50):
            logits = method.forward(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
            method.reset()
        episodic = 100.0 * (1.0 - correct / total)
        return continual, episodic

    continual, episodic = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation: BN-Opt continual {continual:.2f}% vs episodic "
          f"{episodic:.2f}% error")
    # under a *stationary* shift, carrying state across batches helps
    # (or at worst ties): the advantage the streaming protocol exploits
    assert continual <= episodic + 1.0
