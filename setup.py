"""Legacy setup shim: environments without the `wheel` package (offline)
cannot build PEP 660 editable wheels, so `pip install -e .` falls back to
`setup.py develop` via this file. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
