"""End-to-end pipeline integration: every subsystem in one scenario.

train -> checkpoint -> reload -> corrupt -> adapt (monitored) ->
quantize -> adapt again -> price on a device.  Uses the session-scoped
micro model so the whole scenario runs in seconds.
"""

import pytest

from repro.adapt import AdaptationMonitor, BNNorm, NoAdapt
from repro.compress import quantize_model_weights
from repro.core.streaming import RealTimeStream, simulate_realtime
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.devices import device_info
from repro.models import summarize
from repro.models.checkpoints import load_checkpoint, save_checkpoint
from repro.models.wide_resnet import wide_resnet40_2
from repro.train.trainer import evaluate


def stream_error(method, model, stream, batch_size=50):
    method.prepare(model)
    correct = total = 0
    for images, labels in stream.batches(batch_size):
        logits = method.forward(images)
        correct += int((logits.argmax(axis=-1) == labels).sum())
        total += len(labels)
    method.reset()
    return 1.0 - correct / total


@pytest.fixture(scope="module")
def pipeline(micro_trained_model, tmp_path_factory):
    model, _ = micro_trained_model
    tmp = tmp_path_factory.mktemp("pipeline")
    checkpoint = tmp / "robust.npz"
    save_checkpoint(model, checkpoint)
    reloaded = wide_resnet40_2(depth=10, widen_factor=1, base=4)
    load_checkpoint(checkpoint, model=reloaded)
    test = make_synth_cifar(300, size=16, seed=77)
    stream = CorruptionStream.from_dataset(test, "gaussian_noise",
                                           severity=5, seed=5)
    return reloaded, test, stream


class TestPipeline:
    def test_checkpoint_preserves_accuracy(self, pipeline, micro_trained_model):
        reloaded, test, _ = pipeline
        original, _ = micro_trained_model
        err_original = evaluate(original, test.images, test.labels)
        err_reloaded = evaluate(reloaded, test.images, test.labels)
        assert err_reloaded == pytest.approx(err_original, abs=1e-9)

    def test_adaptation_on_reloaded_model(self, pipeline):
        reloaded, _, stream = pipeline
        frozen = stream_error(NoAdapt(), reloaded, stream)
        adapted = stream_error(BNNorm(), reloaded, stream)
        assert adapted < frozen

    def test_monitored_adaptation_produces_signals(self, pipeline):
        reloaded, test, stream = pipeline
        monitor = AdaptationMonitor(BNNorm(), probe=test.images[:32])
        monitor.prepare(reloaded)
        for images, _ in stream.batches(50):
            monitor.forward(images)
        assert len(monitor.history) == stream.num_batches(50)
        assert max(monitor.drift_trajectory()) > 0
        monitor.reset()

    def test_quantized_model_still_adapts(self, pipeline):
        reloaded, _, stream = pipeline
        state_backup = reloaded.state_dict()
        quantize_model_weights(reloaded, bits=8)
        frozen = stream_error(NoAdapt(), reloaded, stream)
        adapted = stream_error(BNNorm(), reloaded, stream)
        assert adapted < frozen
        reloaded.load_state_dict(state_backup)

    def test_priced_on_device(self, pipeline):
        reloaded, _, _ = pipeline
        summary = summarize(reloaded, input_shape=(3, 16, 16),
                            name="micro-wrn")
        card = simulate_realtime(summary, device_info("xavier_nx_gpu"),
                                 "bn_norm",
                                 RealTimeStream(fps=10, num_frames=500,
                                                batch_size=50),
                                 adapted_error_pct=10.0,
                                 baseline_error_pct=20.0)
        assert card.frames_dropped == 0
        assert card.energy_j > 0
