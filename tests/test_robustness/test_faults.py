"""Fault layer: spec parsing, seeded schedules, per-fault semantics."""

import numpy as np
import pytest

from repro.core import streaming
from repro.robustness.faults import (
    FAULT_NAMES,
    POISONING_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    apply_fault,
    parse_fault_specs,
)
from repro.robustness.guard import LADDER


@pytest.fixture
def batch(rng):
    images = rng.random((16, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 10, size=16)
    return images, labels


def fault_rng(seed=0):
    return np.random.default_rng(seed)


class TestSpecParsing:
    def test_rate_form(self):
        spec = FaultSpec.parse("nan:0.2")
        assert spec.fault == "nan" and spec.rate == 0.2 and spec.at == ()

    def test_index_form(self):
        spec = FaultSpec.parse("constant@3")
        assert spec.fault == "constant" and spec.at == (3,) and spec.rate == 0.0

    def test_multi_index_form(self):
        assert FaultSpec.parse("inf@2+5").at == (2, 5)

    def test_bare_name_means_every_batch(self):
        assert FaultSpec.parse("wrong_range").rate == 1.0

    def test_whitespace_tolerated(self):
        assert FaultSpec.parse("  nan:0.5 ").fault == "nan"

    def test_comma_list(self):
        specs = parse_fault_specs("nan:0.1, constant@3")
        assert [s.fault for s in specs] == ["nan", "constant"]

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec.parse("cosmic_ray:0.1")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(fault="nan", rate=1.5)

    def test_bad_indices_rejected(self):
        with pytest.raises(ValueError, match="indices"):
            FaultSpec.parse("nan@x")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_fault_specs("  ,  ")


class TestSchedule:
    def test_same_seed_same_plan(self):
        specs = parse_fault_specs("nan:0.3,inf:0.1")
        a = FaultSchedule(specs, seed=7).plan(200)
        b = FaultSchedule(specs, seed=7).plan(200)
        assert a == b and a   # deterministic and non-empty at these rates

    def test_different_seed_different_plan(self):
        specs = parse_fault_specs("nan:0.3")
        assert (FaultSchedule(specs, seed=1).plan(200)
                != FaultSchedule(specs, seed=2).plan(200))

    def test_explicit_indices_always_fire(self):
        plan = FaultSchedule(parse_fault_specs("constant@3+17"), seed=0).plan(20)
        assert plan == {3: "constant", 17: "constant"}

    def test_rate_one_fires_every_batch(self):
        plan = FaultSchedule(parse_fault_specs("nan"), seed=0).plan(10)
        assert plan == {i: "nan" for i in range(10)}

    def test_explicit_wins_over_rate(self):
        specs = parse_fault_specs("constant@2,nan")
        assert FaultSchedule(specs, seed=0).plan(4)[2] == "constant"

    def test_out_of_order_queries_match_plan(self):
        """Memoized draws: querying index 50 first must not shift the
        realization of earlier indices."""
        specs = parse_fault_specs("nan:0.4")
        ordered = FaultSchedule(specs, seed=5)
        shuffled = FaultSchedule(specs, seed=5)
        shuffled.fault_for(50)
        assert all(ordered.fault_for(i) == shuffled.fault_for(i)
                   for i in range(51))


class TestApplyFault:
    def test_nan_pixels(self, batch):
        images, labels = batch
        out, out_labels = apply_fault(images, labels, "nan", fault_rng())
        assert out.shape == images.shape and out.dtype == images.dtype
        assert np.isnan(out).any() and not np.isnan(out).all()
        np.testing.assert_array_equal(out_labels, labels)

    def test_inf_pixels_both_signs(self, batch):
        images, labels = batch
        out, _ = apply_fault(images, labels, "inf", fault_rng())
        assert np.isposinf(out).any() and np.isneginf(out).any()

    def test_constant_batch_has_zero_variance(self, batch):
        images, labels = batch
        out, _ = apply_fault(images, labels, "constant", fault_rng())
        assert np.array_equal(out, np.full_like(out, out.flat[0]))
        assert 0.0 <= out.flat[0] <= 1.0
        assert out.shape == images.shape

    def test_wrong_range_scales_to_uint8_range(self, batch):
        images, labels = batch
        out, _ = apply_fault(images, labels, "wrong_range", fault_rng())
        np.testing.assert_allclose(out, images * 255.0, rtol=1e-6)

    def test_truncated_cuts_frames_and_labels_together(self, batch):
        images, labels = batch
        out, out_labels = apply_fault(images, labels, "truncated", fault_rng())
        assert len(out) == len(out_labels) == max(1, len(images) // 4)
        np.testing.assert_array_equal(out, images[:len(out)])

    def test_duplicated_repeats_first_frame(self, batch):
        images, labels = batch
        out, _ = apply_fault(images, labels, "duplicated", fault_rng())
        assert out.shape == images.shape
        assert np.array_equal(out, np.broadcast_to(out[0], out.shape))

    def test_unknown_fault_raises(self, batch):
        images, labels = batch
        with pytest.raises(ValueError):
            apply_fault(images, labels, "gamma_ray", fault_rng())

    def test_input_batch_never_mutated(self, batch):
        images, labels = batch
        before = images.copy()
        for fault in FAULT_NAMES:
            apply_fault(images, labels, fault, fault_rng())
        np.testing.assert_array_equal(images, before)


class TestInjector:
    def _batches(self, rng, n=10, size=8):
        for _ in range(n):
            yield (rng.random((size, 3, 8, 8)).astype(np.float32),
                   rng.integers(0, 10, size=size))

    def test_events_record_schedule(self, rng):
        injector = FaultInjector(parse_fault_specs("nan@1+4"), seed=0)
        list(injector.inject(self._batches(rng)))
        assert injector.events == [FaultEvent(1, "nan"), FaultEvent(4, "nan")]
        assert injector.faults_injected == 2
        assert injector.batches_seen == 10

    def test_clean_when_rate_zero(self, rng):
        injector = FaultInjector([FaultSpec(fault="nan", rate=0.0)], seed=0)
        list(injector.inject(self._batches(rng)))
        assert injector.faults_injected == 0

    def test_faulted_images_deterministic_across_runs(self):
        """Same seed => the realized fault noise is identical batch-for-
        batch, independent of the stream's own generator state."""
        specs = parse_fault_specs("nan:0.5")
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(11)
            injector = FaultInjector(specs, seed=3)
            runs.append([img for img, _ in
                         injector.inject(self._batches(rng, n=6))])
        for a, b in zip(*runs):
            np.testing.assert_array_equal(a, b)

    def test_clean_batches_pass_through_untouched(self, rng):
        batches = list(self._batches(rng, n=4))
        injector = FaultInjector(parse_fault_specs("constant@2"), seed=0)
        out = list(injector.inject(iter(batches)))
        for i in (0, 1, 3):
            assert out[i][0] is batches[i][0]


class TestCrossModuleContract:
    """core.streaming mirrors robustness constants as literals (to avoid
    a core -> robustness import); these keep the two in lock-step."""

    def test_poisoning_faults_match_streaming_copy(self):
        assert POISONING_FAULTS == streaming._POISONING_FAULT_NAMES

    def test_poisoning_faults_are_known_faults(self):
        assert POISONING_FAULTS <= set(FAULT_NAMES)

    def test_ladder_depth_matches_guard_ladder(self):
        assert set(streaming._LADDER_DEPTH) == set(LADDER)
        for name, depth in streaming._LADDER_DEPTH.items():
            assert depth == len(LADDER) - LADDER.index(name)
