"""GuardedAdaptation: rollback, degradation ladder, cooldown, restore."""

import numpy as np
import pytest

from repro import nn
from repro.adapt import BNNorm, BNOpt, NoAdapt, bn_layers, build_method
from repro.adapt.base import AdaptationMethod
from repro.engine import create_backend, use_backend
from repro.models import build_model
from repro.robustness.guard import (
    LADDER,
    GuardConfig,
    GuardedAdaptation,
)


@pytest.fixture
def model():
    return build_model("wrn40_2", "tiny")


@pytest.fixture
def clean_batch(rng):
    return rng.standard_normal((16, 3, 16, 16)).astype(np.float32)


@pytest.fixture
def nan_batch(clean_batch):
    bad = clean_batch.copy()
    bad[:, :, 0, 0] = np.nan
    return bad


def bn_state(model):
    """Full BN state as a flat list of arrays (copies)."""
    state = []
    for layer in bn_layers(model):
        state.extend([layer.running_mean.copy(), layer.running_var.copy(),
                      layer.weight.data.copy(), layer.bias.data.copy()])
    return state


class Collapsing(AdaptationMethod):
    """Stub rung that adapts stats and emits entropy-collapsed logits."""

    name = "collapsing"
    adapts_bn_stats = True

    def _configure(self, model):
        model.eval()

    def forward(self, x):
        self._require_model()
        logits = np.zeros((len(x), 10), dtype=np.float32)
        logits[:, 0] = 1e4   # one-hot confidence: zero entropy
        return logits


class TestGuardConfig:
    def test_defaults_valid(self):
        GuardConfig()

    @pytest.mark.parametrize("kwargs", [
        {"entropy_floor": -0.1},
        {"entropy_floor": 1.0},
        {"drift_limit": 0.0},
        {"drift_limit": -1.0},
        {"cooldown": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestProtocol:
    def test_name_and_flags_passthrough(self):
        guard = GuardedAdaptation(BNOpt(lr=1e-3))
        assert guard.name == "guarded(bn_opt)"
        assert guard.does_backward and guard.adapts_bn_stats
        assert not GuardedAdaptation(NoAdapt()).does_backward

    def test_forward_before_prepare_raises(self, clean_batch):
        with pytest.raises(RuntimeError):
            GuardedAdaptation(BNNorm()).forward(clean_batch)

    def test_reset_before_prepare_raises(self):
        with pytest.raises(RuntimeError):
            GuardedAdaptation(BNNorm()).reset()

    @pytest.mark.parametrize("method,expected", [
        ("bn_opt", ["bn_opt", "bn_norm", "no_adapt"]),
        ("bn_norm", ["bn_norm", "no_adapt"]),
        ("no_adapt", ["no_adapt"]),
    ])
    def test_ladder_construction(self, model, method, expected):
        guard = GuardedAdaptation(build_method(method)).prepare(model)
        assert [m.name for m in guard._ladder] == expected

    def test_extension_methods_slot_by_flags(self, model):
        """Non-LADDER methods fall in by their cost flags: a backward
        method gets the full ladder below it."""
        method = build_method("bn_opt_selective")
        guard = GuardedAdaptation(method).prepare(model)
        assert [m.name for m in guard._ladder[1:]] == ["bn_norm", "no_adapt"]


class TestCleanStream:
    def test_no_guard_activity(self, model, clean_batch):
        guard = GuardedAdaptation(BNNorm()).prepare(model)
        for _ in range(4):
            logits = guard.forward(clean_batch)
            assert np.isfinite(logits).all()
        assert guard.rollbacks == 0
        assert guard.degraded_batches == 0
        assert guard.fallback_frames == 0
        assert guard.events == []
        assert guard.level_name == "bn_norm"

    def test_matches_unguarded_method(self, model, clean_batch):
        guard = GuardedAdaptation(BNNorm()).prepare(model)
        guarded_logits = guard.forward(clean_batch)
        guard.method.reset()   # back to the pristine pre-stream state
        bare = BNNorm().prepare(model)
        np.testing.assert_array_equal(guarded_logits,
                                      bare.forward(clean_batch))


class TestRollback:
    def test_nan_batch_rolls_back_and_degrades(self, model, clean_batch,
                                               nan_batch):
        guard = GuardedAdaptation(BNOpt(lr=1e-3)).prepare(model)
        guard.forward(clean_batch)
        logits = guard.forward(nan_batch)
        assert np.isfinite(logits).all()
        assert guard.rollbacks >= 1
        assert guard.level_name != "bn_opt"
        actions = [e.action for e in guard.events]
        assert "rollback" in actions and "degrade" in actions
        reasons = {e.reason for e in guard.events if e.action == "rollback"}
        assert reasons <= {"nonfinite_logits", "nonfinite_bn_state"}

    def test_rollback_restores_bn_state_exactly(self, model, clean_batch,
                                                nan_batch):
        guard = GuardedAdaptation(BNNorm()).prepare(model)
        guard.forward(clean_batch)
        before = bn_state(model)
        guard.forward(nan_batch)
        assert guard.rollbacks >= 1
        # the poisoned update was rolled back and no_adapt left stats alone
        for a, b in zip(before, bn_state(model)):
            np.testing.assert_array_equal(a, b)
        # and the state is genuinely healthy: next clean batch adapts again
        assert np.isfinite(guard.forward(clean_batch)).all()

    def test_bottom_rung_fallback_returns_uniform_logits(self, model,
                                                         clean_batch):
        """When even no_adapt yields garbage (a broken classifier head,
        which BN rollback cannot repair), the guard answers with uniform
        logits rather than propagating NaN downstream."""
        guard = GuardedAdaptation(BNOpt(lr=1e-3)).prepare(model)
        head = [m for m in model.modules() if isinstance(m, nn.Linear)][-1]
        head.bias.data[:] = np.nan
        logits = guard.forward(clean_batch)
        np.testing.assert_array_equal(logits, np.zeros_like(logits))
        assert guard.rollbacks == len(LADDER)
        assert guard.fallback_frames == len(clean_batch)
        assert guard.events[-1].action == "fallback"
        assert guard.events[-1].reason == "nonfinite_logits"

    def test_entropy_collapse_detected(self, model, clean_batch):
        guard = GuardedAdaptation(Collapsing()).prepare(model)
        logits = guard.forward(clean_batch)
        assert np.isfinite(logits).all()
        assert guard.level_name == "no_adapt"
        assert guard.events[0].action == "rollback"
        assert guard.events[0].reason == "entropy_collapse"


class TestCooldownLadder:
    def test_reescalates_after_cooldown(self, model, clean_batch, nan_batch):
        guard = GuardedAdaptation(BNOpt(lr=1e-3),
                                  GuardConfig(cooldown=2)).prepare(model)
        guard.forward(nan_batch)
        assert guard.level_name == "no_adapt"
        # two rungs to climb, cooldown=2 healthy batches per rung
        for expected in ("no_adapt", "bn_norm", "bn_norm", "bn_opt"):
            assert guard.level_name == expected
            guard.forward(clean_batch)
        assert guard.level_name == "bn_opt"
        escalations = [e for e in guard.events if e.action == "escalate"]
        assert [e.level for e in escalations] == ["bn_norm", "bn_opt"]

    def test_degraded_batches_counted_while_below_top(self, model,
                                                      clean_batch, nan_batch):
        guard = GuardedAdaptation(BNOpt(lr=1e-3),
                                  GuardConfig(cooldown=2)).prepare(model)
        guard.forward(nan_batch)
        for _ in range(4):
            guard.forward(clean_batch)
        assert guard.degraded_batches == 4

    def test_cooldown_counts_healthy_batches_at_degraded_rung(
            self, model, clean_batch, nan_batch):
        guard = GuardedAdaptation(BNNorm(),
                                  GuardConfig(cooldown=3)).prepare(model)
        # the faulted batch's successful no_adapt retry opens the streak
        guard.forward(nan_batch)
        assert guard.level_name == "no_adapt"
        guard.forward(clean_batch)              # streak 2 < cooldown
        assert guard.level_name == "no_adapt"
        guard.forward(clean_batch)              # streak 3 -> escalate
        assert guard.level_name == "bn_norm"


class TestReset:
    def test_reset_rearms_counters_and_restores_model(self, model,
                                                      clean_batch, nan_batch):
        pristine = {k: v.copy() for k, v in model.state_dict().items()}
        guard = GuardedAdaptation(BNOpt(lr=1e-3)).prepare(model)
        guard.forward(clean_batch)
        guard.forward(nan_batch)
        assert guard.rollbacks > 0
        guard.reset()
        assert guard.rollbacks == 0
        assert guard.degraded_batches == 0
        assert guard.fallback_frames == 0
        assert guard.events == [] and guard.batches_seen == 0
        assert guard.level_name == "bn_opt"
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, pristine[key])


class TestBackends:
    @pytest.mark.parametrize("backend_name", ["numpy", "threaded"])
    def test_rollback_bit_identical_on_backend(self, backend_name,
                                               clean_batch, nan_batch):
        """The acceptance bar: after a rollback the BN state equals the
        pre-batch snapshot *bit for bit*, whichever execution backend ran
        the poisoned forward pass."""
        backend = create_backend(backend_name, threads=2)
        try:
            with use_backend(backend):
                model = build_model("wrn40_2", "tiny")
                guard = GuardedAdaptation(BNOpt(lr=1e-3)).prepare(model)
                guard.forward(clean_batch)   # genuinely adapted stats
                before = bn_state(model)
                guard.forward(nan_batch)
                assert guard.rollbacks >= 1
                after = bn_state(model)
                for a, b in zip(before, after):
                    assert a.dtype == b.dtype
                    np.testing.assert_array_equal(a, b)
        finally:
            backend.close()
