"""Acceptance: a guarded NaN stream survives; the unguarded one poisons.

This is the robustness layer's headline demonstration on *real*
execution (the tiny trained model, real BN-Opt updates), plus the
persistence contract: guard counters survive the io round-trip.
"""

import itertools
import json

import numpy as np
import pytest

from repro.adapt import build_method
from repro.core import io as study_io
from repro.core.config import StudyConfig
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.runner import run_native_study
from repro.data.stream import CorruptionStream
from repro.robustness import GuardedAdaptation, run_guarded_stream

BATCHES = 12
BATCH_SIZE = 32
FAULTS = "nan@2"        # one poisoned batch, early in the stream


def stream_batches(data):
    stream = CorruptionStream.from_dataset(data, "gaussian_noise",
                                           severity=3, seed=0)
    return itertools.islice(stream.batches(BATCH_SIZE), BATCHES)


@pytest.fixture(scope="module")
def cards(micro_trained_model):
    """Scorecards of the same NaN-faulted stream, unguarded vs guarded."""
    model, data = micro_trained_model
    results = {}
    for guarded in (False, True):
        method = build_method("bn_opt", lr=5e-3)
        try:
            results[guarded] = run_guarded_stream(
                model, method, stream_batches(data),
                guard=guarded, faults=FAULTS, seed=0)
        finally:
            method.reset()   # leave the shared model pristine
    return results


class TestAcceptance:
    def test_guarded_run_finishes_finite_with_rollbacks(self, cards):
        card = cards[True]
        assert card.frames_total == BATCHES * BATCH_SIZE
        assert card.frames_processed == card.frames_total
        assert np.isfinite(card.effective_error_pct)
        assert card.faults_injected == 1
        assert card.rollbacks >= 1

    def test_unguarded_run_degrades(self, cards):
        """Silent poisoning: every batch after the fault is scored by a
        NaN-ridden model, so the stream error collapses toward chance."""
        unguarded = cards[False]
        assert unguarded.rollbacks == 0
        assert unguarded.faults_injected == 1
        assert unguarded.effective_error_pct > 60.0

    def test_guard_beats_unguarded_by_a_wide_margin(self, cards):
        assert cards[True].effective_error_pct \
            < cards[False].effective_error_pct - 20.0

    def test_guard_counters_reported_in_describe(self, cards):
        assert "guard:" in cards[True].describe()


class TestRunGuardedStream:
    def test_clean_run_has_zero_counters(self, micro_trained_model):
        model, data = micro_trained_model
        method = build_method("bn_norm")
        try:
            card = run_guarded_stream(model, method, stream_batches(data))
        finally:
            method.reset()
        assert card.faults_injected == 0
        assert card.rollbacks == 0
        assert card.fallback_frames == 0
        assert 0.0 <= card.effective_error_pct <= 100.0

    def test_method_by_name_and_late_batches(self, micro_trained_model):
        """An absurd fps makes every measured batch miss its deadline."""
        model, data = micro_trained_model
        card = run_guarded_stream(model, "no_adapt", stream_batches(data),
                                  guard=False, fps=1e9)
        assert card.batches_late == card.batches_total == BATCHES

    def test_prebuilt_guard_is_used_as_is(self, micro_trained_model):
        model, data = micro_trained_model
        guard = GuardedAdaptation(build_method("bn_norm"))
        try:
            card = run_guarded_stream(model, guard, stream_batches(data),
                                      faults=FAULTS, seed=0)
            assert card.rollbacks == guard.rollbacks >= 1
        finally:
            guard.method.reset()


class TestRunnerIntegration:
    def test_native_study_carries_guard_counters(self, micro_trained_model):
        model, _ = micro_trained_model
        config = StudyConfig(models=("wrn40_2",), methods=("bn_norm",),
                             batch_sizes=(32,), stream_samples=256,
                             corruptions=("gaussian_noise",),
                             faults="nan@1", guard=True)
        result = run_native_study(config, models={"wrn40_2": model})
        record = result.records[0]
        assert record.guarded
        assert record.faults_injected == 1
        assert record.rollbacks >= 1
        assert np.isfinite(record.error_pct)


def assert_records_equal(left, right):
    """Field-wise record equality that treats NaN == NaN (OOM costs)."""
    left, right = vars(left), vars(right)
    assert left.keys() == right.keys()
    for name, a in left.items():
        b = right[name]
        if isinstance(a, float) and np.isnan(a):
            assert isinstance(b, float) and np.isnan(b), name
        else:
            assert a == b, name


class TestGuardCounterRoundTrip:
    def result(self):
        return StudyResult([MeasurementRecord(
            model="wrn40_2", method="bn_opt", batch_size=32, device="host",
            error_pct=12.5, forward_time_s=0.01, energy_j=float("nan"),
            faults_injected=3, rollbacks=5, degraded_batches=4,
            fallback_frames=32, guarded=True)])

    COUNTERS = ("faults_injected", "rollbacks", "degraded_batches",
                "fallback_frames", "guarded")

    def test_json_round_trip(self):
        original = self.result().records[0]
        back = study_io.loads(study_io.dumps(self.result())).records[0]
        for name in self.COUNTERS:
            assert getattr(back, name) == getattr(original, name)

    def test_csv_round_trip(self):
        original = self.result().records[0]
        back = study_io.from_csv(study_io.to_csv(self.result())).records[0]
        assert_records_equal(back, original)

    def test_pre_robustness_documents_still_load(self):
        """Version-1 files written before the guard fields existed must
        load with clean defaults."""
        payload = json.loads(study_io.dumps(self.result()))
        for row in payload["records"]:
            for name in self.COUNTERS:
                row.pop(name)
        back = study_io.loads(json.dumps(payload)).records[0]
        assert back.faults_injected == 0
        assert back.rollbacks == 0
        assert back.guarded is False

    def test_file_round_trip(self, tmp_path):
        study_io.save_json(self.result(), tmp_path / "r.json")
        study_io.save_csv(self.result(), tmp_path / "r.csv")
        original = self.result().records[0]
        assert_records_equal(
            study_io.load_json(tmp_path / "r.json").records[0], original)
        assert_records_equal(
            study_io.load_csv(tmp_path / "r.csv").records[0], original)
