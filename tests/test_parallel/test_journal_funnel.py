"""Single-writer journal ordering under concurrent producers.

N workers emit events concurrently, but only the parent writes the
journal; these tests pin what that buys: every line parses (no
interleaved torn writes), per-cell event order is coherent, and the
journal alone reconstructs the same StudyResult the run returned —
including when a worker crashes mid-sweep.
"""

import json

from repro.core import io as study_io
from repro.core.records import StudyResult
from repro.parallel import ParallelExecutor
from repro.resilience.journal import RunJournal, scan_journal

from tests.test_parallel.runners import (crash_runner, echo_runner,
                                         make_spec)


def wide_grid(n=12):
    specs = [make_spec(f"cell/{i}", batch_size=10 + i) for i in range(n)]
    payload = {"values": {s.key: float(i) for i, s in enumerate(specs)}}
    return specs, payload


def replay(path):
    """Rebuild a StudyResult purely from the journal's cell_ok rows."""
    done = scan_journal(path).completed_cells()
    records = []
    for key in sorted(done, key=lambda k: int(k.split("/")[1])):
        records.extend(study_io.record_from_dict(row) for row in done[key])
    return StudyResult(records)


class TestSingleWriterOrdering:
    def test_every_line_parses_and_frames_the_run(self, journal_dir,
                                                  workers):
        path = journal_dir / "funnel.jsonl"
        specs, payload = wide_grid()
        with RunJournal(path) as journal:
            ParallelExecutor(journal, workers=workers,
                             fingerprint="fp").run(
                [(s, echo_runner) for s in specs], payload)
        # scan_journal would raise on any interior corruption
        scan = scan_journal(path)
        assert not scan.truncated
        events = [e["event"] for e in scan.entries]
        assert events[0] == "run_start" and events[-1] == "run_end"
        assert events.count("cell_ok") == len(specs)
        # raw-line check: the funnel serialized whole JSON objects only
        for line in path.read_bytes().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_per_cell_event_order_is_coherent(self, journal_dir, workers):
        path = journal_dir / "order.jsonl"
        specs, payload = wide_grid()
        with RunJournal(path) as journal:
            ParallelExecutor(journal, workers=workers,
                             fingerprint="fp").run(
                [(s, echo_runner) for s in specs], payload)
        # within one cell, cell_start always precedes its cell_ok even
        # though cells from different workers interleave freely
        position = {}
        for index, entry in enumerate(scan_journal(path).entries):
            if entry["event"] == "cell_start":
                position[entry["cell"]] = index
            elif entry["event"] == "cell_ok":
                assert position[entry["cell"]] < index
        # funnelled cell events carry their producer's worker id
        workers_seen = {e.get("worker")
                        for e in scan_journal(path).entries
                        if e["event"] == "cell_ok"}
        assert workers_seen and None not in workers_seen

    def test_journal_replays_to_the_runs_own_result(self, journal_dir,
                                                    workers):
        path = journal_dir / "replay.jsonl"
        specs, payload = wide_grid()
        with RunJournal(path) as journal:
            run = ParallelExecutor(journal, workers=workers,
                                   fingerprint="fp").run(
                [(s, echo_runner) for s in specs], payload)
        assert study_io.dumps(replay(path)) == study_io.dumps(run)

    def test_journal_replay_matches_serial_twin_despite_worker_crash(
            self, journal_dir, workers):
        if workers < 2:
            import pytest
            pytest.skip("needs a surviving worker")
        path = journal_dir / "crashed.jsonl"
        specs, payload = wide_grid(8)
        crashing = dict(payload, crash=(specs[3].key,))
        with RunJournal(path) as journal:
            ParallelExecutor(journal, workers=workers,
                             fingerprint="fp").run(
                [(s, crash_runner) for s in specs], crashing)
        # the crash is journaled as a final cell_failed...
        failures = scan_journal(path).failed_cells()
        assert set(failures) == {specs[3].key}
        assert "WorkerCrashError" in failures[specs[3].key]["error"]
        # ...and a healed parallel resume merges to the serial twin
        with RunJournal(path, resume=True) as journal:
            resumed = ParallelExecutor(journal, workers=workers,
                                       resume=True, fingerprint="fp").run(
                [(s, crash_runner) for s in specs], payload)
        from tests.test_parallel.test_executor_parallel import run_serial
        assert study_io.dumps(resumed) == study_io.dumps(
            run_serial(specs, payload))
        # the journal now replays to that same StudyResult too
        assert study_io.dumps(replay(path)) == study_io.dumps(resumed)
