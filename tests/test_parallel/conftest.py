"""Fixtures for the process-parallel suite.

``REPRO_TEST_WORKERS`` sets the pool size the suite exercises (CI runs
one matrix leg with 2 so the multiprocessing path is covered on every
Python version); ``REPRO_JOURNAL_DIR`` mirrors the resilience suite so
failing runs leave their journals behind as CI artifacts.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def workers() -> int:
    return max(int(os.environ.get("REPRO_TEST_WORKERS", "2")), 1)


@pytest.fixture
def journal_dir(tmp_path, request):
    root = os.environ.get("REPRO_JOURNAL_DIR")
    if not root:
        return tmp_path
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", request.node.name)
    path = Path(root) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path
