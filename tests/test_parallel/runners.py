"""Deterministic, spawn-picklable cell runners shared by the suite.

Workers unpickle runners *by reference* and re-import this module, so
every runner must live at module level.  Cross-process state (e.g.
"fail only the first attempt") goes through marker files in the
payload's scratch directory — worker processes share no memory.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import List

from repro.core.records import MeasurementRecord
from repro.resilience.executor import CellSpec


def make_spec(key: str, **overrides) -> CellSpec:
    base = dict(key=key, model="wrn40_2", method="bn_norm",
                batch_size=50, backend="numpy")
    base.update(overrides)
    return CellSpec(**base)


def echo_runner(payload: dict, spec: CellSpec) -> List[MeasurementRecord]:
    """Return one fully deterministic record per cell."""
    value = payload["values"][spec.key]
    return [MeasurementRecord(
        model=spec.model, method=spec.method, batch_size=spec.batch_size,
        device=spec.device, error_pct=float(value), forward_time_s=0.25,
        energy_j=float("nan"), backend=spec.backend)]


def flaky_runner(payload: dict, spec: CellSpec) -> List[MeasurementRecord]:
    """Fail cells listed in ``fail_once`` on their first attempt only
    (marker files make the state visible across attempts *and*
    processes) and cells in ``fail_always`` on every attempt."""
    if spec.key in payload.get("fail_always", ()):
        raise ValueError(f"permanent fault in {spec.key}")
    if spec.key in payload.get("fail_once", ()):
        marker = Path(payload["dir"]) / (
            spec.key.replace("/", "_") + ".attempted")
        if not marker.exists():
            marker.write_text("first attempt")
            raise ValueError(f"transient fault in {spec.key}")
    return echo_runner(payload, spec)


def crash_runner(payload: dict, spec: CellSpec) -> List[MeasurementRecord]:
    """Die like a SIGKILL'd worker: no exception, no cleanup, no event."""
    if spec.key in payload.get("crash", ()):
        os._exit(17)
    return echo_runner(payload, spec)


def sleepy_runner(payload: dict, spec: CellSpec) -> List[MeasurementRecord]:
    """Hang far past any reasonable soft deadline for ``hang`` cells."""
    if spec.key in payload.get("hang", ()):
        time.sleep(60.0)
    return echo_runner(payload, spec)
