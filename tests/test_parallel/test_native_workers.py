"""run_native_study with ``workers``: real cells across real processes.

These are the end-to-end guarantees of the parallel scheduler on the
actual native grid: a parallel sweep produces the serial sweep's records
(modulo wall-clock timing), its journal replays bit-identically in
either execution mode, and concurrent workers share one file-locked
pretrained checkpoint instead of training it twice.
"""


import pytest

from repro.core import io as study_io
from repro.core.config import StudyConfig
from repro.core.runner import run_native_study
from repro.resilience.journal import scan_journal


def study_config(**overrides):
    base = dict(models=("wrn40_2",), methods=("no_adapt", "bn_norm"),
                batch_sizes=(50,), corruptions=("fog", "gaussian_noise"),
                image_size=16, stream_samples=150)
    base.update(overrides)
    return StudyConfig(**base)


@pytest.fixture
def models(micro_trained_model):
    model, _ = micro_trained_model
    return {"wrn40_2": model}


@pytest.fixture(scope="module")
def serial_baseline(request):
    model, _ = request.getfixturevalue("micro_trained_model")
    return run_native_study(study_config(), models={"wrn40_2": model})


class TestParallelNativeStudy:
    def test_matches_serial_modulo_wall_clock(self, models, workers,
                                              serial_baseline):
        parallel = run_native_study(study_config(workers=workers),
                                    models=models)
        assert study_io.canonical_dumps(parallel, strip_timing=True) == \
            study_io.canonical_dumps(serial_baseline, strip_timing=True)
        # canonical grid order survives out-of-order arrival
        assert [r.method for r in parallel] == ["no_adapt", "bn_norm"]

    def test_parallel_journal_replays_bit_identically_both_modes(
            self, models, workers, journal_dir):
        journal = journal_dir / "native-parallel.jsonl"
        first = run_native_study(
            study_config(workers=workers, journal=str(journal)),
            models=models)
        events = [e["event"] for e in scan_journal(journal).entries]
        assert events[0] == "run_start" and events[-1] == "run_end"

        # replayed under workers: bit-identical, wall clock included
        resumed_parallel = run_native_study(
            study_config(workers=workers, journal=str(journal),
                         resume=True), models=models)
        assert study_io.dumps(resumed_parallel) == study_io.dumps(first)

        # the fingerprint excludes `workers`, so the same journal also
        # replays serially (workers=0) — bit-identical again
        resumed_serial = run_native_study(
            study_config(journal=str(journal), resume=True), models=models)
        assert study_io.dumps(resumed_serial) == study_io.dumps(first)

    def test_workers_share_one_file_locked_checkpoint(
            self, tmp_path, monkeypatch, workers):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE", str(cache))
        # no models= passed: every worker must pretrain wrn40_2 itself,
        # and the file lock must collapse that to a single training run
        config = study_config(train_samples=200, train_epochs=1,
                              workers=max(workers, 2))
        result = run_native_study(config)
        assert [r.status for r in result] == ["ok", "ok"]
        checkpoints = sorted(cache.glob("robust_wrn40_2_*.npz"))
        assert len(checkpoints) == 1
