"""Cross-process advisory file locking for the checkpoint cache."""

import multiprocessing
import time

import pytest

from repro.parallel import FileLock, FileLockTimeout


def _hold_lock(path, hold_s, acquired):
    with FileLock(path):
        acquired.set()
        time.sleep(hold_s)


def _append_under_lock(lock_path, data_path, token):
    with FileLock(lock_path, timeout=30.0):
        with open(data_path, "a") as handle:
            handle.write(f"begin {token}\n")
            time.sleep(0.05)
            handle.write(f"end {token}\n")


class TestFileLock:
    def test_reentrant_use_in_sequence(self, tmp_path):
        path = tmp_path / "cache.lock"
        with FileLock(path):
            pass
        with FileLock(path):          # re-acquirable after release
            pass
        assert path.exists()          # lock file is left behind by design

    def test_times_out_when_held_elsewhere(self, tmp_path):
        path = tmp_path / "held.lock"
        ctx = multiprocessing.get_context("spawn")
        acquired = ctx.Event()
        holder = ctx.Process(target=_hold_lock, args=(str(path), 10.0,
                                                      acquired))
        holder.start()
        try:
            assert acquired.wait(timeout=30.0)
            with pytest.raises(FileLockTimeout):
                with FileLock(path, timeout=0.3, poll_interval=0.05):
                    pass
        finally:
            holder.terminate()
            holder.join(timeout=10.0)

    def test_serializes_cross_process_critical_sections(self, tmp_path):
        lock_path = str(tmp_path / "data.lock")
        data_path = str(tmp_path / "data.txt")
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_append_under_lock,
                             args=(lock_path, data_path, t))
                 for t in ("a", "b", "c")]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60.0)
        assert all(p.exitcode == 0 for p in procs)
        lines = (tmp_path / "data.txt").read_text().splitlines()
        # under the lock, every begin is immediately followed by its end
        assert len(lines) == 6
        for i in range(0, 6, 2):
            token = lines[i].split()[1]
            assert lines[i] == f"begin {token}"
            assert lines[i + 1] == f"end {token}"
