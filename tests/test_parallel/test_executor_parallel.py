"""ParallelExecutor: byte-identity with serial, retries, crashes, resume."""

import math

import pytest

from repro.core import io as study_io
from repro.parallel import ParallelExecutor
from repro.resilience.executor import ResilientExecutor
from repro.resilience.journal import RunJournal

from tests.test_parallel.runners import (crash_runner, echo_runner,
                                         flaky_runner, make_spec,
                                         sleepy_runner)


def grid(n=6):
    """n deterministic cells with distinct keys and values."""
    specs = [make_spec(f"m/{name}/{batch}", method=name, batch_size=batch)
             for name in ("no_adapt", "bn_norm", "bn_opt")
             for batch in (50, 100)][:n]
    payload = {"values": {s.key: 10.0 + i for i, s in enumerate(specs)}}
    return specs, payload


def run_serial(specs, payload, runner=echo_runner, **kwargs):
    """The serial twin: same runner driven by a ResilientExecutor."""
    cells = [(s, (lambda s=s: runner(payload, s))) for s in specs]
    executor = ResilientExecutor(sleep=lambda _: None, **kwargs)
    return executor.run(cells)


class TestByteIdentity:
    def test_parallel_output_is_byte_equal_to_serial(self, workers):
        specs, payload = grid()
        serial = run_serial(specs, payload)
        executor = ParallelExecutor(workers=workers)
        parallel = executor.run([(s, echo_runner) for s in specs], payload)
        assert study_io.dumps(parallel) == study_io.dumps(serial)
        assert executor.stats.executed == len(specs)
        assert executor.stats.failed == 0

    def test_merge_is_canonical_order_not_arrival_order(self, workers):
        specs, payload = grid()
        result = ParallelExecutor(workers=workers).run(
            [(s, echo_runner) for s in specs], payload)
        merged = [(r.method, r.batch_size) for r in result]
        assert merged == [(s.method, s.batch_size) for s in specs]

    def test_single_worker_pool_behaves_like_serial(self):
        specs, payload = grid(3)
        serial = run_serial(specs, payload)
        parallel = ParallelExecutor(workers=1).run(
            [(s, echo_runner) for s in specs], payload)
        assert study_io.dumps(parallel) == study_io.dumps(serial)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(workers=0)


class TestFailureSemantics:
    def test_failed_cell_isolated_and_sweep_continues(self, workers):
        specs, payload = grid(4)
        payload["fail_always"] = (specs[1].key,)
        executor = ParallelExecutor(workers=workers)
        result = executor.run([(s, flaky_runner) for s in specs], payload)
        statuses = [r.status for r in result]
        assert statuses == ["ok", "failed", "ok", "ok"]
        assert math.isnan(result.records[1].error_pct)
        assert executor.stats.failed == 1

    def test_retry_recovers_transient_fault_across_processes(
            self, tmp_path, workers):
        specs, payload = grid(4)
        payload.update(dir=str(tmp_path), fail_once=(specs[2].key,))
        executor = ParallelExecutor(workers=workers, max_retries=1,
                                    backoff_base=0.01)
        result = executor.run([(s, flaky_runner) for s in specs], payload)
        assert [r.status for r in result] == ["ok"] * 4
        assert result.records[2].attempts == 2
        assert executor.stats.retries == 1

    def test_worker_crash_fails_only_its_cell(self, workers):
        if workers < 2:
            pytest.skip("needs a surviving worker")
        specs, payload = grid(6)
        payload["crash"] = (specs[0].key,)
        executor = ParallelExecutor(workers=workers)
        result = executor.run([(s, crash_runner) for s in specs], payload)
        by_key = {s.key: r for s, r in zip(specs, result.records)}
        assert by_key[specs[0].key].status == "failed"
        others = [r.status for k, r in by_key.items() if k != specs[0].key]
        assert others == ["ok"] * 5

    def test_whole_pool_death_fails_remaining_cells_without_hanging(self):
        specs, payload = grid(3)
        payload["crash"] = tuple(s.key for s in specs)
        executor = ParallelExecutor(workers=1)
        result = executor.run([(s, crash_runner) for s in specs], payload)
        assert [r.status for r in result] == ["failed"] * 3

    def test_hung_cell_times_out_in_worker(self, workers):
        specs, payload = grid(3)
        payload["hang"] = (specs[1].key,)
        executor = ParallelExecutor(workers=workers, cell_timeout=0.5)
        result = executor.run([(s, sleepy_runner) for s in specs], payload)
        assert [r.status for r in result] == ["ok", "timeout", "ok"]


class TestResume:
    def test_parallel_journal_resumes_in_parallel(self, journal_dir,
                                                  workers):
        path = journal_dir / "par-par.jsonl"
        specs, payload = grid()
        with RunJournal(path) as journal:
            first = ParallelExecutor(journal, workers=workers,
                                     fingerprint="fp").run(
                [(s, echo_runner) for s in specs], payload)
        with RunJournal(path, resume=True) as journal:
            executor = ParallelExecutor(journal, workers=workers,
                                        resume=True, fingerprint="fp")
            second = executor.run([(s, echo_runner) for s in specs],
                                  payload)
        assert executor.stats.skipped == len(specs)
        assert executor.stats.executed == 0
        assert study_io.dumps(second) == study_io.dumps(first)

    def test_parallel_journal_resumes_serially_and_vice_versa(
            self, journal_dir, workers):
        specs, payload = grid()
        par_path = journal_dir / "par.jsonl"
        with RunJournal(par_path) as journal:
            parallel = ParallelExecutor(journal, workers=workers,
                                        fingerprint="fp").run(
                [(s, echo_runner) for s in specs], payload)
        # serial executor replays the parallel journal bit-identically
        with RunJournal(par_path, resume=True) as journal:
            executor = ResilientExecutor(journal, resume=True,
                                         fingerprint="fp")
            replayed = executor.run(
                [(s, (lambda: pytest.fail("re-executed"))) for s in specs])
        assert executor.stats.skipped == len(specs)
        assert study_io.dumps(replayed) == study_io.dumps(parallel)

        # and a serial journal resumes under workers
        ser_path = journal_dir / "ser.jsonl"
        with RunJournal(ser_path) as journal:
            serial = ResilientExecutor(journal, fingerprint="fp").run(
                [(s, (lambda s=s: echo_runner(payload, s)))
                 for s in specs])
        with RunJournal(ser_path, resume=True) as journal:
            executor = ParallelExecutor(journal, workers=workers,
                                        resume=True, fingerprint="fp")
            resumed = executor.run([(s, echo_runner) for s in specs],
                                   payload)
        assert executor.stats.skipped == len(specs)
        assert study_io.dumps(resumed) == study_io.dumps(serial)

    def test_crashed_cell_reruns_on_resume_to_serial_twin(
            self, journal_dir, workers):
        specs, payload = grid(4)
        path = journal_dir / "crash-resume.jsonl"
        crashing = dict(payload, crash=(specs[1].key,))
        with RunJournal(path) as journal:
            interrupted = ParallelExecutor(
                journal, workers=workers, fingerprint="fp").run(
                [(s, crash_runner) for s in specs], crashing)
        assert interrupted.records[1].status == "failed"

        # healed resume re-runs only the crashed cell...
        with RunJournal(path, resume=True) as journal:
            executor = ParallelExecutor(journal, workers=workers,
                                        resume=True, fingerprint="fp")
            resumed = executor.run([(s, crash_runner) for s in specs],
                                   payload)
        assert executor.stats.skipped == len(specs) - 1
        assert executor.stats.executed == 1
        # ...and the merged result is byte-equal to the serial twin
        assert study_io.dumps(resumed) == study_io.dumps(
            run_serial(specs, payload))

    def test_fingerprint_mismatch_refused(self, journal_dir, workers):
        specs, payload = grid(2)
        path = journal_dir / "fp.jsonl"
        with RunJournal(path) as journal:
            ParallelExecutor(journal, workers=workers,
                             fingerprint="fp-a").run(
                [(s, echo_runner) for s in specs], payload)
        with RunJournal(path, resume=True) as journal:
            with pytest.raises(ValueError, match="different study"):
                ParallelExecutor(journal, workers=workers, resume=True,
                                 fingerprint="fp-b")
